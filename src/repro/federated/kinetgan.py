"""Federated training of the KiNETGAN generator itself.

The distributed scenario in :mod:`repro.distributed` shares *synthetic rows*;
the paper's future-work section goes one step further and proposes federating
the generative model so that not even synthetic rows need to flow until the
jointly trained generator is ready.  :class:`FederatedKiNETGAN` implements
that: every site trains KiNETGAN locally on its own traffic for a few epochs
per round, only generator / discriminator *weights* are exchanged, and the
coordinator federated-averages them (optionally clipping and noising the
per-site weight updates with DP-FedAvg).

All sites must agree on the transformed feature layout, so the coordinator
fits a single :class:`~repro.tabular.transformer.DataTransformer` on a public
reference table (for example a small schema-conformant calibration sample or
an early synthetic share) and broadcasts it; each site then builds its own
condition sampler over its private table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import KiNETGANConfig
from repro.core.trainer import KiNETGANTrainer
from repro.engine import sampling_rng, seeded_rng
from repro.federated.aggregation import safe_mean
from repro.federated.dp import DPFedAvgConfig, DPFedAvgMechanism
from repro.federated.parameters import (
    StateCodec,
    StateDict,
    copy_state,
    state_add,
    state_subtract,
    weighted_average,
)
from repro.knowledge.builder import build_network_kg
from repro.knowledge.catalog import DomainCatalog
from repro.knowledge.reasoner import KGReasoner
from repro.obs import span
from repro.runtime import Executor, map_with_quorum, resolve_executor
from repro.runtime.state import BufferRef, StateRef
from repro.tabular.sampler import ConditionSampler
from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer

__all__ = ["FederatedKiNETGANSite", "FederatedKiNETGANRound", "FederatedKiNETGAN"]


class FederatedKiNETGANSite:
    """One participating site: private traffic plus a local KiNETGAN trainer."""

    def __init__(
        self,
        site_id: str,
        table: Table,
        transformer: DataTransformer,
        config: KiNETGANConfig,
        condition_columns: list[str] | None = None,
        reasoner: KGReasoner | None = None,
        seed: int = 0,
    ) -> None:
        if table.n_rows == 0:
            raise ValueError(f"site {site_id!r} has no local data")
        self.site_id = site_id
        self.table = table
        self.config = config.with_overrides(seed=seed)
        self.sampler = ConditionSampler(
            table=table,
            transformer=transformer,
            conditional_columns=condition_columns,
            uniform_probability=config.uniform_probability,
        )
        self.trainer = KiNETGANTrainer(
            config=self.config,
            transformer=transformer,
            sampler=self.sampler,
            reasoner=reasoner,
        )
        self.transformer = transformer

    # ------------------------------------------------------------------ #
    @property
    def n_records(self) -> int:
        return self.table.n_rows

    def get_state(self) -> tuple[StateDict, StateDict]:
        """Current (generator, discriminator) network states."""
        return (
            self.trainer.generator.network.state_dict(),
            self.trainer.discriminator.network.state_dict(),
        )

    def set_state(self, generator_state: StateDict, discriminator_state: StateDict) -> None:
        """Load broadcast global states into the local networks."""
        self.trainer.generator.network.load_state_dict(copy_state(generator_state))
        self.trainer.discriminator.network.load_state_dict(copy_state(discriminator_state))

    def load_flat_state(
        self,
        generator_codec: StateCodec,
        generator_vector: np.ndarray,
        discriminator_codec: StateCodec,
        discriminator_vector: np.ndarray,
    ) -> None:
        """Load broadcast flat parameter vectors directly into the networks.

        ``StateCodec.decode_into`` copies each vector straight into the live
        network arrays (one ``np.copyto`` for arena-backed networks), so the
        broadcast needs no intermediate per-tensor state dictionary.
        """
        generator_codec.decode_into(generator_vector, self.trainer.generator.network.state_dict())
        discriminator_codec.decode_into(
            discriminator_vector, self.trainer.discriminator.network.state_dict()
        )

    def train_local(self, epochs: int) -> dict[str, float]:
        """Run ``epochs`` local KiNETGAN epochs on the private table."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        original_epochs = self.trainer.config.epochs
        self.trainer.config = self.trainer.config.with_overrides(epochs=epochs)
        try:
            history = self.trainer.fit(self.table)
        finally:
            self.trainer.config = self.trainer.config.with_overrides(epochs=original_epochs)
        return history.last()

    def sample(self, n: int, rng: np.random.Generator) -> Table:
        """Synthetic rows generated locally from the current weights."""
        matrix = self.trainer.generate_matrix(n, rng=rng)
        return self.transformer.inverse_transform(matrix)

    def absorb(self, trained: "FederatedKiNETGANSite") -> None:
        """Adopt the state of a trained (possibly round-tripped) copy.

        When a legacy-transport round runs on a process pool the worker
        trains a pickled copy; absorbing its attributes into *this* object
        keeps every external reference (for example the site handle
        ``add_site`` returned) pointing at the trained state.  A no-op when
        the copy is this very object, as under the serial executor.
        """
        if trained is self:
            return
        self.__dict__.update(trained.__dict__)

    # ------------------------------------------------------------------ #
    # The mutable cross-round trainer state: everything a round changes
    # that is NOT the broadcast generator/discriminator weights.  This is
    # the per-round "delta" of the resident transport -- the whole site
    # (table, fitted sampler/transformer, reasoner, networks) stays
    # resident in the execution plane and only this state plus the
    # flattened weight buffers travel.
    # ------------------------------------------------------------------ #
    def trainer_state(self) -> dict:
        """Snapshot the mutable trainer state (optimizers, RNG, KG head).

        The trainer's single :class:`numpy.random.Generator` is shared by
        the dropout / Gumbel layers and the knowledge discriminator, so its
        bit-generator state captures every stream a local epoch consumes.
        The training history is deliberately *not* included -- it grows
        with every round, so the round transport ships only the entries a
        round appends (:meth:`history_tail`), keeping the delta
        constant-size.
        """
        trainer = self.trainer
        state = {
            "rng": trainer.rng.bit_generator.state,
            "opt_g": trainer._opt_g.state_dict(),
            "opt_d": trainer._opt_d.state_dict(),
            "kg_head": None,
            "kg_opt": None,
        }
        kg = trainer.kg_discriminator
        if kg is not None and kg.head is not None:
            state["kg_head"] = kg.head.state_dict()
            state["kg_opt"] = kg._optimizer.state_dict()
        return state

    def load_trainer_state(self, state: dict) -> None:
        """Restore a :meth:`trainer_state` snapshot in place.

        The RNG state is assigned through the existing ``bit_generator`` so
        every layer holding a reference to the shared generator follows;
        optimizer moments and head weights are copied into their existing
        buffers so parameter bindings survive.
        """
        trainer = self.trainer
        trainer.rng.bit_generator.state = state["rng"]
        trainer._opt_g.load_state_dict(state["opt_g"])
        trainer._opt_d.load_state_dict(state["opt_d"])
        kg = trainer.kg_discriminator
        if state["kg_head"] is not None:
            if kg is None or kg.head is None:
                raise ValueError("trainer state carries a KG head but the site has none")
            kg.head.load_state_dict(state["kg_head"])
            kg._optimizer.load_state_dict(state["kg_opt"])

    # ------------------------------------------------------------------ #
    # Constant-size history transport: a round ships only the entries it
    # appended.  Lengths are captured before training (in the parent before
    # dispatch, in the worker before the local epochs), and the parent
    # replays the tail onto its own history -- a no-op rewrite under the
    # in-process executors, an append under the process executor.
    # ------------------------------------------------------------------ #
    _HISTORY_FIELDS = (
        "generator_loss",
        "discriminator_loss",
        "condition_loss",
        "knowledge_loss",
        "validity_rate",
    )

    def history_lengths(self) -> dict[str, int]:
        """Current length of every per-epoch history trace."""
        history = self.trainer.history
        return {name: len(getattr(history, name)) for name in self._HISTORY_FIELDS}

    def history_tail(self, lengths: dict[str, int]) -> dict[str, list[float]]:
        """The history entries appended since ``lengths`` was captured."""
        history = self.trainer.history
        return {
            name: getattr(history, name)[lengths[name] :] for name in self._HISTORY_FIELDS
        }

    def apply_history_tail(
        self, lengths: dict[str, int], tail: dict[str, list[float]]
    ) -> None:
        """Truncate each trace to ``lengths`` and append ``tail``.

        Truncating first makes the operation idempotent with respect to the
        executor: under serial/thread the worker already appended to this
        very history object, under a process pool it appended to its
        resident copy only.
        """
        history = self.trainer.history
        for name in self._HISTORY_FIELDS:
            trace = getattr(history, name)
            del trace[lengths[name] :]
            trace.extend(tail[name])


@dataclass
class _SiteTask:
    """One site's local-training slice of a round (executor work unit).

    The *whole site* is shipped and shipped back: its trainer carries state
    that must persist across rounds (Adam moments, the training RNG, the
    history), so the worker returns the updated site and the coordinator
    absorbs it into its existing site object (keeping external site handles
    valid).  Under the serial executor this is the identity -- the same
    object is mutated in place, exactly as the pre-runtime loop did.
    """

    site: FederatedKiNETGANSite
    generator_state: StateDict
    discriminator_state: StateDict
    local_epochs: int


def _run_site_task(task: _SiteTask) -> tuple[FederatedKiNETGANSite, dict[str, float]]:
    """Module-level worker: broadcast, train locally, return the site."""
    with span("federated.site_round", site=task.site.site_id, transport="site"):
        site = task.site
        site.set_state(task.generator_state, task.discriminator_state)
        metrics = site.train_local(task.local_epochs)
        return site, metrics


@dataclass
class _SiteRoundTask:
    """One site's local-training slice of a round on the resident transport.

    The whole site lives in the execution plane (installed once); the round
    ships down only this task -- refs, the mutable trainer state and the
    epoch count -- and the broadcast weights arrive through the shared
    flattened buffers.  The worker leaves its updated weights in its rows
    of the ``(sites, total_params)`` result matrices and returns the new
    trainer state plus the round metrics.
    """

    site: StateRef
    trainer_state: dict
    generator_codec: StateRef
    discriminator_codec: StateRef
    global_generator: BufferRef
    global_discriminator: BufferRef
    generator_out: BufferRef
    discriminator_out: BufferRef
    local_epochs: int


def _run_site_round(task: _SiteRoundTask) -> tuple[dict, dict[str, list[float]], dict[str, float]]:
    """Module-level worker for the resident transport: delta in, delta out."""
    with span("federated.site_round", transport="resident"):
        site: FederatedKiNETGANSite = task.site.resolve()
        site.load_trainer_state(task.trainer_state)
        generator_codec: StateCodec = task.generator_codec.resolve()
        discriminator_codec: StateCodec = task.discriminator_codec.resolve()
        # Broadcast buffers are only valid for the round; decode_into copies
        # the shared vectors straight into the live network arrays (no
        # intermediate state dict, and a single memcpy per network when
        # arenas are intact).
        site.load_flat_state(
            generator_codec,
            np.asarray(task.global_generator.resolve()),
            discriminator_codec,
            np.asarray(task.global_discriminator.resolve()),
        )
        lengths = site.history_lengths()
        metrics = site.train_local(task.local_epochs)
        generator_state, discriminator_state = site.get_state()
        generator_codec.encode(generator_state, out=task.generator_out.resolve())
        discriminator_codec.encode(discriminator_state, out=task.discriminator_out.resolve())
        return site.trainer_state(), site.history_tail(lengths), metrics


class _SiteTransport:
    """Parent-side bookkeeping of the resident site transport.

    Sites are installed lazily (``add_site`` may be called between rounds)
    and the flattened weight buffers are re-allocated when the site count
    grows; both codecs are installed once, derived from the initial global
    states.
    """

    def __init__(
        self, executor: Executor, generator_template: StateDict, discriminator_template: StateDict
    ) -> None:
        self.executor = executor
        self.generator_codec = StateCodec(generator_template)
        self.discriminator_codec = StateCodec(discriminator_template)
        self.generator_codec_ref = executor.install(self.generator_codec)
        self.discriminator_codec_ref = executor.install(self.discriminator_codec)
        self.site_refs: dict[str, StateRef] = {}
        # Broadcast/result buffers run in the codecs' transport dtype, so a
        # float32 model's rounds move half the bytes of a float64 model's.
        self.global_generator = executor.shared_array(
            (self.generator_codec.dim,), dtype=self.generator_codec.dtype
        )
        self.global_discriminator = executor.shared_array(
            (self.discriminator_codec.dim,), dtype=self.discriminator_codec.dtype
        )
        self.generator_out = None
        self.discriminator_out = None
        self._capacity = 0

    def ensure_sites(self, sites: list[FederatedKiNETGANSite]) -> None:
        for site in sites:
            if site.site_id not in self.site_refs:
                self.site_refs[site.site_id] = self.executor.install(site)
        if len(sites) > self._capacity:
            for buffer in (self.generator_out, self.discriminator_out):
                if buffer is not None:
                    buffer.close()
            self._capacity = len(sites)
            self.generator_out = self.executor.shared_array(
                (self._capacity, self.generator_codec.dim), dtype=self.generator_codec.dtype
            )
            self.discriminator_out = self.executor.shared_array(
                (self._capacity, self.discriminator_codec.dim),
                dtype=self.discriminator_codec.dtype,
            )

    def close(self) -> None:
        for ref in self.site_refs.values():
            self.executor.evict(ref)
        self.site_refs.clear()
        self.executor.evict(self.generator_codec_ref)
        self.executor.evict(self.discriminator_codec_ref)
        for buffer in (
            self.global_generator,
            self.global_discriminator,
            self.generator_out,
            self.discriminator_out,
        ):
            if buffer is not None:
                buffer.close()


@dataclass
class FederatedKiNETGANRound:
    """Summary of one federated KiNETGAN round."""

    round_index: int
    participants: list[str]
    mean_generator_loss: float
    mean_discriminator_loss: float
    epsilon: float | None = None
    #: Sites selected for the round whose local training failed (after
    #: retries); the round aggregated over the surviving quorum only and
    #: the dropped sites' authoritative parent state was left untouched.
    dropped: list[str] = field(default_factory=list)


class FederatedKiNETGAN:
    """Coordinator for federated KiNETGAN weight averaging.

    Typical use::

        fed = FederatedKiNETGAN(
            reference_table=calibration_sample,
            catalog=bundle.catalog,
            condition_columns=bundle.condition_columns,
            config=KiNETGANConfig(epochs=1),     # epochs ignored, see local_epochs
        )
        fed.add_site("hospital-a", table_a)
        fed.add_site("hospital-b", table_b)
        fed.run(num_rounds=10, local_epochs=2)
        synthetic = fed.sample(5000)
    """

    def __init__(
        self,
        reference_table: Table,
        config: KiNETGANConfig | None = None,
        catalog: DomainCatalog | None = None,
        condition_columns: list[str] | None = None,
        dp_config: DPFedAvgConfig | None = None,
        seed: int = 0,
        executor: Executor | str | int | None = None,
        client_fraction: float = 1.0,
        transport: str = "resident",
        min_sites: int = 1,
        task_timeout: float | None = None,
        task_retries: int = 0,
        retry_backoff: float = 0.0,
    ) -> None:
        """``client_fraction`` subsamples the participating sites per round
        (the knob the federated detector server already has): each round
        trains ``max(1, round(fraction * n_sites))`` sites drawn without
        replacement from the coordinator's seeded RNG.  At the default 1.0
        no draw is consumed, so existing seeded runs replay bit-for-bit.

        ``transport`` selects the round transport: ``"resident"`` (default)
        installs each whole site into the execution plane once and
        round-trips only the per-site delta (mutable trainer state +
        flattened weight buffers, shared-memory backed under the process
        executor); ``"site"`` re-ships the whole pickled site both ways
        every round (the pre-resident reference transport).  Seeded results
        are bit-identical on either transport.

        ``min_sites`` / ``task_timeout`` / ``task_retries`` /
        ``retry_backoff`` mirror the federated detector server's resilience
        knobs: a site round that still fails after ``task_retries``
        bit-identical replays is skipped (recorded in the round's
        ``dropped``), its authoritative parent-site state is rolled back to
        its pre-round snapshot, and the round aggregates over the
        survivors; fewer than ``min_sites`` survivors raise
        :class:`~repro.runtime.QuorumError` with the global state
        untouched."""
        if not 0.0 < client_fraction <= 1.0:
            raise ValueError("client_fraction must be in (0, 1]")
        if transport not in ("resident", "site"):
            raise ValueError(f"unknown transport {transport!r}; options: ('resident', 'site')")
        if min_sites < 1:
            raise ValueError("min_sites must be at least 1")
        if task_retries < 0:
            raise ValueError("task_retries must be non-negative")
        self.min_sites = min_sites
        self.task_timeout = task_timeout
        self.task_retries = task_retries
        self.retry_backoff = retry_backoff
        self.config = config if config is not None else KiNETGANConfig()
        self.condition_columns = condition_columns
        self.client_fraction = client_fraction
        self.transport = transport
        self.seed = seed
        self.rng = seeded_rng(seed)
        self.executor = resolve_executor(executor)
        self.transformer = DataTransformer(
            max_modes=self.config.max_modes,
            continuous_encoding=self.config.continuous_encoding,
            seed=self.config.seed,
        ).fit(reference_table)
        self.reasoner: KGReasoner | None = None
        if catalog is not None and self.config.use_knowledge_discriminator:
            self.reasoner = KGReasoner(build_network_kg(catalog), field_map=catalog.field_map)
        self.sites: list[FederatedKiNETGANSite] = []
        self.dp_generator = DPFedAvgMechanism(dp_config, rng=self.rng) if dp_config else None
        self.dp_discriminator = DPFedAvgMechanism(dp_config, rng=self.rng) if dp_config else None
        self.rounds: list[FederatedKiNETGANRound] = []
        self._global_generator: StateDict | None = None
        self._global_discriminator: StateDict | None = None
        self._transport_state: _SiteTransport | None = None

    def release_transport(self) -> None:
        """Release the resident round transport but keep the executor open.

        For coordinators sharing a caller-owned executor: frees the
        installed sites, codecs and shared weight buffers without shutting
        the workers down (mirrors ``FederatedServer.release_transport``).
        """
        if self._transport_state is not None:
            self._transport_state.close()
            self._transport_state = None

    def close(self) -> None:
        """Release the round transport and the executor's worker pool."""
        self.release_transport()
        self.executor.close()

    def __enter__(self) -> "FederatedKiNETGAN":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def add_site(self, site_id: str, table: Table) -> FederatedKiNETGANSite:
        """Register a participating site holding ``table`` privately."""
        if any(site.site_id == site_id for site in self.sites):
            raise ValueError(f"duplicate site id {site_id!r}")
        site = FederatedKiNETGANSite(
            site_id=site_id,
            table=table,
            transformer=self.transformer,
            config=self.config,
            condition_columns=self._usable_condition_columns(table),
            reasoner=self.reasoner,
            seed=self.seed + len(self.sites),
        )
        self.sites.append(site)
        return site

    def _usable_condition_columns(self, table: Table) -> list[str] | None:
        if self.condition_columns is None:
            return None
        usable = [name for name in self.condition_columns if name in table.schema]
        return usable or None

    # ------------------------------------------------------------------ #
    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def _require_sites(self) -> None:
        if len(self.sites) < 2:
            raise RuntimeError("federated training needs at least two sites")

    def _initialise_global(self) -> None:
        if self._global_generator is None:
            generator_state, discriminator_state = self.sites[0].get_state()
            self._global_generator = copy_state(generator_state)
            self._global_discriminator = copy_state(discriminator_state)

    def _select_sites(self) -> list[int]:
        """Seeded per-round site subset (indices into ``self.sites``).

        At ``client_fraction == 1.0`` every site participates and *no* RNG
        draw is consumed, keeping pre-subsampling seeded runs bit-identical.
        Below 1.0 the subset is a pure function of the coordinator seed and
        the round index, so serial and process-pool runs select the same
        sites (the selection happens in the parent, before dispatch).
        """
        if self.client_fraction >= 1.0:
            return list(range(len(self.sites)))
        count = max(1, int(round(self.client_fraction * len(self.sites))))
        indices = self.rng.choice(len(self.sites), size=count, replace=False)
        return sorted(int(i) for i in indices)

    def run_round(self, local_epochs: int = 1) -> FederatedKiNETGANRound:
        """One round: select sites, broadcast, local training, (DP) aggregation.

        Sites train through the coordinator's executor.  On the default
        resident transport each whole site lives in the execution plane
        (installed once) and a round exchanges only the per-site delta:
        mutable trainer state down and up, flattened weights through the
        shared broadcast / result buffers.  On the legacy ``"site"``
        transport each work unit carries the whole pickled site both ways
        and the coordinator's site absorbs the returned copy.  Either way a
        round on a process or thread pool is bit-identical to a serial one
        and existing site handles keep pointing at the trained state.

        When tracing is enabled the round runs inside a
        ``federated.round`` span whose context rides the task envelope, so
        every worker-side ``federated.site_round`` span -- even in a
        process-pool worker -- parents to this round (see ``repro.obs``).
        """
        with span(
            "federated.round", round=len(self.rounds), transport=self.transport
        ):
            return self._run_round(local_epochs)

    def _run_round(self, local_epochs: int) -> FederatedKiNETGANRound:
        self._require_sites()
        self._initialise_global()
        assert self._global_generator is not None and self._global_discriminator is not None

        selected = self._select_sites()
        if self.transport == "resident":
            states = self._run_resident_round(selected, local_epochs)
            generator_states, discriminator_states, weights, metrics_list = states[:4]
            survivor_indices, dropped = states[4], states[5]
        else:
            tasks = [
                _SiteTask(
                    site=self.sites[index],
                    generator_state=self._global_generator,
                    discriminator_state=self._global_discriminator,
                    local_epochs=local_epochs,
                )
                for index in selected
            ]
            survivors, dropped = self._dispatch(
                _run_site_task, tasks, [self.sites[index].site_id for index in selected]
            )
            generator_states = []
            discriminator_states = []
            weights = []
            metrics_list = []
            survivor_indices = []
            for slot, (site, metrics) in survivors:
                index = selected[slot]
                survivor_indices.append(index)
                self.sites[index].absorb(site)
                metrics_list.append(metrics)
                generator_state, discriminator_state = site.get_state()
                generator_states.append(generator_state)
                discriminator_states.append(discriminator_state)
                weights.append(float(site.n_records))

        generator_losses = [m.get("generator_loss", float("nan")) for m in metrics_list]
        discriminator_losses = [m.get("discriminator_loss", float("nan")) for m in metrics_list]

        new_generator = self._aggregate(
            generator_states, weights, self._global_generator, self.dp_generator
        )
        new_discriminator = self._aggregate(
            discriminator_states, weights, self._global_discriminator, self.dp_discriminator
        )
        self._global_generator = new_generator
        self._global_discriminator = new_discriminator

        epsilon = None
        if self.dp_generator is not None:
            sample_rate = len(survivor_indices) / len(self.sites)
            self.dp_generator.record_round(sample_rate=sample_rate)
            self.dp_discriminator.record_round(sample_rate=sample_rate)
            epsilon = self.dp_generator.epsilon() + self.dp_discriminator.epsilon()

        round_info = FederatedKiNETGANRound(
            round_index=len(self.rounds),
            participants=[self.sites[index].site_id for index in survivor_indices],
            mean_generator_loss=safe_mean(generator_losses),
            mean_discriminator_loss=safe_mean(discriminator_losses),
            epsilon=epsilon,
            dropped=dropped,
        )
        self.rounds.append(round_info)
        return round_info

    def _dispatch(
        self, fn, tasks: list, site_ids: list[str]
    ) -> tuple[list[tuple[int, object]], list[str]]:
        """Fan one round's site tasks out; keep survivors, enforce quorum."""
        return map_with_quorum(
            self.executor,
            fn,
            tasks,
            site_ids,
            min_survivors=self.min_sites,
            timeout=self.task_timeout,
            retries=self.task_retries,
            backoff=self.retry_backoff,
            unit="site",
        )

    def _run_resident_round(
        self, selected: list[int], local_epochs: int
    ) -> tuple[list[StateDict], list[StateDict], list[float], list[dict], list[int], list[str]]:
        """Dispatch one delta round over the resident transport.

        Returns the per-surviving-site (generator state, discriminator
        state, weight, metrics) the aggregation consumes -- decoded out of
        the shared result matrices -- plus the surviving site indices and
        the dropped site ids.  The coordinator's own site objects are kept
        in lockstep with their worker-resident twins: the returned trainer
        state and the decoded weights are applied to them, so external site
        handles always see the trained state, exactly as the legacy
        transport's ``absorb`` provided.  A site whose round still failed
        after every retry is rolled back to its pre-round snapshot (trainer
        state, history, broadcast weights): under the in-process executors
        the worker trains the parent's own site object, so a post-hoc
        deadline miss would otherwise leave a half-round behind in the
        authoritative state.
        """
        assert self._global_generator is not None and self._global_discriminator is not None
        if self._transport_state is None:
            self._transport_state = _SiteTransport(
                self.executor, self._global_generator, self._global_discriminator
            )
        transport = self._transport_state
        transport.ensure_sites(self.sites)
        assert transport.generator_out is not None and transport.discriminator_out is not None
        transport.generator_codec.encode(
            self._global_generator, out=transport.global_generator.array
        )
        transport.discriminator_codec.encode(
            self._global_discriminator, out=transport.global_discriminator.array
        )
        # Captured before dispatch: under the in-process executors the
        # worker appends to the parent's own history object mid-map.
        history_lengths = [self.sites[index].history_lengths() for index in selected]
        tasks = [
            _SiteRoundTask(
                site=transport.site_refs[self.sites[index].site_id],
                trainer_state=self.sites[index].trainer_state(),
                generator_codec=transport.generator_codec_ref,
                discriminator_codec=transport.discriminator_codec_ref,
                global_generator=transport.global_generator.ref(),
                global_discriminator=transport.global_discriminator.ref(),
                generator_out=transport.generator_out.ref(slot),
                discriminator_out=transport.discriminator_out.ref(slot),
                local_epochs=local_epochs,
            )
            for slot, index in enumerate(selected)
        ]
        survivors, dropped = self._dispatch(
            _run_site_round, tasks, [self.sites[index].site_id for index in selected]
        )

        generator_states: list[StateDict] = []
        discriminator_states: list[StateDict] = []
        weights: list[float] = []
        metrics_list: list[dict] = []
        survivor_indices: list[int] = []
        surviving_slots = set()
        for slot, (trainer_state, history_tail, metrics) in survivors:
            index = selected[slot]
            surviving_slots.add(slot)
            survivor_indices.append(index)
            site = self.sites[index]
            site.load_trainer_state(trainer_state)
            site.apply_history_tail(history_lengths[slot], history_tail)
            generator_state = transport.generator_codec.decode(
                np.array(transport.generator_out.array[slot], copy=True)
            )
            discriminator_state = transport.discriminator_codec.decode(
                np.array(transport.discriminator_out.array[slot], copy=True)
            )
            # Mirror the worker's trained weights onto the parent site.
            site.set_state(generator_state, discriminator_state)
            generator_states.append(generator_state)
            discriminator_states.append(discriminator_state)
            weights.append(float(site.n_records))
            metrics_list.append(metrics)
        for slot, index in enumerate(selected):
            if slot in surviving_slots:
                continue
            # Roll a dropped site back to its pre-round snapshot: the task
            # still carries the trainer state captured before dispatch, the
            # broadcast buffers still hold the round's global weights, and
            # an empty tail truncates any half-round history entries an
            # in-process attempt appended before failing.
            site = self.sites[index]
            site.load_trainer_state(tasks[slot].trainer_state)
            site.apply_history_tail(
                history_lengths[slot], {name: [] for name in site._HISTORY_FIELDS}
            )
            site.load_flat_state(
                transport.generator_codec,
                transport.global_generator.array,
                transport.discriminator_codec,
                transport.global_discriminator.array,
            )
        return (
            generator_states,
            discriminator_states,
            weights,
            metrics_list,
            survivor_indices,
            dropped,
        )

    def _aggregate(
        self,
        states: list[StateDict],
        weights: list[float],
        global_state: StateDict,
        dp_mechanism: DPFedAvgMechanism | None,
    ) -> StateDict:
        if dp_mechanism is None:
            return weighted_average(states, weights)
        # DP path: clip each site's *delta* and noise the averaged delta.
        deltas = [
            dp_mechanism.clip_update(state_subtract(state, global_state)) for state in states
        ]
        averaged = weighted_average(deltas, weights)
        averaged = dp_mechanism.noise_average(averaged, n_clients=len(deltas))
        return state_add(global_state, averaged)

    def run(self, num_rounds: int, local_epochs: int = 1) -> list[FederatedKiNETGANRound]:
        """Run several rounds; returns the per-round summaries."""
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        for _ in range(num_rounds):
            self.run_round(local_epochs=local_epochs)
        return self.rounds

    # ------------------------------------------------------------------ #
    def global_states(self) -> tuple[StateDict, StateDict]:
        """The current global (generator, discriminator) states."""
        if self._global_generator is None or self._global_discriminator is None:
            raise RuntimeError("run at least one round first")
        return copy_state(self._global_generator), copy_state(self._global_discriminator)

    def sample(self, n: int, rng: np.random.Generator | None = None) -> Table:
        """Pooled synthetic rows generated at the sites with the global weights.

        Each site generates a share proportional to its data size using its
        *local* condition distribution, which is exactly how deployment would
        look: the coordinator never needs a condition distribution of its own.
        """
        self._require_sites()
        if n <= 0:
            raise ValueError("n must be positive")
        if self._global_generator is None:
            raise RuntimeError("run at least one round before sampling")
        rng = rng if rng is not None else sampling_rng(self.seed)
        total_records = sum(site.n_records for site in self.sites)
        pooled: Table | None = None
        remaining = n
        for i, site in enumerate(self.sites):
            if i == len(self.sites) - 1:
                share = remaining
            else:
                share = int(round(n * site.n_records / total_records))
                share = min(share, remaining)
            if share <= 0:
                continue
            site.set_state(self._global_generator, self._global_discriminator)
            local = site.sample(share, rng)
            pooled = local if pooled is None else pooled.concat(local)
            remaining -= share
        assert pooled is not None
        return pooled
