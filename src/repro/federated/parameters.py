"""Parameter-vector utilities for federated training.

Federated averaging operates on model *state dictionaries* (the
``name -> ndarray`` mapping produced by
:meth:`repro.neural.network.Sequential.state_dict`).  The workhorse here is
:class:`StateCodec`, a fixed flattened-buffer layout derived from a template
state: it encodes any compatible state into one contiguous vector (and a
batch of states into a ``(clients, total_params)`` matrix), so aggregation
rules become single stacked array operations instead of per-tensor Python
loops.  The transport dtype follows the template: an all-float32 state
encodes into float32 vectors -- half the bytes per federated round -- while
anything else keeps the historical float64 layout.  The historical helpers
(``flatten_state``, ``weighted_average``, ...) are kept as thin wrappers
over the codec.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "StateDict",
    "StateCodec",
    "copy_state",
    "zeros_like_state",
    "state_add",
    "state_subtract",
    "state_scale",
    "state_l2_norm",
    "clip_state_norm",
    "weighted_average",
    "flatten_state",
    "unflatten_state",
]

#: A model state: parameter (and buffer) name to array.
StateDict = dict[str, np.ndarray]

#: A flattening layout: (key, shape) in encoding order.
Layout = list[tuple[str, tuple[int, ...]]]


class StateCodec:
    """Fixed layout between state dictionaries and flat vectors.

    The layout is taken from a template state with keys sorted, so two
    states with the same keys and shapes always encode to the same vector
    positions -- the invariant both FedAvg stacking and the secure
    aggregation masking rely on.  ``encode_many`` packs a whole round of
    client states into one ``(clients, total_params)`` matrix; aggregation
    then reduces over axis 0 in a single pass.

    The transport dtype (:attr:`dtype`) is float32 when every floating
    entry of the template is float32, float64 otherwise -- so float32
    models ship float32 vectors end to end.
    """

    def __init__(self, template: StateDict) -> None:
        self.keys: tuple[str, ...] = tuple(sorted(template))
        self.shapes: dict[str, tuple[int, ...]] = {}
        self.dtypes: dict[str, np.dtype] = {}
        self._spans: dict[str, tuple[int, int]] = {}
        cursor = 0
        for key in self.keys:
            value = np.asarray(template[key])
            self.shapes[key] = value.shape
            self.dtypes[key] = value.dtype
            size = int(value.size)
            self._spans[key] = (cursor, cursor + size)
            cursor += size
        self.dim = cursor
        floating = {dt for dt in self.dtypes.values() if np.issubdtype(dt, np.floating)}
        self.dtype: np.dtype = (
            np.dtype(np.float32) if floating == {np.dtype(np.float32)} else np.dtype(np.float64)
        )
        # Last verified flat view: the exact arrays of an arena-backed state
        # plus the contiguous view covering them.  Holding the arrays pins
        # their identities, so an all-``is`` match on a later call proves the
        # walk's conclusion still holds without re-reading data pointers.
        self._fast_cache: tuple[tuple[np.ndarray, ...], np.ndarray] | None = None

    def __getstate__(self) -> dict:
        # The cached arrays are live model parameters; pickled codecs must
        # not drag a whole network's state along.
        state = self.__dict__.copy()
        state["_fast_cache"] = None
        return state

    # ------------------------------------------------------------------ #
    @property
    def layout(self) -> Layout:
        """The ``(key, shape)`` list in encoding order (sorted keys)."""
        return [(key, self.shapes[key]) for key in self.keys]

    def _validate(self, state: StateDict) -> None:
        if set(state) != set(self.keys):
            raise ValueError("state dictionaries have different keys")
        for key in self.keys:
            shape = np.asarray(state[key]).shape
            if shape != self.shapes[key]:
                raise ValueError(
                    f"shape mismatch for {key!r}: {self.shapes[key]} vs {shape}"
                )

    # ------------------------------------------------------------------ #
    def _flat_view(self, state: StateDict) -> np.ndarray | None:
        """One contiguous view covering ``state`` in layout order, or ``None``.

        The states of arena-consolidated networks (see
        :mod:`repro.neural.arena`) are views in the codec's transport dtype
        laid out back-to-back in sorted-key order inside one flat buffer;
        detecting that turns :meth:`encode` / :meth:`decode_into` into a
        single ``memcpy``.
        The check walks the entries once (O(keys) pointer arithmetic) and
        caches its verdict against the exact array objects, so the steady
        state -- a resident site encoding the same live network every round
        -- pays only an identity sweep before the copy.
        """
        if not self.keys:
            return None
        cached = getattr(self, "_fast_cache", None)
        if cached is not None and len(state) == len(self.keys):
            values, flat = cached
            for key, value in zip(self.keys, values):
                if state.get(key) is not value:
                    break
            else:
                return flat
        first = state.get(self.keys[0])
        if not isinstance(first, np.ndarray):
            return None
        dtype = self.dtype
        itemsize = dtype.itemsize
        expected = first.__array_interface__["data"][0]
        begin = expected
        root = first
        while isinstance(root.base, np.ndarray):
            root = root.base
        # A remaining non-None base means foreign memory (memoryview, mmap,
        # pickle buffer); offset arithmetic against it is not worth trusting.
        if root.base is not None or root.dtype != dtype or not root.flags.c_contiguous:
            return None
        for key in self.keys:
            value = state.get(key)
            if (
                not isinstance(value, np.ndarray)
                or value.dtype != dtype
                or not value.flags.c_contiguous
                or value.shape != self.shapes[key]
            ):
                return None
            if value.__array_interface__["data"][0] != expected:
                return None
            expected += value.nbytes
        if len(state) != len(self.keys) or expected - begin != self.dim * itemsize:
            return None
        root_begin = root.__array_interface__["data"][0]
        offset, remainder = divmod(begin - root_begin, itemsize)
        if remainder or offset < 0 or offset + self.dim > root.size:
            return None
        view = root.reshape(-1)[offset : offset + self.dim]
        self._fast_cache = (tuple(state[key] for key in self.keys), view)
        return view

    def encode(self, state: StateDict, out: np.ndarray | None = None) -> np.ndarray:
        """Flatten ``state`` into a ``(dim,)`` vector in the transport dtype.

        Arena-backed states (contiguous views in layout order) are encoded
        with one ``np.copyto``; anything else takes the per-key path.
        """
        vector = out if out is not None else np.empty(self.dim, dtype=self.dtype)
        flat = self._flat_view(state)
        if flat is not None:
            np.copyto(vector, flat)
            return vector
        self._validate(state)
        for key in self.keys:
            start, end = self._spans[key]
            vector[start:end] = np.asarray(state[key], dtype=self.dtype).ravel()
        return vector

    def encode_many(self, states: list[StateDict]) -> np.ndarray:
        """Pack ``states`` into a ``(len(states), dim)`` transport-dtype matrix."""
        if not states:
            raise ValueError("need at least one state to encode")
        matrix = np.empty((len(states), self.dim), dtype=self.dtype)
        for row, state in enumerate(states):
            self.encode(state, out=matrix[row])
        return matrix

    def decode(self, vector: np.ndarray) -> StateDict:
        """Inverse of :meth:`encode`.

        Floating template dtypes are restored; any non-float entry stays
        in the transport dtype, because decoded vectors are usually
        *aggregates* (means, medians, masked sums) and casting those back
        to an integer dtype would silently truncate them.
        """
        vector = np.asarray(vector, dtype=self.dtype)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected a ({self.dim},) vector, got shape {vector.shape}")
        state: StateDict = {}
        for key in self.keys:
            start, end = self._spans[key]
            chunk = vector[start:end].reshape(self.shapes[key])
            dtype = self.dtypes[key]
            if np.issubdtype(dtype, np.floating):
                chunk = chunk.astype(dtype, copy=False)
            state[key] = chunk
        return state

    def decode_into(self, vector: np.ndarray, state: StateDict) -> StateDict:
        """Copy a flat ``vector`` into an existing state's arrays in place.

        The in-place inverse of :meth:`encode`: where :meth:`decode` builds a
        standalone dictionary (what aggregation wants), this fills the live
        arrays of an already-built model -- the broadcast path of a resident
        federated site.  Arena-backed states take a single ``np.copyto``.
        """
        vector = np.asarray(vector, dtype=self.dtype)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected a ({self.dim},) vector, got shape {vector.shape}")
        flat = self._flat_view(state)
        if flat is not None:
            np.copyto(flat, vector)
            return state
        self._validate(state)
        for key in self.keys:
            start, end = self._spans[key]
            state[key][...] = vector[start:end].reshape(self.shapes[key])
        return state


def _check_compatible(a: StateDict, b: StateDict) -> None:
    if set(a) != set(b):
        raise ValueError("state dictionaries have different keys")
    for key in a:
        if a[key].shape != b[key].shape:
            raise ValueError(f"shape mismatch for {key!r}: {a[key].shape} vs {b[key].shape}")


def copy_state(state: StateDict) -> StateDict:
    """A deep copy of a state dictionary."""
    return {key: np.array(value, copy=True) for key, value in state.items()}


def zeros_like_state(state: StateDict) -> StateDict:
    """A state of zeros with the same keys and shapes."""
    return {key: np.zeros_like(value) for key, value in state.items()}


def state_add(a: StateDict, b: StateDict) -> StateDict:
    """Element-wise ``a + b``."""
    _check_compatible(a, b)
    return {key: a[key] + b[key] for key in a}


def state_subtract(a: StateDict, b: StateDict) -> StateDict:
    """Element-wise ``a - b`` (e.g. the client update ``local - global``)."""
    _check_compatible(a, b)
    return {key: a[key] - b[key] for key in a}


def state_scale(state: StateDict, factor: float) -> StateDict:
    """Element-wise ``factor * state``."""
    return {key: factor * value for key, value in state.items()}


def state_l2_norm(state: StateDict) -> float:
    """Global L2 norm over every entry of the state."""
    total = 0.0
    for value in state.values():
        total += float((np.asarray(value, dtype=np.float64) ** 2).sum())
    return float(np.sqrt(total))


def clip_state_norm(state: StateDict, max_norm: float) -> tuple[StateDict, float]:
    """Scale ``state`` so its global L2 norm is at most ``max_norm``.

    Returns the (possibly scaled) copy and the pre-clipping norm; this is the
    client-update clipping step of DP-FedAvg.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = state_l2_norm(state)
    if norm <= max_norm or norm == 0.0:
        return copy_state(state), norm
    return state_scale(state, max_norm / norm), norm


def weighted_average(states: list[StateDict], weights: list[float] | None = None) -> StateDict:
    """Weighted element-wise average of several states (FedAvg).

    ``weights`` defaults to uniform; they are normalised internally, so
    passing per-client example counts gives the canonical FedAvg weighting.
    The whole round is one stacked ``np.average`` over the codec's
    ``(clients, total_params)`` matrix.
    """
    if not states:
        raise ValueError("need at least one state to average")
    if weights is None:
        weights = [1.0] * len(states)
    if len(weights) != len(states):
        raise ValueError("weights and states must have the same length")
    weight_array = np.asarray(weights, dtype=np.float64)
    if np.any(weight_array < 0):
        raise ValueError("weights must be non-negative")
    if float(weight_array.sum()) <= 0:
        raise ValueError("weights must not all be zero")

    codec = StateCodec(states[0])
    matrix = codec.encode_many(states)
    return codec.decode(np.average(matrix, axis=0, weights=weight_array))


def flatten_state(state: StateDict) -> tuple[np.ndarray, Layout]:
    """Flatten a state into a single vector plus the layout needed to undo it.

    Keys are sorted so that two states with the same keys always flatten to
    the same layout (required by the secure-aggregation masking).
    """
    codec = StateCodec(state)
    return codec.encode(state), codec.layout


def unflatten_state(vector: np.ndarray, layout: Layout) -> StateDict:
    """Inverse of :func:`flatten_state` (the vector's floating dtype is kept)."""
    vector = np.asarray(vector)
    if not np.issubdtype(vector.dtype, np.floating):
        vector = vector.astype(np.float64)
    state: StateDict = {}
    cursor = 0
    for key, shape in layout:
        size = int(np.prod(shape)) if shape else 1
        chunk = vector[cursor : cursor + size]
        if chunk.size != size:
            raise ValueError("vector is too short for the given layout")
        state[key] = chunk.reshape(shape)
        cursor += size
    if cursor != vector.size:
        raise ValueError("vector is longer than the given layout")
    return state
