"""Parameter-vector utilities for federated training.

Federated averaging operates on model *state dictionaries* (the
``name -> ndarray`` mapping produced by
:meth:`repro.neural.network.Sequential.state_dict`).  The helpers here treat
such dictionaries as flat vectors: weighted averages, differences, norms and
(de)flattening, all without mutating the inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "StateDict",
    "copy_state",
    "zeros_like_state",
    "state_add",
    "state_subtract",
    "state_scale",
    "state_l2_norm",
    "clip_state_norm",
    "weighted_average",
    "flatten_state",
    "unflatten_state",
]

#: A model state: parameter (and buffer) name to array.
StateDict = dict[str, np.ndarray]


def _check_compatible(a: StateDict, b: StateDict) -> None:
    if set(a) != set(b):
        raise ValueError("state dictionaries have different keys")
    for key in a:
        if a[key].shape != b[key].shape:
            raise ValueError(f"shape mismatch for {key!r}: {a[key].shape} vs {b[key].shape}")


def copy_state(state: StateDict) -> StateDict:
    """A deep copy of a state dictionary."""
    return {key: np.array(value, copy=True) for key, value in state.items()}


def zeros_like_state(state: StateDict) -> StateDict:
    """A state of zeros with the same keys and shapes."""
    return {key: np.zeros_like(value) for key, value in state.items()}


def state_add(a: StateDict, b: StateDict) -> StateDict:
    """Element-wise ``a + b``."""
    _check_compatible(a, b)
    return {key: a[key] + b[key] for key in a}


def state_subtract(a: StateDict, b: StateDict) -> StateDict:
    """Element-wise ``a - b`` (e.g. the client update ``local - global``)."""
    _check_compatible(a, b)
    return {key: a[key] - b[key] for key in a}


def state_scale(state: StateDict, factor: float) -> StateDict:
    """Element-wise ``factor * state``."""
    return {key: factor * value for key, value in state.items()}


def state_l2_norm(state: StateDict) -> float:
    """Global L2 norm over every entry of the state."""
    total = 0.0
    for value in state.values():
        total += float((np.asarray(value, dtype=np.float64) ** 2).sum())
    return float(np.sqrt(total))


def clip_state_norm(state: StateDict, max_norm: float) -> tuple[StateDict, float]:
    """Scale ``state`` so its global L2 norm is at most ``max_norm``.

    Returns the (possibly scaled) copy and the pre-clipping norm; this is the
    client-update clipping step of DP-FedAvg.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = state_l2_norm(state)
    if norm <= max_norm or norm == 0.0:
        return copy_state(state), norm
    return state_scale(state, max_norm / norm), norm


def weighted_average(states: list[StateDict], weights: list[float] | None = None) -> StateDict:
    """Weighted element-wise average of several states (FedAvg).

    ``weights`` defaults to uniform; they are normalised internally, so
    passing per-client example counts gives the canonical FedAvg weighting.
    """
    if not states:
        raise ValueError("need at least one state to average")
    if weights is None:
        weights = [1.0] * len(states)
    if len(weights) != len(states):
        raise ValueError("weights and states must have the same length")
    weight_array = np.asarray(weights, dtype=np.float64)
    if np.any(weight_array < 0):
        raise ValueError("weights must be non-negative")
    total = float(weight_array.sum())
    if total <= 0:
        raise ValueError("weights must not all be zero")
    weight_array = weight_array / total

    reference = states[0]
    for state in states[1:]:
        _check_compatible(reference, state)
    average = zeros_like_state(reference)
    for state, weight in zip(states, weight_array):
        for key in average:
            average[key] += weight * state[key]
    return average


def flatten_state(state: StateDict) -> tuple[np.ndarray, list[tuple[str, tuple[int, ...]]]]:
    """Flatten a state into a single vector plus the layout needed to undo it.

    Keys are sorted so that two states with the same keys always flatten to
    the same layout (required by the secure-aggregation masking).
    """
    layout: list[tuple[str, tuple[int, ...]]] = []
    chunks: list[np.ndarray] = []
    for key in sorted(state):
        value = np.asarray(state[key], dtype=np.float64)
        layout.append((key, value.shape))
        chunks.append(value.ravel())
    if not chunks:
        return np.zeros(0, dtype=np.float64), layout
    return np.concatenate(chunks), layout


def unflatten_state(vector: np.ndarray, layout: list[tuple[str, tuple[int, ...]]]) -> StateDict:
    """Inverse of :func:`flatten_state`."""
    vector = np.asarray(vector, dtype=np.float64)
    state: StateDict = {}
    cursor = 0
    for key, shape in layout:
        size = int(np.prod(shape)) if shape else 1
        chunk = vector[cursor : cursor + size]
        if chunk.size != size:
            raise ValueError("vector is too short for the given layout")
        state[key] = chunk.reshape(shape)
        cursor += size
    if cursor != vector.size:
        raise ValueError("vector is longer than the given layout")
    return state
