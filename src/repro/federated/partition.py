"""Partitioning a table across federated clients.

Three standard splits are provided:

* :func:`iid_partition` -- uniformly random assignment.
* :func:`label_skew_partition` -- each label has a "home" client that
  receives a configurable share of its rows (the non-IID setting used by the
  distributed benchmarks).
* :func:`dirichlet_partition` -- per-label client proportions drawn from a
  Dirichlet distribution, the common benchmark for heterogeneous FL; small
  ``alpha`` means severe skew.

All partitioners guarantee every client receives at least ``min_rows`` rows
(topping up from the global pool if necessary), because an empty client
cannot train.
"""

from __future__ import annotations

import numpy as np

from repro.tabular.table import Table

__all__ = ["iid_partition", "label_skew_partition", "dirichlet_partition"]


def _validate(table: Table, num_clients: int, min_rows: int) -> None:
    if num_clients < 2:
        raise ValueError("num_clients must be at least 2")
    if min_rows < 1:
        raise ValueError("min_rows must be at least 1")
    if table.n_rows < num_clients * min_rows:
        raise ValueError(
            f"table has {table.n_rows} rows, not enough for {num_clients} clients "
            f"with at least {min_rows} rows each"
        )


def _materialise(
    table: Table, assignments: np.ndarray, num_clients: int, min_rows: int,
    rng: np.random.Generator,
) -> list[Table]:
    partitions: list[np.ndarray] = [
        np.nonzero(assignments == client)[0] for client in range(num_clients)
    ]
    # Top up clients that fell below the minimum from the largest partitions.
    for client in range(num_clients):
        while len(partitions[client]) < min_rows:
            donor = int(np.argmax([len(p) for p in partitions]))
            if donor == client or len(partitions[donor]) <= min_rows:
                break
            take = rng.integers(0, len(partitions[donor]))
            moved = partitions[donor][take]
            partitions[donor] = np.delete(partitions[donor], take)
            partitions[client] = np.append(partitions[client], moved)
    return [table.select_rows(indices) for indices in partitions]


def iid_partition(
    table: Table, num_clients: int, rng: np.random.Generator, min_rows: int = 5
) -> list[Table]:
    """Assign every row to a uniformly random client."""
    _validate(table, num_clients, min_rows)
    assignments = rng.integers(0, num_clients, size=table.n_rows)
    return _materialise(table, assignments, num_clients, min_rows, rng)


def label_skew_partition(
    table: Table,
    label_column: str,
    num_clients: int,
    rng: np.random.Generator,
    skew: float = 0.7,
    min_rows: int = 5,
) -> list[Table]:
    """Each label value has a home client that receives ``skew`` of its rows.

    ``skew = 0`` reduces to the IID split; ``skew`` close to 1 gives each
    client an almost disjoint set of labels (a device that has never seen a
    given attack class, the motivating scenario of the paper).
    """
    _validate(table, num_clients, min_rows)
    if not 0.0 <= skew < 1.0:
        raise ValueError("skew must be in [0, 1)")
    labels = table.column(label_column)
    label_values = list(dict.fromkeys(labels))
    home = {value: i % num_clients for i, value in enumerate(label_values)}
    assignments = np.empty(table.n_rows, dtype=int)
    for i, value in enumerate(labels):
        if rng.uniform() < skew:
            assignments[i] = home[value]
        else:
            assignments[i] = rng.integers(0, num_clients)
    return _materialise(table, assignments, num_clients, min_rows, rng)


def dirichlet_partition(
    table: Table,
    label_column: str,
    num_clients: int,
    rng: np.random.Generator,
    alpha: float = 0.5,
    min_rows: int = 5,
) -> list[Table]:
    """Per-label Dirichlet(alpha) allocation across clients.

    This is the standard federated-learning heterogeneity benchmark: for
    every label value a categorical distribution over clients is drawn from
    ``Dirichlet(alpha, ..., alpha)`` and the label's rows are assigned
    accordingly.  ``alpha -> infinity`` recovers IID, small ``alpha`` gives
    extreme skew.
    """
    _validate(table, num_clients, min_rows)
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    labels = table.column(label_column)
    assignments = np.empty(table.n_rows, dtype=int)
    for value in dict.fromkeys(labels):
        indices = np.nonzero(labels == value)[0]
        proportions = rng.dirichlet([alpha] * num_clients)
        assignments[indices] = rng.choice(num_clients, size=len(indices), p=proportions)
    return _materialise(table, assignments, num_clients, min_rows, rng)
