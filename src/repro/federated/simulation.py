"""End-to-end federated NIDS simulation.

Complements :class:`repro.distributed.simulation.DistributedNIDSSimulation`
(which shares synthetic *rows*) with the weight-sharing alternative the paper
lists as future work: the devices jointly train a single neural detector by
federated averaging, never exchanging traffic at all.  The simulation reports
four strategies on the same real test split:

* ``local_only`` -- mean accuracy of per-device detectors,
* ``federated`` -- FedAvg-trained global detector,
* ``federated_dp`` -- the same with client-level DP-FedAvg (optional),
* ``centralised`` -- the pool-all-raw-data upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.federated.client import FederatedClient
from repro.federated.dp import DPFedAvgConfig
from repro.federated.partition import label_skew_partition
from repro.federated.server import FederatedServer
from repro.neural.layers import Dense, ReLU
from repro.neural.network import Sequential
from repro.nids.features import TabularFeaturizer
from repro.nids.metrics import accuracy_score, f1_score
from repro.runtime import Executor, map_with_quorum, resolve_executor
from repro.runtime.state import StateRef
from repro.tabular.split import train_test_split

__all__ = ["DetectorFactory", "FederatedNIDSResult", "FederatedNIDSSimulation"]


@dataclass(frozen=True)
class DetectorFactory:
    """Picklable factory for the shared detector architecture.

    The federated runtime ships clients to worker processes, so the model
    factory every client carries must survive pickling -- a plain dataclass
    of hyper-parameters does, where the closure the simulation previously
    built did not.

    ``dtype`` selects the detector's parameter precision (see
    ``docs/precision.md``): float32 detectors halve the parameter bytes each
    federated round moves, and initialisation draws in float64 before the
    one rounding cast, so a float32 detector's init is the float64 init
    rounded once.
    """

    n_features: int
    n_classes: int
    hidden_dims: tuple[int, ...]
    seed: int
    dtype: str = "float64"

    def __call__(self) -> Sequential:
        rng = np.random.default_rng(self.seed)
        dtype = np.dtype(self.dtype)
        layers: list = []
        width = self.n_features
        for hidden in self.hidden_dims:
            layers.append(Dense(width, hidden, rng=rng, init="he", dtype=dtype))
            layers.append(ReLU())
            width = hidden
        layers.append(Dense(width, self.n_classes, rng=rng, init="glorot", dtype=dtype))
        network = Sequential(layers)
        network.consolidate()
        return network


@dataclass
class _SoloTask:
    """Train one client alone for the local-only baseline (executor unit).

    The client rides as a resident-state ref and the (identical for every
    task) evaluation matrices as one shared ref, so the payload transport
    no longer pickles the test set once per client.
    """

    client: StateRef
    model_fn: DetectorFactory
    num_rounds: int
    seed: int
    eval_set: StateRef


def _run_solo_task(task: _SoloTask) -> tuple[str, float, float]:
    """Module-level worker: full solo training of one client, then eval."""
    client: FederatedClient = task.client.resolve()
    test_features, test_labels = task.eval_set.resolve()
    server = FederatedServer(task.model_fn, [client], seed=task.seed)
    server.run(task.num_rounds)
    predictions = server.predict(test_features)
    return (
        client.client_id,
        accuracy_score(test_labels, predictions),
        f1_score(test_labels, predictions),
    )


@dataclass
class FederatedNIDSResult:
    """Accuracy / macro-F1 of each strategy plus the DP budget if applicable."""

    local_only: float
    federated: float
    centralised: float
    local_only_f1: float
    federated_f1: float
    centralised_f1: float
    federated_dp: float | None = None
    federated_dp_f1: float | None = None
    epsilon: float | None = None
    per_client_local: dict[str, float] = field(default_factory=dict)
    round_accuracies: list[float] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [
            f"local-only={self.local_only:.3f}",
            f"federated={self.federated:.3f}",
            f"centralised={self.centralised:.3f}",
        ]
        if self.federated_dp is not None:
            parts.append(f"federated-DP={self.federated_dp:.3f} (eps={self.epsilon:.2f})")
        return "accuracy: " + "  ".join(parts)


class FederatedNIDSSimulation:
    """Compares local-only, federated and centralised detector training."""

    def __init__(
        self,
        bundle: DatasetBundle,
        num_clients: int = 4,
        skew: float = 0.6,
        hidden_dims: tuple[int, ...] = (64, 32),
        num_rounds: int = 15,
        local_epochs: int = 2,
        learning_rate: float = 0.1,
        batch_size: int = 64,
        client_fraction: float = 1.0,
        dp_config: DPFedAvgConfig | None = None,
        test_fraction: float = 0.25,
        seed: int = 0,
        executor: Executor | str | int | None = None,
        transport: str = "resident",
        min_clients: int = 1,
        task_timeout: float | None = None,
        task_retries: int = 0,
        retry_backoff: float = 0.0,
    ) -> None:
        if num_rounds <= 0 or local_epochs <= 0:
            raise ValueError("num_rounds and local_epochs must be positive")
        if transport not in ("resident", "payload"):
            raise ValueError(f"unknown transport {transport!r}; options: ('resident', 'payload')")
        if min_clients < 1:
            raise ValueError("min_clients must be at least 1")
        self.bundle = bundle
        self.num_clients = num_clients
        self.skew = skew
        self.hidden_dims = hidden_dims
        self.num_rounds = num_rounds
        self.local_epochs = local_epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.client_fraction = client_fraction
        self.dp_config = dp_config
        self.test_fraction = test_fraction
        self.seed = seed
        self.executor = resolve_executor(executor)
        #: Round transport forwarded to every FederatedServer this
        #: simulation builds ("resident" or "payload", see the server).
        self.transport = transport
        #: Resilience knobs forwarded to the multi-client servers below
        #: (quorum / per-round deadline / bounded replays, see the server).
        self.min_clients = min_clients
        self.task_timeout = task_timeout
        self.task_retries = task_retries
        self.retry_backoff = retry_backoff

    def close(self) -> None:
        """Release the executor's worker pool (no-op for the serial one)."""
        self.executor.close()

    def __enter__(self) -> "FederatedNIDSSimulation":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _model_fn(self, n_features: int, n_classes: int) -> DetectorFactory:
        return DetectorFactory(
            n_features=n_features,
            n_classes=n_classes,
            hidden_dims=tuple(self.hidden_dims),
            seed=self.seed,
        )

    def _make_clients(
        self,
        partitions,
        featurizer: TabularFeaturizer,
        model_fn,
        proximal_mu: float = 0.0,
    ) -> list[FederatedClient]:
        clients = []
        for i, part in enumerate(partitions):
            X, y = featurizer.transform(part)
            clients.append(
                FederatedClient(
                    client_id=f"device-{i}",
                    features=X,
                    labels=y,
                    model_fn=model_fn,
                    learning_rate=self.learning_rate,
                    batch_size=self.batch_size,
                    local_epochs=self.local_epochs,
                    proximal_mu=proximal_mu,
                    seed=self.seed + i,
                )
            )
        return clients

    # ------------------------------------------------------------------ #
    def run(self) -> FederatedNIDSResult:
        """Run the full comparison and return the result summary."""
        rng = np.random.default_rng(self.seed)
        train, test = train_test_split(
            self.bundle.table,
            test_fraction=self.test_fraction,
            rng=rng,
            stratify_column=self.bundle.label_column,
        )
        partitions = label_skew_partition(
            train,
            label_column=self.bundle.label_column,
            num_clients=self.num_clients,
            rng=rng,
            skew=self.skew,
        )

        # The featurizer only needs the schema's category lists plus scaling
        # statistics; fitting it on the training split is the usual
        # "public calibration data" simplification and leaks nothing but
        # per-column means and standard deviations.
        featurizer = TabularFeaturizer(self.bundle.label_column).fit(train)
        X_test, y_test = featurizer.transform(test)
        X_train, y_train = featurizer.transform(train)
        model_fn = self._model_fn(X_train.shape[1], featurizer.n_classes)

        # Local-only baseline: every client trains alone from scratch.  The
        # solo runs are independent, so they fan out over the executor as
        # whole-training work units (one task = all rounds of one client);
        # clients ride as resident refs and the (identical) evaluation
        # matrices are installed once for all tasks.
        clients = self._make_clients(partitions, featurizer, model_fn)
        eval_ref = self.executor.install((X_test, y_test))
        client_refs = [self.executor.install(client) for client in clients]
        solo_tasks = [
            _SoloTask(
                client=client_ref,
                model_fn=model_fn,
                num_rounds=self.num_rounds,
                seed=self.seed,
                eval_set=eval_ref,
            )
            for client_ref in client_refs
        ]
        per_client_local: dict[str, float] = {}
        local_f1: list[float] = []
        try:
            # The solo baseline degrades like a round: a client whose whole
            # solo training fails (after retries) is simply left out of the
            # local-only mean, subject to the same quorum.
            survivors, _ = map_with_quorum(
                self.executor,
                _run_solo_task,
                solo_tasks,
                [client.client_id for client in clients],
                min_survivors=self.min_clients,
                timeout=self.task_timeout,
                retries=self.task_retries,
                backoff=self.retry_backoff,
                unit="client",
            )
            for _, (client_id, accuracy, f1) in survivors:
                per_client_local[client_id] = accuracy
                local_f1.append(f1)
        finally:
            for client_ref in client_refs:
                self.executor.evict(client_ref)
            self.executor.evict(eval_ref)
        local_only = float(np.mean(list(per_client_local.values())))

        # Federated training (FedAvg); client rounds share the executor.
        clients = self._make_clients(partitions, featurizer, model_fn)
        server = FederatedServer(
            model_fn,
            clients,
            client_fraction=self.client_fraction,
            seed=self.seed,
            executor=self.executor,
            transport=self.transport,
            min_clients=self.min_clients,
            task_timeout=self.task_timeout,
            task_retries=self.task_retries,
            retry_backoff=self.retry_backoff,
        )
        try:
            history = server.run(self.num_rounds, eval_features=X_test, eval_labels=y_test)
            federated_predictions = server.predict(X_test)
        finally:
            server.release_transport()

        # Federated training with DP (optional).
        federated_dp = None
        federated_dp_f1 = None
        epsilon = None
        if self.dp_config is not None:
            dp_clients = self._make_clients(partitions, featurizer, model_fn)
            dp_server = FederatedServer(
                model_fn,
                dp_clients,
                client_fraction=self.client_fraction,
                dp_config=self.dp_config,
                seed=self.seed,
                executor=self.executor,
                transport=self.transport,
                min_clients=self.min_clients,
                task_timeout=self.task_timeout,
                task_retries=self.task_retries,
                retry_backoff=self.retry_backoff,
            )
            try:
                dp_server.run(self.num_rounds)
                dp_predictions = dp_server.predict(X_test)
            finally:
                dp_server.release_transport()
            federated_dp = accuracy_score(y_test, dp_predictions)
            federated_dp_f1 = f1_score(y_test, dp_predictions)
            epsilon = dp_server.epsilon()

        # Centralised upper bound: one model trained on the pooled raw data.
        central_client = FederatedClient(
            client_id="central",
            features=X_train,
            labels=y_train,
            model_fn=model_fn,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            local_epochs=self.local_epochs,
            seed=self.seed,
        )
        central_server = FederatedServer(model_fn, [central_client], seed=self.seed)
        central_server.run(self.num_rounds)
        central_predictions = central_server.predict(X_test)

        return FederatedNIDSResult(
            local_only=local_only,
            federated=accuracy_score(y_test, federated_predictions),
            centralised=accuracy_score(y_test, central_predictions),
            local_only_f1=float(np.mean(local_f1)),
            federated_f1=f1_score(y_test, federated_predictions),
            centralised_f1=f1_score(y_test, central_predictions),
            federated_dp=federated_dp,
            federated_dp_f1=federated_dp_f1,
            epsilon=epsilon,
            per_client_local=per_client_local,
            round_accuracies=history.accuracies(),
        )
