"""End-to-end federated NIDS simulation.

Complements :class:`repro.distributed.simulation.DistributedNIDSSimulation`
(which shares synthetic *rows*) with the weight-sharing alternative the paper
lists as future work: the devices jointly train a single neural detector by
federated averaging, never exchanging traffic at all.  The simulation reports
four strategies on the same real test split:

* ``local_only`` -- mean accuracy of per-device detectors,
* ``federated`` -- FedAvg-trained global detector,
* ``federated_dp`` -- the same with client-level DP-FedAvg (optional),
* ``centralised`` -- the pool-all-raw-data upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import DatasetBundle
from repro.federated.client import FederatedClient
from repro.federated.dp import DPFedAvgConfig
from repro.federated.partition import label_skew_partition
from repro.federated.server import FederatedServer
from repro.neural.layers import Dense, ReLU
from repro.neural.network import Sequential
from repro.nids.features import TabularFeaturizer
from repro.nids.metrics import accuracy_score, f1_score
from repro.tabular.split import train_test_split

__all__ = ["FederatedNIDSResult", "FederatedNIDSSimulation"]


@dataclass
class FederatedNIDSResult:
    """Accuracy / macro-F1 of each strategy plus the DP budget if applicable."""

    local_only: float
    federated: float
    centralised: float
    local_only_f1: float
    federated_f1: float
    centralised_f1: float
    federated_dp: float | None = None
    federated_dp_f1: float | None = None
    epsilon: float | None = None
    per_client_local: dict[str, float] = field(default_factory=dict)
    round_accuracies: list[float] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [
            f"local-only={self.local_only:.3f}",
            f"federated={self.federated:.3f}",
            f"centralised={self.centralised:.3f}",
        ]
        if self.federated_dp is not None:
            parts.append(f"federated-DP={self.federated_dp:.3f} (eps={self.epsilon:.2f})")
        return "accuracy: " + "  ".join(parts)


class FederatedNIDSSimulation:
    """Compares local-only, federated and centralised detector training."""

    def __init__(
        self,
        bundle: DatasetBundle,
        num_clients: int = 4,
        skew: float = 0.6,
        hidden_dims: tuple[int, ...] = (64, 32),
        num_rounds: int = 15,
        local_epochs: int = 2,
        learning_rate: float = 0.1,
        batch_size: int = 64,
        client_fraction: float = 1.0,
        dp_config: DPFedAvgConfig | None = None,
        test_fraction: float = 0.25,
        seed: int = 0,
    ) -> None:
        if num_rounds <= 0 or local_epochs <= 0:
            raise ValueError("num_rounds and local_epochs must be positive")
        self.bundle = bundle
        self.num_clients = num_clients
        self.skew = skew
        self.hidden_dims = hidden_dims
        self.num_rounds = num_rounds
        self.local_epochs = local_epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.client_fraction = client_fraction
        self.dp_config = dp_config
        self.test_fraction = test_fraction
        self.seed = seed

    # ------------------------------------------------------------------ #
    def _model_fn(self, n_features: int, n_classes: int):
        hidden_dims = self.hidden_dims
        seed = self.seed

        def factory() -> Sequential:
            rng = np.random.default_rng(seed)
            layers = []
            width = n_features
            for hidden in hidden_dims:
                layers.append(Dense(width, hidden, rng=rng, init="he"))
                layers.append(ReLU())
                width = hidden
            layers.append(Dense(width, n_classes, rng=rng, init="glorot"))
            return Sequential(layers)

        return factory

    def _make_clients(
        self,
        partitions,
        featurizer: TabularFeaturizer,
        model_fn,
        proximal_mu: float = 0.0,
    ) -> list[FederatedClient]:
        clients = []
        for i, part in enumerate(partitions):
            X, y = featurizer.transform(part)
            clients.append(
                FederatedClient(
                    client_id=f"device-{i}",
                    features=X,
                    labels=y,
                    model_fn=model_fn,
                    learning_rate=self.learning_rate,
                    batch_size=self.batch_size,
                    local_epochs=self.local_epochs,
                    proximal_mu=proximal_mu,
                    seed=self.seed + i,
                )
            )
        return clients

    # ------------------------------------------------------------------ #
    def run(self) -> FederatedNIDSResult:
        """Run the full comparison and return the result summary."""
        rng = np.random.default_rng(self.seed)
        train, test = train_test_split(
            self.bundle.table,
            test_fraction=self.test_fraction,
            rng=rng,
            stratify_column=self.bundle.label_column,
        )
        partitions = label_skew_partition(
            train,
            label_column=self.bundle.label_column,
            num_clients=self.num_clients,
            rng=rng,
            skew=self.skew,
        )

        # The featurizer only needs the schema's category lists plus scaling
        # statistics; fitting it on the training split is the usual
        # "public calibration data" simplification and leaks nothing but
        # per-column means and standard deviations.
        featurizer = TabularFeaturizer(self.bundle.label_column).fit(train)
        X_test, y_test = featurizer.transform(test)
        X_train, y_train = featurizer.transform(train)
        model_fn = self._model_fn(X_train.shape[1], featurizer.n_classes)

        # Local-only baseline: every client trains alone from scratch.
        clients = self._make_clients(partitions, featurizer, model_fn)
        per_client_local: dict[str, float] = {}
        local_f1: list[float] = []
        for client in clients:
            solo_server = FederatedServer(model_fn, [client], seed=self.seed)
            solo_server.run(self.num_rounds)
            predictions = solo_server.predict(X_test)
            per_client_local[client.client_id] = accuracy_score(y_test, predictions)
            local_f1.append(f1_score(y_test, predictions))
        local_only = float(np.mean(list(per_client_local.values())))

        # Federated training (FedAvg).
        clients = self._make_clients(partitions, featurizer, model_fn)
        server = FederatedServer(
            model_fn,
            clients,
            client_fraction=self.client_fraction,
            seed=self.seed,
        )
        history = server.run(self.num_rounds, eval_features=X_test, eval_labels=y_test)
        federated_predictions = server.predict(X_test)

        # Federated training with DP (optional).
        federated_dp = None
        federated_dp_f1 = None
        epsilon = None
        if self.dp_config is not None:
            dp_clients = self._make_clients(partitions, featurizer, model_fn)
            dp_server = FederatedServer(
                model_fn,
                dp_clients,
                client_fraction=self.client_fraction,
                dp_config=self.dp_config,
                seed=self.seed,
            )
            dp_server.run(self.num_rounds)
            dp_predictions = dp_server.predict(X_test)
            federated_dp = accuracy_score(y_test, dp_predictions)
            federated_dp_f1 = f1_score(y_test, dp_predictions)
            epsilon = dp_server.epsilon()

        # Centralised upper bound: one model trained on the pooled raw data.
        central_client = FederatedClient(
            client_id="central",
            features=X_train,
            labels=y_train,
            model_fn=model_fn,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            local_epochs=self.local_epochs,
            seed=self.seed,
        )
        central_server = FederatedServer(model_fn, [central_client], seed=self.seed)
        central_server.run(self.num_rounds)
        central_predictions = central_server.predict(X_test)

        return FederatedNIDSResult(
            local_only=local_only,
            federated=accuracy_score(y_test, federated_predictions),
            centralised=accuracy_score(y_test, central_predictions),
            local_only_f1=float(np.mean(local_f1)),
            federated_f1=f1_score(y_test, federated_predictions),
            centralised_f1=f1_score(y_test, central_predictions),
            federated_dp=federated_dp,
            federated_dp_f1=federated_dp_f1,
            epsilon=epsilon,
            per_client_local=per_client_local,
            round_accuracies=history.accuracies(),
        )
