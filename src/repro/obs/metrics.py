"""Process-local metrics registry with a Prometheus-text exporter.

The registry is deliberately tiny and dependency-free: three instrument
kinds (counter, gauge, fixed-bucket histogram), label support, a single
lock per child for thread safety, and two export formats -- the
Prometheus text exposition served by ``GET /metrics`` and a plain JSON
snapshot for programmatic scraping (``repro metrics --json``).

Instruments are created lazily and cached per ``(name, labels)`` pair,
so call sites simply do::

    default_registry().counter("repro_tasks_dispatched_total",
                               help="...", labels={"executor": "thread"}).inc()

Nothing here ever touches an RNG stream; recording a metric is a dict
lookup plus a locked float update, cheap enough to leave permanently on.
"""

from __future__ import annotations

import json
import math
import re
import threading
from bisect import bisect_left
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_registry",
    "set_default_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds), tuned for request / task latencies.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelValues = tuple[tuple[str, str], ...]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_suffix(labels: LabelValues, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in pairs)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing value; ``inc`` by a non-negative amount."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; inc() amount must be >= 0")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value that can move in either direction."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative bucket counts, sum, and count."""

    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending with ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out: list[tuple[float, int]] = []
        for bound, count in zip(self.bounds, counts):
            total += count
            out.append((bound, total))
        out.append((math.inf, total + counts[-1]))
        return out


class _Family:
    def __init__(self, name: str, kind: str, help_text: str, buckets: tuple[float, ...] | None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: dict[LabelValues, Counter | Gauge | Histogram] = {}


class MetricsRegistry:
    """Thread-safe home for every metric family in the process.

    One registry normally exists per process (:func:`default_registry`);
    tests construct their own for isolation.  A family is identified by
    its metric name; children within a family are identified by their
    sorted label pairs.  Re-requesting an existing family with a
    conflicting kind raises, mirroring Prometheus client behaviour.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _labels_key(self, labels: Mapping[str, str] | None) -> LabelValues:
        if not labels:
            return ()
        pairs = []
        for key in sorted(labels):
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name: {key!r}")
            pairs.append((key, str(labels[key])))
        return tuple(pairs)

    def _child(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Mapping[str, str] | None,
        buckets: tuple[float, ...] | None = None,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        key = self._labels_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, not {kind}"
                )
            child = family.children.get(key)
            if child is None:
                if kind == "counter":
                    child = Counter()
                elif kind == "gauge":
                    child = Gauge()
                else:
                    child = Histogram(family.buckets or DEFAULT_BUCKETS)
                family.children[key] = child
            return child

    def counter(
        self, name: str, *, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        return self._child(name, "counter", help, labels)

    def gauge(self, name: str, *, help: str = "", labels: Mapping[str, str] | None = None) -> Gauge:
        return self._child(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        *,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._child(name, "histogram", help, labels, tuple(float(b) for b in buckets))

    def value(self, name: str, labels: Mapping[str, str] | None = None) -> float | None:
        """Current value of a counter/gauge child, or ``None`` if absent."""
        key = self._labels_key(labels)
        with self._lock:
            family = self._families.get(name)
            child = family.children.get(key) if family else None
        if child is None or isinstance(child, Histogram):
            return None
        return child.value

    def prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format (v0.0.4)."""
        with self._lock:
            families = [
                (family, sorted(family.children.items()))
                for _, family in sorted(self._families.items())
            ]
        lines: list[str] = []
        for family, children in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in children:
                if isinstance(child, Histogram):
                    for bound, cumulative in child.cumulative():
                        suffix = _label_suffix(labels, (("le", _format_value(bound)),))
                        lines.append(f"{family.name}_bucket{suffix} {cumulative}")
                    base = _label_suffix(labels)
                    lines.append(f"{family.name}_sum{base} {_format_value(child.sum)}")
                    lines.append(f"{family.name}_count{base} {child.count}")
                else:
                    suffix = _label_suffix(labels)
                    lines.append(f"{family.name}{suffix} {_format_value(child.value)}")
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict:
        """JSON-serialisable dump: family -> kind/help/samples."""
        with self._lock:
            families = [
                (family, sorted(family.children.items()))
                for _, family in sorted(self._families.items())
            ]
        out: dict[str, dict] = {}
        for family, children in families:
            samples = []
            for labels, child in children:
                entry: dict = {"labels": dict(labels)}
                if isinstance(child, Histogram):
                    entry["count"] = child.count
                    entry["sum"] = child.sum
                    entry["buckets"] = [
                        {"le": "+Inf" if math.isinf(b) else b, "count": c}
                        for b, c in child.cumulative()
                    ]
                else:
                    entry["value"] = child.value
                samples.append(entry)
            out[family.name] = {"kind": family.kind, "help": family.help, "samples": samples}
        return out

    def snapshot_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every built-in instrument records into."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
