"""Span-based tracing with JSONL sinks and cross-executor propagation.

Tracing is **off** by default and the disabled path costs one branch:
``span(...)`` checks a module-level tracer slot and hands back a shared
no-op context manager when nothing is configured.  When enabled (via
:func:`configure_tracing` or the :func:`tracing` context manager) each
closed span is written as one JSON object through a pluggable sink --
:class:`MemorySink` for tests, :class:`JsonlSink` for files.  The clock
and the id generator are injectable so tests see deterministic output.

Propagation works by envelope, not by ambient magic: the executor layer
calls :func:`propagation_context` before dispatch, ships the resulting
:class:`TraceContext` (trace id, parent span id, and -- for process
pools -- the JSONL sink path) alongside the task payload, and the worker
re-enters it with :func:`activate`.  Worker-side spans then parent to
the coordinator's span even across a pickle boundary, because both sides
append to the same JSONL file.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

__all__ = [
    "JsonlSink",
    "MemorySink",
    "TraceContext",
    "Tracer",
    "activate",
    "configure_tracing",
    "current_span_id",
    "current_trace_id",
    "disable_tracing",
    "propagation_context",
    "span",
    "tracing",
    "tracing_enabled",
]


class MemorySink:
    """Collects span events in a list; for tests and short-lived runs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: list[dict] = []

    def write(self, event: dict) -> None:
        with self._lock:
            self.events.append(event)


class JsonlSink:
    """Appends one JSON object per span to a file.

    Each write is a single ``O_APPEND`` write of one line, so multiple
    processes (a coordinator and its pool workers) can share the file
    without interleaving partial records.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def write(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse every span event in a JSONL trace file."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _default_ids() -> str:
    return uuid.uuid4().hex[:16]


class Tracer:
    """Writes closed spans to a sink using an injectable clock and ids."""

    def __init__(
        self,
        sink: MemorySink | JsonlSink,
        *,
        clock: Callable[[], float] = time.monotonic,
        ids: Callable[[], str] = _default_ids,
    ) -> None:
        self.sink = sink
        self.clock = clock
        self.ids = ids

    @property
    def sink_path(self) -> str | None:
        path = getattr(self.sink, "path", None)
        return str(path) if path is not None else None


# Current span as (trace_id, span_id); context-local so thread workers and
# nested spans each see their own parent chain.
_CURRENT: contextvars.ContextVar[tuple[str, str] | None] = contextvars.ContextVar(
    "repro_obs_span", default=None
)

# The one branch the disabled fast path pays: ``_TRACER is None``.
_TRACER: Tracer | None = None
_STATE_LOCK = threading.Lock()


class _NoopSpan:
    """Shared, reusable stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attr(self, key: str, value) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _Span:
    __slots__ = ("tracer", "name", "attrs", "trace_id", "span_id", "parent_id", "_start", "_token")

    def __init__(self, tracer: Tracer, name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        parent = _CURRENT.get()
        if parent is None:
            self.trace_id = tracer.ids()
            self.parent_id = None
        else:
            self.trace_id, self.parent_id = parent
        self.span_id = tracer.ids()
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        self._start = tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self.tracer.clock()
        _CURRENT.reset(self._token)
        event = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self._start,
            "end": end,
            "duration": end - self._start,
            "pid": os.getpid(),
        }
        if self.attrs:
            event["attrs"] = self.attrs
        if exc_type is not None:
            event["status"] = "error"
            event["error"] = f"{exc_type.__name__}: {exc}"
        else:
            event["status"] = "ok"
        self.tracer.sink.write(event)
        return False

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value


def span(name: str, **attrs):
    """A context manager recording one span, or a shared no-op when off."""
    tracer = _TRACER
    if tracer is None:
        return _NOOP_SPAN
    return _Span(tracer, name, attrs)


def configure_tracing(
    sink: MemorySink | JsonlSink | str | Path,
    *,
    clock: Callable[[], float] = time.monotonic,
    ids: Callable[[], str] = _default_ids,
) -> Tracer:
    """Enable tracing process-wide; a str/Path sink means a JSONL file."""
    global _TRACER
    if isinstance(sink, (str, Path)):
        sink = JsonlSink(sink)
    tracer = Tracer(sink, clock=clock, ids=ids)
    with _STATE_LOCK:
        _TRACER = tracer
    return tracer


def disable_tracing() -> None:
    global _TRACER
    with _STATE_LOCK:
        _TRACER = None


def tracing_enabled() -> bool:
    return _TRACER is not None


class tracing:
    """``with tracing(sink):`` -- enable for a block, then restore."""

    def __init__(self, sink, **kwargs) -> None:
        self._sink = sink
        self._kwargs = kwargs

    def __enter__(self) -> Tracer:
        self._previous = _TRACER
        return configure_tracing(self._sink, **self._kwargs)

    def __exit__(self, *exc_info) -> bool:
        global _TRACER
        with _STATE_LOCK:
            _TRACER = self._previous
        return False


def current_trace_id() -> str | None:
    current = _CURRENT.get()
    return current[0] if current else None


def current_span_id() -> str | None:
    current = _CURRENT.get()
    return current[1] if current else None


@dataclass(frozen=True)
class TraceContext:
    """Picklable trace coordinates shipped alongside task payloads.

    ``sink_path`` is set when the coordinator writes to a JSONL file, so
    a process-pool worker (where tracing is otherwise disabled) can open
    the same file and contribute its spans to the same trace.
    """

    trace_id: str
    span_id: str
    sink_path: str | None = None


def propagation_context() -> TraceContext | None:
    """The context tasks should carry, or ``None`` when there is nothing
    to propagate (tracing disabled, or no span currently open)."""
    tracer = _TRACER
    if tracer is None:
        return None
    current = _CURRENT.get()
    if current is None:
        return None
    return TraceContext(current[0], current[1], tracer.sink_path)


class activate:
    """``with activate(ctx):`` -- adopt a propagated context on the worker.

    In-process (serial executor, thread pool) the tracer already exists
    and only the ambient parent needs setting.  In a process-pool worker
    tracing is disabled, so when the context names a JSONL sink a
    temporary tracer writing to that file is installed for the block.
    """

    def __init__(self, context: TraceContext) -> None:
        self._context = context
        self._installed = None

    def __enter__(self) -> None:
        global _TRACER
        context = self._context
        if _TRACER is None and context.sink_path is not None:
            with _STATE_LOCK:
                if _TRACER is None:
                    self._installed = Tracer(JsonlSink(context.sink_path))
                    _TRACER = self._installed
        self._token = _CURRENT.set((context.trace_id, context.span_id))

    def __exit__(self, *exc_info) -> bool:
        global _TRACER
        _CURRENT.reset(self._token)
        if self._installed is not None:
            with _STATE_LOCK:
                if _TRACER is self._installed:
                    _TRACER = None
            self._installed = None
        return False
