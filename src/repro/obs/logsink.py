"""Line-oriented log sink used by the engine's :class:`PeriodicLogger`.

The default sink writes to ``sys.stdout`` exactly the way ``print``
does -- the line followed by a single newline, looked up at emit time so
``contextlib.redirect_stdout`` and pytest's capture keep working.  Tests
or embedders can swap in :class:`CaptureSink` (or anything with an
``emit(line)`` method) via :func:`set_log_sink` to route training logs
somewhere other than the console without touching the callbacks.
"""

from __future__ import annotations

import sys
import threading
from typing import IO

__all__ = ["CaptureSink", "StreamSink", "get_log_sink", "log_line", "set_log_sink"]


class StreamSink:
    """Writes each line + newline to a stream (``sys.stdout`` when None)."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream

    def emit(self, line: str) -> None:
        stream = self.stream if self.stream is not None else sys.stdout
        stream.write(line + "\n")


class CaptureSink:
    """Collects emitted lines in a list; for tests."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.lines: list[str] = []

    def emit(self, line: str) -> None:
        with self._lock:
            self.lines.append(line)


_sink = StreamSink()
_sink_lock = threading.Lock()


def get_log_sink():
    return _sink


def set_log_sink(sink) -> object:
    """Replace the process-wide log sink; returns the previous one."""
    global _sink
    with _sink_lock:
        previous = _sink
        _sink = sink
    return previous


def log_line(line: str) -> None:
    """Emit one line through the active sink."""
    _sink.emit(str(line))
