"""Unified observability plane: metrics, traces, and the log sink.

``repro.obs`` is dependency-free (standard library only) and safe to
import from every layer.  It provides:

* :class:`MetricsRegistry` -- thread-safe counters / gauges / fixed-
  bucket histograms with a Prometheus text exporter and a JSON snapshot;
  :func:`default_registry` is the process-wide instance the engine,
  runtime, and serving layers record into, and the one ``GET /metrics``
  exports.
* :func:`span` -- span-based tracing with a one-branch no-op fast path
  when disabled, pluggable sinks (:class:`MemorySink`,
  :class:`JsonlSink`), an injectable clock, and
  :class:`TraceContext` / :func:`propagation_context` / :func:`activate`
  for carrying a trace across executor (even process) boundaries.
* :func:`log_line` -- the line sink behind
  :class:`~repro.engine.callbacks.PeriodicLogger`.

Nothing in this package ever consumes a random number: enabling any of
it leaves every seeded parity suite bit-identical (see
``docs/observability.md``).
"""

from repro.obs.logsink import CaptureSink, StreamSink, get_log_sink, log_line, set_log_sink
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    TraceContext,
    Tracer,
    activate,
    configure_tracing,
    current_span_id,
    current_trace_id,
    disable_tracing,
    propagation_context,
    read_jsonl,
    span,
    tracing,
    tracing_enabled,
)

__all__ = [
    "CaptureSink",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "StreamSink",
    "TraceContext",
    "Tracer",
    "activate",
    "configure_tracing",
    "current_span_id",
    "current_trace_id",
    "default_registry",
    "disable_tracing",
    "get_log_sink",
    "log_line",
    "propagation_context",
    "read_jsonl",
    "set_default_registry",
    "set_log_sink",
    "span",
    "tracing",
    "tracing_enabled",
]
