"""Shared harness for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  The expensive
part -- fitting KiNETGAN and the five baselines on each dataset -- is done
once per session in :mod:`benchmarks.conftest` and shared across benches.

Scale knobs (environment variables, so CI can dial them up or down):

* ``REPRO_BENCH_ROWS``   -- rows per dataset (default 1500)
* ``REPRO_BENCH_EPOCHS`` -- GAN training epochs (default 20; KiNETGAN gets
  1.5x this so the knowledge discriminator converges)
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.baselines import CTGAN, OCTGAN, PATEGAN, TVAE, IndependentSampler, TableGAN
from repro.core import KiNETGAN, KiNETGANConfig
from repro.datasets.base import DatasetBundle
from repro.tabular.split import train_test_split
from repro.tabular.table import Table

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "1500"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "20"))

#: Order in which models are reported (matches Table I of the paper, plus the
#: independent-marginal sanity floor).
MODEL_ORDER = ["CTGAN", "OCTGAN", "PATEGAN", "TABLEGAN", "TVAE", "KiNETGAN", "INDEPENDENT"]


def bench_config(seed: int = 0, epochs: int | None = None) -> KiNETGANConfig:
    """The GAN configuration used by every benchmark model."""
    return KiNETGANConfig(
        embedding_dim=32,
        generator_dims=(64, 64),
        discriminator_dims=(64, 64),
        epochs=epochs if epochs is not None else BENCH_EPOCHS,
        batch_size=128,
        lambda_knowledge=2.0,
        knowledge_negatives_per_batch=32,
        seed=seed,
    )


def fit_model_suite(bundle: DatasetBundle, train: Table, seed: int = 0) -> dict[str, object]:
    """Fit KiNETGAN plus every baseline on ``train`` and return them by name."""
    config = bench_config(seed)
    kinetgan = KiNETGAN(bench_config(seed, epochs=int(BENCH_EPOCHS * 1.5)))
    kinetgan.fit(train, catalog=bundle.catalog, condition_columns=bundle.condition_columns)

    models: dict[str, object] = {"KiNETGAN": kinetgan}
    models["CTGAN"] = CTGAN(config).fit(train, condition_columns=bundle.condition_columns)
    models["OCTGAN"] = OCTGAN(config).fit(train, condition_columns=bundle.condition_columns)
    models["TVAE"] = TVAE(config).fit(train)
    models["TABLEGAN"] = TableGAN(config, label_column=bundle.label_column).fit(train)
    models["PATEGAN"] = PATEGAN(config, num_teachers=3).fit(train)
    models["INDEPENDENT"] = IndependentSampler(seed=seed).fit(train)
    return models


def sample_all(models: dict[str, object], n: int, seed: int = 1) -> dict[str, Table]:
    """Draw ``n`` synthetic rows from every fitted model."""
    synthetic: dict[str, Table] = {}
    for name, model in models.items():
        synthetic[name] = model.sample(n, rng=np.random.default_rng(seed))
    return synthetic


def split_bundle(bundle: DatasetBundle, seed: int = 0) -> tuple[Table, Table]:
    """Stratified train/test split used by every experiment."""
    return train_test_split(
        bundle.table,
        test_fraction=0.25,
        rng=np.random.default_rng(seed),
        stratify_column=bundle.label_column,
    )


def write_table(name: str, header: list[str], rows: list[list], caption: str) -> str:
    """Format a result table, print it, and persist it under results/."""
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(header))
    ]
    lines = [caption, ""]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text + "\n")
    return text
