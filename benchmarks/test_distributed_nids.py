"""Experiment A3 -- the distributed NIDS scenario that motivates the paper.

Device nodes with non-IID local traffic cannot share raw data; each trains a
local KiNETGAN and shares synthetic traffic with a coordinator.  The bench
compares detection quality (accuracy and macro-F1) of

* local-only detectors (no sharing),
* the coordinator's detector trained on pooled synthetic shares,
* the centralised upper bound trained on pooled raw data.
"""

from __future__ import annotations

import pytest

from repro.distributed import DistributedNIDSSimulation

from _harness import BENCH_EPOCHS, bench_config, write_table


@pytest.mark.benchmark(group="distributed")
def test_distributed_nids_scenario(benchmark, lab_bundle):
    def run():
        simulation = DistributedNIDSSimulation(
            lab_bundle,
            num_nodes=3,
            non_iid_skew=0.7,
            classifier="decision_tree",
            config=bench_config(seed=5, epochs=BENCH_EPOCHS),
            seed=5,
        )
        return simulation.run(share_size=500)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    write_table(
        "distributed_nids",
        ["strategy", "accuracy", "macro-F1"],
        [
            ["local only (no sharing)", f"{result.local_only:.3f}", f"{result.local_only_f1:.3f}"],
            ["synthetic sharing (KiNETGAN)", f"{result.synthetic_sharing:.3f}",
             f"{result.synthetic_sharing_f1:.3f}"],
            ["centralised raw data", f"{result.centralised_real:.3f}",
             f"{result.centralised_real_f1:.3f}"],
        ],
        "Distributed NIDS: value of sharing knowledge-infused synthetic traffic",
    )

    # Synthetic sharing must not exceed the centralised upper bound by more
    # than noise, and must recover a usable detector.  (How much of the
    # non-IID macro-F1 gap it closes depends on how long each node can train
    # its local generator, so that is reported in the table rather than
    # asserted.)
    assert result.synthetic_sharing <= result.centralised_real + 0.05
    assert result.synthetic_sharing > 0.5
