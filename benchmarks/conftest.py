"""Session-scoped fixtures shared by all benchmarks.

Fitting the seven synthesizers on each dataset dominates the cost of the
benchmark suite, so it happens exactly once per dataset here; individual
benchmarks only compute and print their table / figure.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.datasets import load_lab_iot, load_unsw_nb15

sys.path.insert(0, str(Path(__file__).parent))

from _harness import BENCH_ROWS, fit_model_suite, sample_all, split_bundle  # noqa: E402


def pytest_collection_modifyitems(config, items):
    """Mark every benchmark ``slow`` + ``bench`` so ``pytest -m "not slow"``
    runs only the fast unit/integration tier and ``pytest -m bench`` selects
    the perf suite."""
    root = str(Path(__file__).parent)
    for item in items:
        if str(item.fspath).startswith(root):
            item.add_marker(pytest.mark.slow)
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def lab_bundle():
    return load_lab_iot(n_records=BENCH_ROWS, seed=7)


@pytest.fixture(scope="session")
def unsw_bundle():
    return load_unsw_nb15(n_records=BENCH_ROWS, seed=11)


@pytest.fixture(scope="session")
def lab_experiment(lab_bundle):
    """(train, test, fitted models, synthetic tables) for the lab dataset."""
    train, test = split_bundle(lab_bundle, seed=0)
    models = fit_model_suite(lab_bundle, train, seed=0)
    synthetic = sample_all(models, n=train.n_rows, seed=1)
    return {"bundle": lab_bundle, "train": train, "test": test,
            "models": models, "synthetic": synthetic}


@pytest.fixture(scope="session")
def unsw_experiment(unsw_bundle):
    """(train, test, fitted models, synthetic tables) for UNSW-NB15."""
    train, test = split_bundle(unsw_bundle, seed=0)
    models = fit_model_suite(unsw_bundle, train, seed=0)
    synthetic = sample_all(models, n=train.n_rows, seed=1)
    return {"bundle": unsw_bundle, "train": train, "test": test,
            "models": models, "synthetic": synthetic}
