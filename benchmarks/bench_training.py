"""Training-loop benchmarks: epoch wall-clock, step allocations, codec copies.

Measures the flat-arena neural runtime against a *seed replica* -- the
pre-change training hot path, replayed bit-identically by monkey-patching
the handful of methods the arena work rewrote back to their original
forms (and disabling arena consolidation).  Both variants therefore run in
the same process on the same data, and because every rewrite preserved rng
streams and elementwise op order exactly, they produce bit-identical
models; only the time and allocation profiles differ.  Results land in
``BENCH_training.json`` at the repository root so future PRs have a
trajectory to compare against.

Metrics:

* ``kinetgan_epoch`` -- seconds per KiNETGAN training epoch (step-level:
  an epoch's worth of consecutive ``KiNETGANStep.step`` calls), current
  runtime vs the seed replica, interleaved min-of-reps.  The speedup is
  the gated number: epoch timing on a shared 1-core runner carries a few
  percent of process noise, which the smoke tolerance absorbs.
* ``step_latency`` -- the same measurement expressed as ms per training
  step at the benchmark batch size.
* ``step_allocations`` / ``step_allocations_large_batch`` -- steady-state
  tracemalloc peak of the *network-core* step the arena subsystem owns:
  ``Sequential.forward`` / ``backward``, the fused optimizer step and
  ``zero_grad`` on the discriminator network, at the training batch size
  and at batch 1024.  Every allocation inside that boundary is one the
  arena/workspace rewrite targeted, so the ratio is gated.  Two wider
  peaks are recorded for context but not gated on a ratio:
  ``neural_step_allocations`` (generator + discriminator + BCE + both
  optimizers -- its peak is set by the generated batch and its gradient,
  which must escape the step and so stay freshly allocated) and
  ``full_step_allocations`` (the complete ``KiNETGANStep``, which adds KG
  scoring and sampler work whose allocations are rng-stream-bound and
  identical on both sides).
* ``codec_roundtrip`` -- ``StateCodec.encode`` / ``decode_into`` on the
  fitted generator's arena-backed state: asserts the single-copy fast path
  engages (``flat_view`` detected) and compares per-op time against the
  per-key path on an equivalent non-contiguous state.

Run directly (``python -m benchmarks.bench_training``) or through
``python -m benchmarks.run --suite training``.
"""

from __future__ import annotations

import contextlib
import datetime
import json
import os
import platform
import time
import tracemalloc
from pathlib import Path

import numpy as np

import repro.core.kg_discriminator as _kg
import repro.core.trainer as _trainer
import repro.neural.layers as _layers
from repro.core import KiNETGAN, KiNETGANConfig
from repro.core.trainer import KiNETGANStep
from repro.datasets import load_lab_iot
from repro.engine import seeded_rng
from repro.federated.parameters import StateCodec
from repro.neural.arena import disable_consolidation

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_training.json"

BENCH_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "1500"))
BENCH_BATCH = 64
EPOCH_GROUPS = 6
EPOCH_REPS = 5
LARGE_BATCH = 1024


def bench_config(epochs: int = 1, seed: int = 0, dtype: str = "float64") -> KiNETGANConfig:
    """The configuration both variants train under.

    Batch 64 keeps the knowledge-discriminator share of the step close to
    what the paper's experiments run (the default 64 corruption negatives
    per batch), so the measurement exercises the whole hot path rather
    than just the dense kernels.
    """
    return KiNETGANConfig(
        embedding_dim=32,
        generator_dims=(64, 64),
        discriminator_dims=(64, 64),
        epochs=epochs,
        batch_size=BENCH_BATCH,
        lambda_knowledge=2.0,
        seed=seed,
        dtype=dtype,
    )


# --------------------------------------------------------------------------- #
# The seed replica: the pre-arena training hot path, bit-identical
# --------------------------------------------------------------------------- #
@contextlib.contextmanager
def seed_replica():
    """Replay the pre-change training hot path inside this process.

    Every patched method is the original (pre-arena) implementation; rng
    draws, elementwise op order and memory layouts match the rewritten
    forms exactly, so a fit under this context produces bit-identical
    parameters and history -- the replica differs only in temporaries,
    copies and per-key loops.  Arena consolidation is disabled for the
    duration so freshly built networks use per-tensor parameters and the
    unfused optimizer path, as before the change.
    """
    import repro.core.generator as _generator
    import repro.knowledge.reasoner as _reasoner
    import repro.knowledge.validator as _validator
    import repro.neural.losses as _losses
    from collections.abc import Mapping

    from repro.knowledge.reasoner import _numeric_column
    from repro.tabular.table import Table, factorize_values

    saved = {
        "dense_fwd": _layers.Dense.forward, "dense_bwd": _layers.Dense.backward,
        "relu_fwd": _layers.ReLU.forward, "relu_bwd": _layers.ReLU.backward,
        "lrelu_fwd": _layers.LeakyReLU.forward, "lrelu_bwd": _layers.LeakyReLU.backward,
        "bn_fwd": _layers.BatchNorm.forward, "bn_bwd": _layers.BatchNorm.backward,
        "drop_fwd": _layers.Dropout.forward, "drop_bwd": _layers.Dropout.backward,
        "targets": _trainer.KiNETGANTrainer._targets,
        "step_init": _trainer.KiNETGANStep.__init__,
        "gen_step": _trainer.KiNETGANTrainer._generator_step,
        "valid_set": _kg.KnowledgeGuidedDiscriminator.valid_set_loss_and_grad,
        "train_step": _kg.KnowledgeGuidedDiscriminator.train_step,
        "hard_scores_matrix": _kg.KnowledgeGuidedDiscriminator.hard_scores_matrix,
        "bce_fwd": _losses.BinaryCrossEntropy.forward,
        "bce_bwd": _losses.BinaryCrossEntropy.backward,
        "tab_fwd": _generator.TabularOutputActivation.forward,
        "tab_bwd": _generator.TabularOutputActivation.backward,
        "validity_mask": _reasoner.KGReasoner.validity_mask,
        "record_scores": _validator.BatchValidator.record_scores,
    }

    _EPS = _losses._EPS
    _stable_sigmoid = _losses._stable_sigmoid

    def dense_fwd(self, x, training=True):
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError("bad shape")
        self._cache_input = x
        out = x @ self.weight
        if self.use_bias:
            out += self.bias
        return out

    def dense_bwd(self, grad_output):
        x = self._cache_input
        self.grad_weight += x.T @ grad_output
        if self.use_bias:
            self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def relu_fwd(self, x, training=True):
        self._mask = x > 0.0
        return np.where(self._mask, x, 0.0)

    def relu_bwd(self, grad_output):
        return grad_output * self._mask

    def lrelu_fwd(self, x, training=True):
        self._mask = x > 0.0
        return np.where(self._mask, x, self.negative_slope * x)

    def lrelu_bwd(self, grad_output):
        return grad_output * np.where(self._mask, 1.0, self.negative_slope)

    def bn_fwd(self, x, training=True):
        if x.shape[1] != self.num_features:
            raise ValueError("bad shape")
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std, x - mean)
        return self.gamma * x_hat + self.beta

    def bn_bwd(self, grad_output):
        x_hat, inv_std, _centered = self._cache
        batch = grad_output.shape[0]
        self.grad_gamma += (grad_output * x_hat).sum(axis=0)
        self.grad_beta += grad_output.sum(axis=0)
        dx_hat = grad_output * self.gamma
        grad_input = (
            inv_std / batch
            * (batch * dx_hat - dx_hat.sum(axis=0) - x_hat * (dx_hat * x_hat).sum(axis=0))
        )
        return grad_input

    def drop_fwd(self, x, training=True):
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.uniform(size=x.shape) < keep) / keep
        return x * self._mask

    def drop_bwd(self, grad_output):
        if self._mask is None:
            return grad_output
        grad_input = grad_output * self._mask
        self._mask = None
        return grad_input

    def bce_fwd(self, prediction, target):
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError("shape mismatch")
        self._cache = (prediction, target)
        if self.from_logits:
            loss = np.maximum(prediction, 0) - prediction * target + np.log1p(
                np.exp(-np.abs(prediction))
            )
        else:
            p = np.clip(prediction, _EPS, 1.0 - _EPS)
            loss = -(target * np.log(p) + (1.0 - target) * np.log(1.0 - p))
        return float(loss.mean())

    def bce_bwd(self):
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        prediction, target = self._cache
        n = prediction.size
        if self.from_logits:
            grad = (_stable_sigmoid(prediction) - target) / n
        else:
            p = np.clip(prediction, _EPS, 1.0 - _EPS)
            grad = (p - target) / (p * (1.0 - p)) / n
        return grad

    def tab_fwd(self, x, training=True):
        out = np.empty_like(x)
        tanh_cols = self._tanh_columns
        out[:, tanh_cols] = np.tanh(x[:, tanh_cols])
        layout = self._layout
        if layout.n_blocks:
            gathered = layout.gather(x)
            if training:
                uniform = self.rng.uniform(1e-12, 1 - 1e-12, size=gathered.shape)
                gathered = gathered - np.log(-np.log(uniform)) * self.tau
            layout.scatter(out, layout.softmax(gathered, tau=self.tau))
        self._cache = out if training else None
        return out

    def tab_bwd(self, grad_output):
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        out = self._cache
        grad_input = np.empty_like(grad_output)
        tanh_cols = self._tanh_columns
        grad_input[:, tanh_cols] = grad_output[:, tanh_cols] * (1.0 - out[:, tanh_cols] ** 2)
        layout = self._layout
        if layout.n_blocks:
            grad_soft = layout.softmax_backward(
                layout.gather(out), layout.gather(grad_output), tau=self.tau
            )
            layout.scatter(grad_input, grad_soft)
        self._cache = None
        return grad_input

    def targets(self, shape):
        return (np.ones(shape), np.zeros(shape))

    def step_init(self, trainer, real_matrix, table=None):
        self.trainer = trainer
        self.real_matrix = real_matrix
        self._kg_valid = None
        self._kg_records = None

    def gen_step(self, config):
        from repro.core.losses import condition_penalty

        cond = self.sampler.sample(config.batch_size, self.rng)
        noise = self.rng.normal(size=(config.batch_size, config.embedding_dim))
        fake = self.generator.forward(noise, cond.vector, training=True)

        logits_fake = self.discriminator.forward(fake, cond.vector, training=True)
        adv_loss = self._bce.forward(logits_fake, np.ones_like(logits_fake))
        grad_fake = self.discriminator.backward(self._bce.backward())
        self.discriminator.zero_grad()

        cond_loss, grad_cond = condition_penalty(fake, cond.vector, self.sampler, self.transformer)

        kg_loss = 0.0
        grad_kg = 0.0
        if self.kg_discriminator is not None and config.lambda_knowledge > 0:
            kg_loss, grad_kg = self.kg_discriminator.generator_loss_and_grad(fake)
            if config.use_valid_set_loss:
                vs_loss, grad_vs = self.kg_discriminator.valid_set_loss_and_grad(fake, cond)
                kg_loss += vs_loss
                grad_kg = grad_kg + grad_vs

        total_grad = (
            grad_fake
            + config.lambda_condition * grad_cond
            + config.lambda_knowledge * grad_kg
        )
        self.generator.zero_grad()
        self.generator.backward(total_grad)
        self._opt_g.step()
        return adv_loss, cond_loss, kg_loss

    def valid_set(self, fake_matrix, condition_values):
        from repro.tabular.sampler import ConditionBatch

        grad = np.zeros_like(fake_matrix)
        if isinstance(condition_values, ConditionBatch):
            if len(condition_values) != fake_matrix.shape[0]:
                raise ValueError("condition_values length does not match the fake batch")
            try:
                events = condition_values.column_values(self._event_column)
            except KeyError:
                events = np.asarray(
                    [values.get(self._event_column) for values in condition_values.values],
                    dtype=object,
                )
        else:
            if len(condition_values) != fake_matrix.shape[0]:
                raise ValueError("condition_values length does not match the fake batch")
            events = np.asarray(
                [values.get(self._event_column) for values in condition_values],
                dtype=object,
            )

        schema = self.transformer.schema
        total_loss = 0.0
        total_terms = 0
        eps = 1e-6
        event_codes, event_names = factorize_values(events)
        event_rows = [
            np.nonzero(event_codes == event_id)[0] for event_id in range(len(event_names))
        ]
        for column in self.kg_columns:
            if column == self._event_column or not schema.column(column).is_categorical:
                continue
            info = self.transformer.column_info(column)
            block = np.clip(fake_matrix[:, info.start : info.end], eps, 1.0)
            columns_global = np.arange(info.start, info.end)
            for event_id, event_name in enumerate(event_names):
                if event_name is None:
                    continue
                mask = self._valid_mask(column, str(event_name))
                if mask is None:
                    continue
                rows = event_rows[event_id]
                mass = np.clip(block[rows][:, mask].sum(axis=1), eps, 1.0)
                total_loss += float(-np.log(mass).sum())
                grad[rows[:, None], columns_global[mask][None, :]] += -1.0 / mass[:, None]
                total_terms += len(rows)
        if total_terms == 0:
            return 0.0, grad
        grad /= total_terms
        return total_loss / total_terms, grad

    def kg_train_step(self, real_table, real_matrix, fake_matrix, negatives=64,
                      real_valid=None, real_records=None):
        if self.head is None or self._optimizer is None:
            return 0.0
        records = real_table.to_records()
        real_valid = self.validator.table_scores(real_table)
        pool = self._corrupt_records(records[: max(negatives, 1)])
        pool_scores = self.validator.record_scores(pool)
        invalid_records = [r for r, s in zip(pool, pool_scores) if s == 0.0]

        inputs = [real_matrix]
        targets_ = [real_valid[:, None]]
        if invalid_records:
            invalid_table = Table.from_records(self.transformer.schema, invalid_records)
            invalid_matrix = self.transformer.transform(invalid_table, rng=self.rng)
            inputs.append(invalid_matrix)
            targets_.append(np.zeros((len(invalid_records), 1)))
        if fake_matrix is not None and len(fake_matrix):
            fake_valid = self.hard_scores_matrix(fake_matrix)
            inputs.append(fake_matrix)
            targets_.append(fake_valid[:, None])

        batch = np.concatenate(inputs, axis=0)
        target = np.concatenate(targets_, axis=0)
        logits = self.head.forward(self._extract(batch), training=True)
        loss = self._loss.forward(logits, target)
        self.head.zero_grad()
        self.head.backward(self._loss.backward())
        self._optimizer.step()
        return loss

    def hard_scores_matrix(self, matrix, batch_size=0):
        if batch_size <= 0 or len(matrix) <= batch_size:
            return self.hard_scores(self.transformer.inverse_transform(matrix))
        chunks = [
            self.hard_scores(self.transformer.inverse_transform(matrix[start : start + batch_size]))
            for start in range(0, len(matrix), batch_size)
        ]
        return np.concatenate(chunks)

    def validity_mask(self, table_or_columns):
        if isinstance(table_or_columns, Mapping):
            names = list(table_or_columns.keys())
            get_column = table_or_columns.__getitem__
            n_rows = len(table_or_columns[names[0]]) if names else 0
        else:
            names = list(table_or_columns.schema.names)
            get_column = table_or_columns.column
            n_rows = table_or_columns.n_rows

        fm = self.field_map
        event_column = fm["event_type"]
        valid = np.ones(n_rows, dtype=bool)
        if event_column not in names or n_rows == 0:
            return valid

        event_codes, event_names = factorize_values(
            np.asarray(get_column(event_column), dtype=object)
        )

        membership_roles = ("protocol", "source_ip", "destination_ip")
        factorized = {}
        for role in membership_roles:
            column = fm.get(role)
            if column in names:
                factorized[role] = factorize_values(
                    np.asarray(get_column(column), dtype=object)
                )

        numeric = {}
        for role in ("destination_port", "source_port"):
            column = fm.get(role)
            if column in names:
                numeric[role] = _numeric_column(get_column(column))

        for event_id, event_name in enumerate(event_names):
            rows = np.nonzero(event_codes == event_id)[0]
            if event_name is None:
                continue
            constraints = self._constraints.get(event_name)
            if constraints is None:
                valid[rows] = False
                continue
            for role in membership_roles:
                allowed = getattr(
                    constraints,
                    {"protocol": "protocols", "source_ip": "source_ips",
                     "destination_ip": "destination_ips"}[role],
                )
                if not allowed or role not in factorized:
                    continue
                codes, uniques = factorized[role]
                lookup = np.fromiter((u in allowed for u in uniques), dtype=bool,
                                     count=len(uniques))
                valid[rows] &= lookup[codes[rows]]
            if "destination_port" in numeric:
                ports, parseable = numeric["destination_port"]
                ok = parseable[rows].copy()
                here = np.trunc(ports[rows][ok]).astype(np.int64)
                if constraints.destination_ports or constraints.destination_port_range is not None:
                    port_ok = np.isin(here, list(constraints.destination_ports))
                    if constraints.destination_port_range is not None:
                        low, high = constraints.destination_port_range
                        port_ok |= (here >= low) & (here <= high)
                    ok[np.nonzero(ok)[0][~port_ok]] = False
                valid[rows] &= ok
            if "source_port" in numeric and constraints.source_port_range is not None:
                ports, parseable = numeric["source_port"]
                ok = parseable[rows].copy()
                here = np.trunc(ports[rows][ok]).astype(np.int64)
                low, high = constraints.source_port_range
                in_range = (here >= low) & (here <= high)
                ok[np.nonzero(ok)[0][~in_range]] = False
                valid[rows] &= ok
        return valid

    def record_scores(self, records):
        scores = np.empty(len(records), dtype=np.float64)
        for i, record in enumerate(records):
            scores[i] = 1.0 if self.reasoner.is_valid(record) else 0.0
        return scores

    _layers.Dense.forward = dense_fwd
    _layers.Dense.backward = dense_bwd
    _layers.ReLU.forward = relu_fwd
    _layers.ReLU.backward = relu_bwd
    _layers.LeakyReLU.forward = lrelu_fwd
    _layers.LeakyReLU.backward = lrelu_bwd
    _layers.BatchNorm.forward = bn_fwd
    _layers.BatchNorm.backward = bn_bwd
    _layers.Dropout.forward = drop_fwd
    _layers.Dropout.backward = drop_bwd
    _trainer.KiNETGANTrainer._targets = targets
    _trainer.KiNETGANStep.__init__ = step_init
    _trainer.KiNETGANTrainer._generator_step = gen_step
    _kg.KnowledgeGuidedDiscriminator.valid_set_loss_and_grad = valid_set
    _kg.KnowledgeGuidedDiscriminator.train_step = kg_train_step
    _kg.KnowledgeGuidedDiscriminator.hard_scores_matrix = hard_scores_matrix
    _losses.BinaryCrossEntropy.forward = bce_fwd
    _losses.BinaryCrossEntropy.backward = bce_bwd
    _generator.TabularOutputActivation.forward = tab_fwd
    _generator.TabularOutputActivation.backward = tab_bwd
    _reasoner.KGReasoner.validity_mask = validity_mask
    _validator.BatchValidator.record_scores = record_scores
    try:
        with disable_consolidation():
            yield
    finally:
        _layers.Dense.forward = saved["dense_fwd"]
        _layers.Dense.backward = saved["dense_bwd"]
        _layers.ReLU.forward = saved["relu_fwd"]
        _layers.ReLU.backward = saved["relu_bwd"]
        _layers.LeakyReLU.forward = saved["lrelu_fwd"]
        _layers.LeakyReLU.backward = saved["lrelu_bwd"]
        _layers.BatchNorm.forward = saved["bn_fwd"]
        _layers.BatchNorm.backward = saved["bn_bwd"]
        _layers.Dropout.forward = saved["drop_fwd"]
        _layers.Dropout.backward = saved["drop_bwd"]
        _trainer.KiNETGANTrainer._targets = saved["targets"]
        _trainer.KiNETGANStep.__init__ = saved["step_init"]
        _trainer.KiNETGANTrainer._generator_step = saved["gen_step"]
        _kg.KnowledgeGuidedDiscriminator.valid_set_loss_and_grad = saved["valid_set"]
        _kg.KnowledgeGuidedDiscriminator.train_step = saved["train_step"]
        _kg.KnowledgeGuidedDiscriminator.hard_scores_matrix = saved["hard_scores_matrix"]
        _losses.BinaryCrossEntropy.forward = saved["bce_fwd"]
        _losses.BinaryCrossEntropy.backward = saved["bce_bwd"]
        _generator.TabularOutputActivation.forward = saved["tab_fwd"]
        _generator.TabularOutputActivation.backward = saved["tab_bwd"]
        _reasoner.KGReasoner.validity_mask = saved["validity_mask"]
        _validator.BatchValidator.record_scores = saved["record_scores"]


# --------------------------------------------------------------------------- #
# Measurement helpers
# --------------------------------------------------------------------------- #
def _build_step(bundle, dtype: str = "float64") -> KiNETGANStep:
    """A ready-to-step trainer (one warm-up epoch fits all the machinery)."""
    model = KiNETGAN(bench_config(epochs=1, dtype=dtype))
    model.fit(bundle.table, catalog=bundle.catalog, condition_columns=bundle.condition_columns)
    trainer = model.trainer
    real_matrix = trainer.transformer.transform(bundle.table, rng=seeded_rng(123))
    return KiNETGANStep(trainer, real_matrix, table=bundle.table)


def _time_epochs(step: KiNETGANStep, n_rows: int, reps: int) -> float:
    """Min seconds over ``reps`` epochs' worth of consecutive steps."""
    steps_per_epoch = max(n_rows // BENCH_BATCH, 1)
    rng = seeded_rng(7)
    for i in range(steps_per_epoch):  # warm-up epoch
        step.step(rng, i)
    best = np.inf
    for _ in range(reps):
        start = time.perf_counter()
        for i in range(steps_per_epoch):
            step.step(rng, i)
        best = min(best, time.perf_counter() - start)
    return best


def measure_epoch(rows: int = BENCH_ROWS, groups: int = EPOCH_GROUPS,
                  reps: int = EPOCH_REPS) -> dict:
    """Epoch wall-clock, current runtime vs seed replica, interleaved."""
    bundle = load_lab_iot(n_records=rows, seed=0)
    step_now = _build_step(bundle)
    with seed_replica():
        step_seed = _build_step(bundle)
    now_times: list[float] = []
    seed_times: list[float] = []
    for _ in range(groups):  # interleave so load spikes hit both variants
        now_times.append(_time_epochs(step_now, rows, reps))
        with seed_replica():
            seed_times.append(_time_epochs(step_seed, rows, reps))
    now, seed = min(now_times), min(seed_times)
    steps_per_epoch = max(rows // BENCH_BATCH, 1)
    return {
        "rows": rows,
        "batch_size": BENCH_BATCH,
        "steps_per_epoch": steps_per_epoch,
        "now_seconds": round(now, 4),
        "seed_seconds": round(seed, 4),
        "now_step_ms": round(now / steps_per_epoch * 1000, 3),
        "seed_step_ms": round(seed / steps_per_epoch * 1000, 3),
        "speedup": round(seed / now, 2),
    }


def _network_step_peak(trainer, batch: int) -> int:
    """Steady-state tracemalloc peak of one network-core step.

    Forward, backward, fused optimizer step and ``zero_grad`` on the
    discriminator ``Sequential`` -- the exact boundary the arena and the
    layer workspaces own, with no escaping outputs.
    """
    net = trainer.discriminator.network
    rng = np.random.default_rng(5)
    dim = trainer.transformer.output_dim + trainer.generator.condition_dim
    # The bare Sequential expects inputs in its own dtype (the model
    # wrappers cast at their boundary); a float64 network sees the same
    # bits as before.
    x = rng.normal(size=(batch, dim)).astype(net.dtype)
    grad = np.full((batch, 1), 1.0 / batch, dtype=net.dtype)

    def once() -> None:
        net.forward(x, training=True)
        net.backward(grad)
        trainer._opt_d.step()
        net.zero_grad()

    for _ in range(5):  # settle workspaces and rng-draw shapes
        once()
    best: int | None = None
    for _ in range(6):
        tracemalloc.start()
        base, _ = tracemalloc.get_traced_memory()
        once()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        delta = peak - base
        best = delta if best is None else min(best, delta)
    return int(best)


def _neural_step_peak(trainer, batch: int) -> int:
    """Steady-state tracemalloc peak of one neural training step."""
    rng = np.random.default_rng(5)
    noise = rng.normal(size=(batch, trainer.config.embedding_dim))
    cond = np.zeros((batch, trainer.generator.condition_dim))
    ones = np.ones((batch, 1))

    def once() -> None:
        fake = trainer.generator.forward(noise, cond, training=True)
        logits = trainer.discriminator.forward(fake, cond, training=True)
        trainer._bce.forward(logits, ones)
        grad_fake = trainer.discriminator.backward(trainer._bce.backward())
        trainer.discriminator.zero_grad()
        trainer.generator.zero_grad()
        trainer.generator.backward(grad_fake)
        trainer._opt_g.step()
        trainer._opt_d.step()

    for _ in range(5):  # settle workspaces and rng-draw shapes
        once()
    best: int | None = None
    for _ in range(6):
        tracemalloc.start()
        base, _ = tracemalloc.get_traced_memory()
        once()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        delta = peak - base
        best = delta if best is None else min(best, delta)
    return int(best)


def _full_step_peak(step: KiNETGANStep) -> int:
    """Steady-state tracemalloc peak of one complete training step."""
    rng = seeded_rng(7)
    for i in range(10):
        step.step(rng, i)
    best: int | None = None
    for i in range(10, 16):
        tracemalloc.start()
        base, _ = tracemalloc.get_traced_memory()
        step.step(rng, i)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        delta = peak - base
        best = delta if best is None else min(best, delta)
    return int(best)


def measure_allocations(rows: int = BENCH_ROWS) -> dict[str, dict]:
    """Tracemalloc peaks per step, current runtime vs seed replica."""
    bundle = load_lab_iot(n_records=rows, seed=0)
    step_now = _build_step(bundle)
    now_small = _network_step_peak(step_now.trainer, BENCH_BATCH)
    now_large = _network_step_peak(step_now.trainer, LARGE_BATCH)
    now_neural = _neural_step_peak(step_now.trainer, BENCH_BATCH)
    now_full = _full_step_peak(step_now)
    with seed_replica():
        step_seed = _build_step(bundle)
        seed_small = _network_step_peak(step_seed.trainer, BENCH_BATCH)
        seed_large = _network_step_peak(step_seed.trainer, LARGE_BATCH)
        seed_neural = _neural_step_peak(step_seed.trainer, BENCH_BATCH)
        seed_full = _full_step_peak(step_seed)
    return {
        "step_allocations": {
            "batch_size": BENCH_BATCH,
            "now_bytes": now_small,
            "seed_bytes": seed_small,
            "speedup": round(seed_small / now_small, 1),
        },
        "step_allocations_large_batch": {
            "batch_size": LARGE_BATCH,
            "now_bytes": now_large,
            "seed_bytes": seed_large,
            "speedup": round(seed_large / now_large, 1),
        },
        "neural_step_allocations": {
            "batch_size": BENCH_BATCH,
            "now_bytes": now_neural,
            "seed_bytes": seed_neural,
            "ratio": round(seed_neural / now_neural, 1),
        },
        "full_step_allocations": {
            "batch_size": BENCH_BATCH,
            "now_bytes": now_full,
            "seed_bytes": seed_full,
            "ratio": round(seed_full / now_full, 1),
        },
    }


def measure_step_allocations(rows: int = BENCH_ROWS, batch: int = BENCH_BATCH) -> dict:
    """The gated network-core allocation probe alone (for the smoke gate)."""
    bundle = load_lab_iot(n_records=rows, seed=0)
    now = _network_step_peak(_build_step(bundle).trainer, batch)
    with seed_replica():
        seed = _network_step_peak(_build_step(bundle).trainer, batch)
    return {
        "batch_size": batch,
        "now_bytes": now,
        "seed_bytes": seed,
        "speedup": round(seed / now, 1),
    }


def measure_precision(rows: int = BENCH_ROWS, groups: int = EPOCH_GROUPS,
                      reps: int = EPOCH_REPS) -> dict[str, dict]:
    """The float32 compute tier against the float64 default, interleaved.

    Both engines run the *current* runtime (arena + fused optimizers); the
    only difference is ``KiNETGANConfig.dtype``, so the comparison isolates
    what halving the element width buys on this machine: narrower BLAS
    kernels, half the memory traffic through the workspace buffers, and
    half the bytes in the network-core step's surviving temporaries.
    """
    bundle = load_lab_iot(n_records=rows, seed=0)
    step_f64 = _build_step(bundle)
    step_f32 = _build_step(bundle, dtype="float32")
    f64_times: list[float] = []
    f32_times: list[float] = []
    for _ in range(groups):  # interleave so load spikes hit both variants
        f64_times.append(_time_epochs(step_f64, rows, reps))
        f32_times.append(_time_epochs(step_f32, rows, reps))
    f64_s, f32_s = min(f64_times), min(f32_times)
    steps_per_epoch = max(rows // BENCH_BATCH, 1)
    alloc_f64 = _network_step_peak(step_f64.trainer, LARGE_BATCH)
    alloc_f32 = _network_step_peak(step_f32.trainer, LARGE_BATCH)
    return {
        "float32_epoch": {
            "rows": rows,
            "batch_size": BENCH_BATCH,
            "steps_per_epoch": steps_per_epoch,
            "float64_seconds": round(f64_s, 4),
            "float32_seconds": round(f32_s, 4),
            "speedup": round(f64_s / f32_s, 2),
        },
        "float32_step_latency": {
            "batch_size": BENCH_BATCH,
            "float64_ms": round(f64_s / steps_per_epoch * 1000, 3),
            "float32_ms": round(f32_s / steps_per_epoch * 1000, 3),
            "speedup": round(f64_s / f32_s, 2),
        },
        "float32_step_allocations": {
            "batch_size": LARGE_BATCH,
            "float64_bytes": alloc_f64,
            "float32_bytes": alloc_f32,
            "speedup": round(alloc_f64 / alloc_f32, 2),
        },
    }


def measure_codec(rows: int = BENCH_ROWS) -> dict:
    """StateCodec round-trip on an arena-backed network state.

    The contiguous state must take the single-copy fast path
    (``_flat_view`` detected); the per-key path is measured on the same
    values copied into standalone arrays, as a decoded broadcast payload
    would look without the arena.
    """
    bundle = load_lab_iot(n_records=min(rows, 600), seed=0)
    model = KiNETGAN(bench_config(epochs=1))
    model.fit(bundle.table, catalog=bundle.catalog, condition_columns=bundle.condition_columns)
    network = model.trainer.generator.network
    state = network.state_dict()
    codec = StateCodec(state)
    fast_path = codec._flat_view(state) is not None
    scattered = {key: np.array(value) for key, value in state.items()}
    vector = codec.encode(state)
    out = np.empty_like(vector)

    def best_of(fn, loops: int = 200) -> float:
        best = np.inf
        for _ in range(loops):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    contiguous_encode = best_of(lambda: codec.encode(state, out=out))
    scattered_encode = best_of(lambda: codec.encode(scattered, out=out))
    contiguous_decode = best_of(lambda: codec.decode_into(vector, state))
    scattered_decode = best_of(lambda: codec.decode_into(vector, scattered))
    return {
        "parameters": codec.dim,
        "keys": len(codec.keys),
        "single_copy_fast_path": fast_path,
        "encode_us": round(contiguous_encode * 1e6, 1),
        "encode_per_key_us": round(scattered_encode * 1e6, 1),
        "decode_us": round(contiguous_decode * 1e6, 1),
        "decode_per_key_us": round(scattered_decode * 1e6, 1),
        "speedup": round(
            (scattered_encode + scattered_decode)
            / (contiguous_encode + contiguous_decode),
            2,
        ),
    }


# --------------------------------------------------------------------------- #
# Document assembly
# --------------------------------------------------------------------------- #
def run_training_bench(rows: int = BENCH_ROWS, groups: int = EPOCH_GROUPS,
                       reps: int = EPOCH_REPS) -> dict:
    """Measure all training probes and return the trajectory document."""
    epoch = measure_epoch(rows, groups, reps)
    metrics: dict[str, dict] = {"kinetgan_epoch": epoch}
    metrics["step_latency"] = {
        "batch_size": epoch["batch_size"],
        "now_ms": epoch["now_step_ms"],
        "seed_ms": epoch["seed_step_ms"],
        "speedup": epoch["speedup"],
    }
    metrics.update(measure_allocations(rows))
    metrics.update(measure_precision(rows, groups, reps))
    metrics["codec_roundtrip"] = measure_codec(rows)
    return {
        "benchmark": "training",
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
        },
        "config": {
            "dataset": "lab_iot",
            "rows": rows,
            "batch_size": BENCH_BATCH,
            "embedding_dim": 32,
            "hidden_dims": [64, 64],
            "epoch_groups": groups,
            "epoch_reps": reps,
        },
        "metrics": metrics,
        "notes": (
            "Both variants run in one process over the same data; the seed "
            "replica replays the pre-arena hot path bit-identically "
            "(identical rng streams and op order), so the comparison "
            "isolates the runtime change. kinetgan_epoch carries a few "
            "percent of process noise on a shared 1-core runner -- the "
            "smoke tolerance absorbs it. step_allocations covers the "
            "network-core step the arena subsystem owns (Sequential "
            "forward/backward, fused optimizer, zero_grad); the wider "
            "neural_step_allocations peak is set by the generated batch "
            "and its gradient, which escape the step by design, and "
            "full_step_allocations adds KG scoring and sampler work whose "
            "allocations are rng-stream-bound on both sides -- both are "
            "context, not gated."
        ),
    }


def write_results(document: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def format_results(document: dict) -> str:
    metrics = document["metrics"]
    epoch = metrics["kinetgan_epoch"]
    alloc = metrics["step_allocations"]
    alloc_large = metrics["step_allocations_large_batch"]
    neural = metrics["neural_step_allocations"]
    full = metrics["full_step_allocations"]
    codec = metrics["codec_roundtrip"]
    f32_epoch = metrics["float32_epoch"]
    f32_alloc = metrics["float32_step_allocations"]
    lines = [
        f"[bench:training] lab-IoT KiNETGAN, {epoch['rows']} rows, batch {epoch['batch_size']}",
        (
            f"  kinetgan_epoch           seed {epoch['seed_seconds']:.3f}s"
            f" -> now {epoch['now_seconds']:.3f}s  ({epoch['speedup']}x,"
            f" {epoch['steps_per_epoch']} steps/epoch)"
        ),
        (
            f"  step_latency             seed {epoch['seed_step_ms']:.2f} ms"
            f" -> now {epoch['now_step_ms']:.2f} ms per step"
        ),
        (
            f"  step_allocations         seed {alloc['seed_bytes']:,} B"
            f" -> now {alloc['now_bytes']:,} B  ({alloc['speedup']}x less,"
            f" batch {alloc['batch_size']})"
        ),
        (
            f"  ... at batch {alloc_large['batch_size']}        seed"
            f" {alloc_large['seed_bytes']:,} B"
            f" -> now {alloc_large['now_bytes']:,} B  ({alloc_large['speedup']}x less)"
        ),
        (
            f"  neural_step_allocations  seed {neural['seed_bytes']:,} B"
            f" -> now {neural['now_bytes']:,} B  ({neural['ratio']}x; not gated)"
        ),
        (
            f"  full_step_allocations    seed {full['seed_bytes']:,} B"
            f" -> now {full['now_bytes']:,} B  ({full['ratio']}x; not gated)"
        ),
        (
            f"  float32_epoch            f64 {f32_epoch['float64_seconds']:.3f}s"
            f" -> f32 {f32_epoch['float32_seconds']:.3f}s  ({f32_epoch['speedup']}x)"
        ),
        (
            f"  float32_step_allocations f64 {f32_alloc['float64_bytes']:,} B"
            f" -> f32 {f32_alloc['float32_bytes']:,} B  ({f32_alloc['speedup']}x less,"
            f" batch {f32_alloc['batch_size']})"
        ),
        (
            "  codec_roundtrip          fast path"
            f" {'on' if codec['single_copy_fast_path'] else 'OFF'};"
            f" encode {codec['encode_per_key_us']:.0f} -> {codec['encode_us']:.0f} us,"
            f" decode {codec['decode_per_key_us']:.0f} -> {codec['decode_us']:.0f} us"
            f"  ({codec['speedup']}x, {codec['parameters']:,} params / {codec['keys']} keys)"
        ),
    ]
    return "\n".join(lines)


def main() -> None:
    document = run_training_bench()
    path = write_results(document)
    print(format_results(document))
    print(f"[bench:training] wrote {path}")


if __name__ == "__main__":
    main()
