"""Figure 7 -- membership-inference attack in White-Box and Fully-Black-Box
settings.

For every model, a balanced member / non-member set is scored against the
model's synthetic release (FBB) and against a model-aware scorer (WB: the
trained discriminator logit for the GAN-family models, a sharper kNN score
otherwise).  Reproduction target: all accuracies sit near 0.5, with
KiNETGAN no more exposed than the baselines (the paper reports 0.54 WB /
0.50 FBB for KiNETGAN).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.privacy import MembershipInferenceAttack

from _harness import MODEL_ORDER, write_table


def _white_box_scorer(model):
    """Discriminator-logit scorer for models that expose a trained D_M."""
    trainer = getattr(model, "trainer", None)
    if trainer is None or not hasattr(trainer, "discriminator"):
        return None
    transformer = model.transformer

    def score(table):
        matrix = transformer.transform(table, rng=np.random.default_rng(0))
        condition = np.zeros((matrix.shape[0], trainer.discriminator.condition_dim))
        return trainer.discriminator.forward(matrix, condition, training=False)[:, 0]

    return score


@pytest.mark.benchmark(group="fig7")
def test_fig7_membership_inference(benchmark, lab_experiment):
    def run():
        members = lab_experiment["train"]
        non_members = lab_experiment["test"]
        out: dict[str, tuple[float, float]] = {}
        for name in MODEL_ORDER:
            synthetic = lab_experiment["synthetic"][name]
            attack = MembershipInferenceAttack(seed=7, max_records=250)
            fbb = attack.run(members, non_members, synthetic, setting="fbb")
            wb = attack.run(
                members, non_members, synthetic, setting="wb",
                score_fn=_white_box_scorer(lab_experiment["models"][name]),
            )
            out[name] = (wb.attack_accuracy, fbb.attack_accuracy)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name, f"{results[name][0]:.3f}", f"{results[name][1]:.3f}"]
        for name in MODEL_ORDER
    ]
    write_table(
        "fig7_membership_inference",
        ["model", "white-box", "fully-black-box"],
        rows,
        "Figure 7: membership-inference attack accuracy (0.5 = no leakage)",
    )

    for name in MODEL_ORDER:
        wb, fbb = results[name]
        assert 0.3 <= wb <= 0.85 and 0.3 <= fbb <= 0.85, name
    # KiNETGAN stays close to the no-leakage point, as in the paper.
    assert abs(results["KiNETGAN"][1] - 0.5) <= 0.2
