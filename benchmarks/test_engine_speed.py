"""Micro-benchmarks for the shared training engine's hot paths.

Two wall-clock measurements ride with the benchmark suite:

* vectorized :meth:`DataTransformer.harden` against the pre-engine
  per-block reference loop, and
* one full KiNETGAN training epoch driven through
  :class:`repro.engine.TrainingEngine`.

Numbers are printed (run with ``-s`` to see them); the only hard assertion
is correctness, so timing noise on shared CI machines cannot flake.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import KiNETGAN, KiNETGANConfig
from repro.tabular.transformer import DataTransformer


def _naive_harden(transformer: DataTransformer, matrix: np.ndarray) -> np.ndarray:
    """The per-block hardening loop every synthesizer used to hand-roll."""
    hardened = matrix.copy()
    for start, end, activation in transformer.activation_spans():
        if activation != "softmax":
            continue
        block = hardened[:, start:end]
        one_hot = np.zeros_like(block)
        one_hot[np.arange(len(block)), block.argmax(axis=1)] = 1.0
        hardened[:, start:end] = one_hot
    return hardened


def test_harden_vectorized_vs_reference(lab_bundle):
    transformer = DataTransformer(max_modes=6, seed=0).fit(lab_bundle.table)
    rng = np.random.default_rng(0)
    soft = rng.uniform(size=(20_000, transformer.output_dim))

    start = time.perf_counter()
    expected = _naive_harden(transformer, soft)
    naive_s = time.perf_counter() - start

    start = time.perf_counter()
    got = transformer.harden(soft)
    fast_s = time.perf_counter() - start

    np.testing.assert_array_equal(got, expected)
    print(
        f"\n[engine-speed] harden {soft.shape[0]}x{soft.shape[1]}: "
        f"reference {naive_s * 1e3:.1f} ms, vectorized {fast_s * 1e3:.1f} ms "
        f"({naive_s / max(fast_s, 1e-9):.2f}x)"
    )


def test_one_training_epoch_wall_clock(lab_bundle):
    config = KiNETGANConfig(
        embedding_dim=16,
        generator_dims=(48,),
        discriminator_dims=(48,),
        epochs=1,
        batch_size=128,
        knowledge_negatives_per_batch=32,
        seed=0,
    )
    model = KiNETGAN(config)
    start = time.perf_counter()
    model.fit(
        lab_bundle.table,
        catalog=lab_bundle.catalog,
        condition_columns=lab_bundle.condition_columns,
    )
    elapsed = time.perf_counter() - start

    assert model.trainer.engine is not None
    assert model.trainer.engine.epochs_run == 1
    steps = max(1, lab_bundle.table.n_rows // config.batch_size)
    print(
        f"\n[engine-speed] 1 KiNETGAN epoch via TrainingEngine "
        f"({lab_bundle.table.n_rows} rows, {steps} steps): {elapsed:.2f} s"
    )
