"""Runtime benchmarks: federated round throughput, serial vs process pool.

Measures how fast the multi-node layer turns over synchronous FedAvg rounds
at 4 / 8 / 16 clients under the serial executor and the process-pool
executor (:mod:`repro.runtime`), plus a latency-overlap probe that isolates
the runtime's ability to overlap blocked time from the machine's core
count.  Results land in ``BENCH_runtime.json`` at the repository root so
future PRs have a trajectory to compare against.

Interpreting the numbers:

* ``federated_round_Nclients`` -- wall-clock round throughput.  Client-side
  local training is CPU-bound numpy, so the process-pool speedup is capped
  by physical cores: on a multi-core runner 8 clients over >= 4 workers
  should clear 2x, while a single-core machine can at best break even (the
  pickling overhead is then visible instead of hidden).
* ``latency_overlap`` -- the same executor machinery over work units that
  *block* (simulated device/network latency).  This measures pure
  scheduling overlap and reaches ~min(workers, tasks)x on any machine,
  which is the regime a real federated deployment (remote devices, network
  round-trips) lives in.

Run directly (``python -m benchmarks.bench_runtime``) or through
``python -m benchmarks.run --suite runtime``.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.datasets import load_lab_iot
from repro.federated.client import FederatedClient
from repro.federated.server import FederatedServer
from repro.federated.simulation import DetectorFactory
from repro.nids.features import TabularFeaturizer
from repro.runtime import ProcessExecutor, SerialExecutor, default_worker_count

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

#: Client counts the round-throughput benchmark sweeps.
CLIENT_COUNTS = (4, 8, 16)
ROWS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_ROWS_PER_CLIENT", "600"))
LOCAL_EPOCHS = int(os.environ.get("REPRO_BENCH_LOCAL_EPOCHS", "4"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
LATENCY_TASKS = 8
LATENCY_SECONDS = 0.05


def _sleep_task(seconds: float) -> float:
    """Module-level blocked work unit for the latency-overlap probe."""
    time.sleep(seconds)
    return seconds


def _make_clients(n_clients: int, rows_per_client: int, seed: int) -> tuple[list, DetectorFactory]:
    """Evenly sized federated clients over a featurised lab-IoT capture."""
    bundle = load_lab_iot(n_records=n_clients * rows_per_client, seed=seed)
    featurizer = TabularFeaturizer(bundle.label_column).fit(bundle.table)
    features, labels = featurizer.transform(bundle.table)
    model_fn = DetectorFactory(
        n_features=features.shape[1],
        n_classes=featurizer.n_classes,
        hidden_dims=(64, 32),
        seed=seed,
    )
    clients = []
    feature_parts = np.array_split(features, n_clients)
    label_parts = np.array_split(labels, n_clients)
    for i, (X, y) in enumerate(zip(feature_parts, label_parts)):
        clients.append(
            FederatedClient(
                client_id=f"bench-{i}",
                features=X,
                labels=y,
                model_fn=model_fn,
                learning_rate=0.05,
                batch_size=64,
                local_epochs=LOCAL_EPOCHS,
                seed=seed + i,
            )
        )
    return clients, model_fn


def _rounds_per_sec(executor, n_clients: int, rounds: int, seed: int) -> float:
    """Timed FedAvg rounds on a fresh server (1 warm-up round untimed)."""
    clients, model_fn = _make_clients(n_clients, ROWS_PER_CLIENT, seed)
    server = FederatedServer(model_fn, clients, seed=seed, executor=executor)
    server.run_round()  # warm-up: spins the pool up and JITs nothing away
    start = time.perf_counter()
    for _ in range(rounds):
        server.run_round()
    elapsed = time.perf_counter() - start
    return rounds / elapsed


def run_runtime_bench(
    client_counts: tuple[int, ...] = CLIENT_COUNTS, rounds: int = ROUNDS
) -> dict:
    """Measure round throughput serial vs process and return the document."""
    cores = default_worker_count()
    metrics: dict[str, dict] = {}

    for n_clients in client_counts:
        workers = min(n_clients, max(2, cores))
        serial = _rounds_per_sec(SerialExecutor(), n_clients, rounds, seed=7)
        with ProcessExecutor(max_workers=workers) as pool:
            parallel = _rounds_per_sec(pool, n_clients, rounds, seed=7)
        metrics[f"federated_round_{n_clients}clients"] = {
            "serial_rounds_per_sec": round(serial, 3),
            "process_rounds_per_sec": round(parallel, 3),
            "speedup": round(parallel / serial, 2),
            "workers": workers,
            "rows_per_client": ROWS_PER_CLIENT,
        }

    # Scheduling overlap, decoupled from core count: blocked work units.
    serial_start = time.perf_counter()
    SerialExecutor().map(_sleep_task, [LATENCY_SECONDS] * LATENCY_TASKS)
    serial_seconds = time.perf_counter() - serial_start
    with ProcessExecutor(max_workers=LATENCY_TASKS) as pool:
        pool.map(_sleep_task, [LATENCY_SECONDS])  # warm-up: pool start-up
        parallel_start = time.perf_counter()
        pool.map(_sleep_task, [LATENCY_SECONDS] * LATENCY_TASKS)
        parallel_seconds = time.perf_counter() - parallel_start
    metrics["latency_overlap"] = {
        "tasks": LATENCY_TASKS,
        "task_seconds": LATENCY_SECONDS,
        "serial_seconds": round(serial_seconds, 3),
        "process_seconds": round(parallel_seconds, 3),
        "speedup": round(serial_seconds / parallel_seconds, 2),
    }

    return {
        "benchmark": "runtime",
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
            "usable_cpus": cores,
        },
        "config": {
            "dataset": "lab_iot",
            "client_counts": list(client_counts),
            "rounds": rounds,
            "rows_per_client": ROWS_PER_CLIENT,
            "local_epochs": LOCAL_EPOCHS,
            "batch_size": 64,
        },
        "metrics": metrics,
        "notes": (
            "Round throughput is CPU-bound: the process-pool speedup scales "
            "with physical cores (>=2x at 8 clients needs >=4 usable cores; "
            "a 1-core machine shows executor overhead instead). "
            "latency_overlap isolates scheduling overlap with blocked work "
            "units and is core-count independent -- it is the regime of a "
            "real distributed deployment, where client time is dominated by "
            "device latency rather than coordinator CPU."
        ),
    }


def write_results(document: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def format_results(document: dict) -> str:
    machine = document["machine"]
    lines = [f"[bench:runtime] lab-IoT federated rounds ({machine['usable_cpus']} usable cpus)"]
    for name, entry in document["metrics"].items():
        if name.startswith("federated_round"):
            lines.append(
                f"  {name:28s} serial {entry['serial_rounds_per_sec']:>7.3f} rounds/s"
                f" -> process {entry['process_rounds_per_sec']:>7.3f} rounds/s"
                f"  ({entry['speedup']}x, {entry['workers']} workers)"
            )
        else:
            lines.append(
                f"  {name:28s} serial {entry['serial_seconds']:.3f}s"
                f" -> process {entry['process_seconds']:.3f}s"
                f"  ({entry['speedup']}x, {entry['tasks']} blocked tasks)"
            )
    return "\n".join(lines)


def main() -> None:
    document = run_runtime_bench()
    path = write_results(document)
    print(format_results(document))
    print(f"[bench:runtime] wrote {path}")


if __name__ == "__main__":
    main()
