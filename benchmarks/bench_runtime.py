"""Runtime benchmarks: round throughput, scheduling overlap, transport bytes.

Measures how fast the multi-node layer turns over synchronous FedAvg rounds
at 4 / 8 / 16 clients under the serial, process-pool and thread-pool
executors (:mod:`repro.runtime`), a latency-overlap probe that isolates the
runtime's ability to overlap blocked time from the machine's core count,
and a *transport-bytes* probe that counts what actually crosses the task
pipe per round on each transport.  Results land in ``BENCH_runtime.json``
at the repository root so future PRs have a trajectory to compare against.

Interpreting the numbers:

* ``federated_round_Nclients`` -- wall-clock round throughput.  Client-side
  local training is CPU-bound numpy, so pool speedups are capped by
  physical cores: on a multi-core runner 8 clients over >= 4 workers
  should clear 2x, while a single-core machine can at best break even.
  Every entry records the ``cpu_count`` it was measured with; the smoke
  gate skips these core-count-sensitive comparisons on mismatched runners.
* ``latency_overlap`` -- the same executor machinery over work units that
  *block* (simulated device/network latency).  This measures pure
  scheduling overlap and reaches ~min(workers, tasks)x on any machine,
  which is the regime a real federated deployment (remote devices, network
  round-trips) lives in.
* ``transport_bytes_per_round`` -- pickled bytes per steady-state round on
  the legacy payload transport (whole clients + state dicts re-shipped
  every round) versus the resident transport (clients installed once,
  rounds ship refs + seeds, parameters ride shared memory).  This is
  deterministic and core-count independent: the copy elimination is
  visible even on a 1-core container.
* ``transport_bytes_float32`` -- shared-memory parameter bytes a resident
  round rewrites with a float64 detector versus a float32 one.  The round
  buffers are allocated in the model's dtype (``docs/precision.md``), so
  this is deterministically ~2x and core-count independent.

Run directly (``python -m benchmarks.bench_runtime``) or through
``python -m benchmarks.run --suite runtime``.
"""

from __future__ import annotations

import datetime
import json
import os
import pickle
import platform
import time
from pathlib import Path

import numpy as np

from repro.datasets import load_lab_iot
from repro.federated.client import FederatedClient
from repro.federated.server import FederatedServer
from repro.federated.simulation import DetectorFactory
from repro.nids.features import TabularFeaturizer
from repro.runtime import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_worker_count,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

#: Client counts the round-throughput benchmark sweeps.
CLIENT_COUNTS = (4, 8, 16)
ROWS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_ROWS_PER_CLIENT", "600"))
LOCAL_EPOCHS = int(os.environ.get("REPRO_BENCH_LOCAL_EPOCHS", "4"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
LATENCY_TASKS = 8
LATENCY_SECONDS = 0.05
TRANSPORT_CLIENTS = 8
TRANSPORT_ROUNDS = 2

#: What the measured configurations ship per round (recorded in entries).
RESIDENT_TRANSPORT = "resident (refs + seeds; params via shared memory)"
PAYLOAD_TRANSPORT = "payload (clients + state dicts re-pickled per round)"


def _sleep_task(seconds: float) -> float:
    """Module-level blocked work unit for the latency-overlap probe."""
    time.sleep(seconds)
    return seconds


class _MeteredExecutor(Executor):
    """Wraps an executor and counts the pickled bytes a round ships.

    ``map`` payloads and results are measured with ``pickle.dumps`` -- the
    same serialisation the process pool itself performs -- while
    ``install`` bytes are tallied separately (they are one-time, not
    per-round).  Shared-memory buffers are delegated untouched: bytes the
    transport moves through them never cross the task pipe, which is
    exactly what this meter exists to show.
    """

    name = "metered"

    def __init__(self, inner: Executor) -> None:
        super().__init__()
        self.inner = inner
        self.payload_bytes = 0
        self.result_bytes = 0
        self.install_bytes = 0
        self.shared_bytes = 0

    def reset(self) -> None:
        self.payload_bytes = 0
        self.result_bytes = 0

    def map(self, fn, payloads):
        payloads = list(payloads)
        self.payload_bytes += sum(
            len(pickle.dumps(p, pickle.HIGHEST_PROTOCOL)) for p in payloads
        )
        results = self.inner.map(fn, payloads)
        self.result_bytes += sum(
            len(pickle.dumps(r, pickle.HIGHEST_PROTOCOL)) for r in results
        )
        return results

    def install(self, state):
        self.install_bytes += len(pickle.dumps(state, pickle.HIGHEST_PROTOCOL))
        return self.inner.install(state)

    def evict(self, ref):
        self.inner.evict(ref)

    def shared_array(self, shape, dtype=np.float64):
        # Tally the mapped bytes: these are the parameter bytes every round
        # rewrites through shared memory instead of the task pipe, so they
        # shrink with the model's dtype (float32 maps half of float64).
        self.shared_bytes += int(np.prod(shape)) * np.dtype(dtype).itemsize
        return self.inner.shared_array(shape, dtype)

    def close(self):
        self.inner.close()
        self._closed = True


def _make_clients(
    n_clients: int, rows_per_client: int, seed: int, dtype: str = "float64"
) -> tuple[list, DetectorFactory]:
    """Evenly sized federated clients over a featurised lab-IoT capture."""
    bundle = load_lab_iot(n_records=n_clients * rows_per_client, seed=seed)
    featurizer = TabularFeaturizer(bundle.label_column).fit(bundle.table)
    features, labels = featurizer.transform(bundle.table)
    model_fn = DetectorFactory(
        n_features=features.shape[1],
        n_classes=featurizer.n_classes,
        hidden_dims=(64, 32),
        seed=seed,
        dtype=dtype,
    )
    clients = []
    feature_parts = np.array_split(features, n_clients)
    label_parts = np.array_split(labels, n_clients)
    for i, (X, y) in enumerate(zip(feature_parts, label_parts)):
        clients.append(
            FederatedClient(
                client_id=f"bench-{i}",
                features=X,
                labels=y,
                model_fn=model_fn,
                learning_rate=0.05,
                batch_size=64,
                local_epochs=LOCAL_EPOCHS,
                seed=seed + i,
            )
        )
    return clients, model_fn


def _rounds_per_sec(executor, n_clients: int, rounds: int, seed: int) -> float:
    """Timed FedAvg rounds on a fresh server (1 warm-up round untimed)."""
    clients, model_fn = _make_clients(n_clients, ROWS_PER_CLIENT, seed)
    server = FederatedServer(model_fn, clients, seed=seed, executor=executor)
    try:
        server.run_round()  # warm-up: spins the pool up and installs state
        start = time.perf_counter()
        for _ in range(rounds):
            server.run_round()
        elapsed = time.perf_counter() - start
    finally:
        server.release_transport()
    return rounds / elapsed


def measure_round_throughput(
    client_counts: tuple[int, ...] = CLIENT_COUNTS, rounds: int = ROUNDS
) -> dict[str, dict]:
    """Round throughput serial vs process vs thread at each client count."""
    cores = default_worker_count()
    metrics: dict[str, dict] = {}
    for n_clients in client_counts:
        workers = min(n_clients, max(2, cores))
        serial = _rounds_per_sec(SerialExecutor(), n_clients, rounds, seed=7)
        with ProcessExecutor(max_workers=workers) as pool:
            process = _rounds_per_sec(pool, n_clients, rounds, seed=7)
        with ThreadExecutor(max_workers=workers) as pool:
            thread = _rounds_per_sec(pool, n_clients, rounds, seed=7)
        metrics[f"federated_round_{n_clients}clients"] = {
            "serial_rounds_per_sec": round(serial, 3),
            "process_rounds_per_sec": round(process, 3),
            "thread_rounds_per_sec": round(thread, 3),
            "speedup": round(process / serial, 2),
            "thread_speedup": round(thread / serial, 2),
            "workers": workers,
            "rows_per_client": ROWS_PER_CLIENT,
            "transport": RESIDENT_TRANSPORT,
            "cpu_count": cores,
        }
    return metrics


def measure_latency_overlap() -> dict:
    """Scheduling overlap, decoupled from core count: blocked work units."""
    serial_start = time.perf_counter()
    SerialExecutor().map(_sleep_task, [LATENCY_SECONDS] * LATENCY_TASKS)
    serial_seconds = time.perf_counter() - serial_start
    with ProcessExecutor(max_workers=LATENCY_TASKS) as pool:
        pool.map(_sleep_task, [LATENCY_SECONDS])  # warm-up: pool start-up
        parallel_start = time.perf_counter()
        pool.map(_sleep_task, [LATENCY_SECONDS] * LATENCY_TASKS)
        parallel_seconds = time.perf_counter() - parallel_start
    return {
        "tasks": LATENCY_TASKS,
        "task_seconds": LATENCY_SECONDS,
        "serial_seconds": round(serial_seconds, 3),
        "process_seconds": round(parallel_seconds, 3),
        "speedup": round(serial_seconds / parallel_seconds, 2),
        "cpu_count": default_worker_count(),
    }


def measure_transport_bytes(
    n_clients: int = TRANSPORT_CLIENTS, rounds: int = TRANSPORT_ROUNDS
) -> dict:
    """Pickled bytes per steady-state round, payload vs resident transport.

    Both transports run over a real (metered) process pool, so the resident
    refs measured here are the shared-memory ones, not the in-process
    identity refs.  The first round is excluded: it carries the one-time
    installs (counted separately as ``resident_install_bytes``).
    """

    def run(transport: str) -> tuple[float, int]:
        clients, model_fn = _make_clients(n_clients, ROWS_PER_CLIENT, seed=11)
        meter = _MeteredExecutor(ProcessExecutor(max_workers=2))
        server = FederatedServer(
            model_fn, clients, seed=11, executor=meter, transport=transport
        )
        try:
            server.run_round()  # install + warm-up round
            meter.reset()
            for _ in range(rounds):
                server.run_round()
            per_round = (meter.payload_bytes + meter.result_bytes) / rounds
            return per_round, meter.install_bytes
        finally:
            server.close()

    payload_per_round, _ = run("payload")
    resident_per_round, install_bytes = run("resident")
    return {
        "clients": n_clients,
        "rows_per_client": ROWS_PER_CLIENT,
        "rounds_measured": rounds,
        "legacy_payload_bytes_per_round": int(payload_per_round),
        "resident_delta_bytes_per_round": int(resident_per_round),
        "resident_install_bytes": install_bytes,
        "reduction": round(payload_per_round / resident_per_round, 1),
        "transport": f"{PAYLOAD_TRANSPORT} vs {RESIDENT_TRANSPORT}",
        "cpu_count": default_worker_count(),
    }


def measure_dtype_transport(
    n_clients: int = TRANSPORT_CLIENTS, rounds: int = TRANSPORT_ROUNDS
) -> dict:
    """Bytes a resident federated round moves at float64 vs float32.

    Runs the same detector federation twice -- once with a float64
    :class:`DetectorFactory`, once float32 -- over a metered process pool on
    the resident transport.  The dominant per-round traffic is the broadcast
    vector plus the ``(clients, dim)`` update matrix riding shared memory;
    both are allocated in the model's dtype, so the float32 run maps (and
    rewrites each round) half the parameter bytes.  Pipe bytes (refs, seeds,
    metric floats) are dtype-independent and reported for completeness.
    """

    def run(dtype: str) -> dict[str, int]:
        clients, model_fn = _make_clients(n_clients, ROWS_PER_CLIENT, seed=11, dtype=dtype)
        meter = _MeteredExecutor(ProcessExecutor(max_workers=2))
        server = FederatedServer(
            model_fn, clients, seed=11, executor=meter, transport="resident"
        )
        try:
            server.run_round()  # install + warm-up: allocates the round buffers
            shared = meter.shared_bytes
            meter.reset()
            for _ in range(rounds):
                server.run_round()
            pipe = (meter.payload_bytes + meter.result_bytes) / rounds
            return {"shared_param_bytes_per_round": int(shared), "pipe_bytes_per_round": int(pipe)}
        finally:
            server.close()

    float64 = run("float64")
    float32 = run("float32")
    return {
        "clients": n_clients,
        "rows_per_client": ROWS_PER_CLIENT,
        "rounds_measured": rounds,
        "float64_param_bytes_per_round": float64["shared_param_bytes_per_round"],
        "float32_param_bytes_per_round": float32["shared_param_bytes_per_round"],
        "float64_pipe_bytes_per_round": float64["pipe_bytes_per_round"],
        "float32_pipe_bytes_per_round": float32["pipe_bytes_per_round"],
        "reduction": round(
            float64["shared_param_bytes_per_round"]
            / float32["shared_param_bytes_per_round"],
            2,
        ),
        "transport": RESIDENT_TRANSPORT,
        "cpu_count": default_worker_count(),
    }


def run_runtime_bench(
    client_counts: tuple[int, ...] = CLIENT_COUNTS, rounds: int = ROUNDS
) -> dict:
    """Measure all runtime probes and return the trajectory document."""
    cores = default_worker_count()
    metrics = measure_round_throughput(client_counts, rounds)
    metrics["latency_overlap"] = measure_latency_overlap()
    metrics["transport_bytes_per_round"] = measure_transport_bytes()
    metrics["transport_bytes_float32"] = measure_dtype_transport()

    return {
        "benchmark": "runtime",
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
            "usable_cpus": cores,
        },
        "config": {
            "dataset": "lab_iot",
            "client_counts": list(client_counts),
            "rounds": rounds,
            "rows_per_client": ROWS_PER_CLIENT,
            "local_epochs": LOCAL_EPOCHS,
            "batch_size": 64,
        },
        "metrics": metrics,
        "notes": (
            "Round throughput is CPU-bound: pool speedups scale with "
            "physical cores (>=2x at 8 clients needs >=4 usable cores; a "
            "1-core machine shows executor overhead instead), so every "
            "entry records its cpu_count and the smoke gate only compares "
            "them on a matching runner. latency_overlap isolates "
            "scheduling overlap with blocked work units and is core-count "
            "independent. transport_bytes_per_round is deterministic: it "
            "shows the resident transport cutting per-round pickling to "
            "refs + seeds + metric floats, with parameters riding shared "
            "memory instead of the task pipe."
        ),
    }


def write_results(document: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def format_results(document: dict) -> str:
    machine = document["machine"]
    lines = [f"[bench:runtime] lab-IoT federated rounds ({machine['usable_cpus']} usable cpus)"]
    for name, entry in document["metrics"].items():
        if name.startswith("federated_round"):
            lines.append(
                f"  {name:28s} serial {entry['serial_rounds_per_sec']:>7.3f} rounds/s"
                f" -> process {entry['process_rounds_per_sec']:>7.3f}"
                f" / thread {entry['thread_rounds_per_sec']:>7.3f} rounds/s"
                f"  ({entry['speedup']}x / {entry['thread_speedup']}x,"
                f" {entry['workers']} workers)"
            )
        elif name == "latency_overlap":
            lines.append(
                f"  {name:28s} serial {entry['serial_seconds']:.3f}s"
                f" -> process {entry['process_seconds']:.3f}s"
                f"  ({entry['speedup']}x, {entry['tasks']} blocked tasks)"
            )
        elif name == "transport_bytes_float32":
            lines.append(
                f"  {name:28s} float64 {entry['float64_param_bytes_per_round']:,} B/round"
                f" -> float32 {entry['float32_param_bytes_per_round']:,} B/round"
                f"  ({entry['reduction']}x less, {entry['clients']} clients,"
                f" shared-memory params)"
            )
        else:
            lines.append(
                f"  {name:28s} payload {entry['legacy_payload_bytes_per_round']:,} B/round"
                f" -> resident {entry['resident_delta_bytes_per_round']:,} B/round"
                f"  ({entry['reduction']}x less, {entry['clients']} clients;"
                f" one-time install {entry['resident_install_bytes']:,} B)"
            )
    return "\n".join(lines)


def main() -> None:
    document = run_runtime_bench()
    path = write_results(document)
    print(format_results(document))
    print(f"[bench:runtime] wrote {path}")


if __name__ == "__main__":
    main()
