"""Data-plane micro-benchmarks: sampler, encoders, validity, epoch time.

Measures the vectorized data plane (PR 2) against in-file replicas of the
seed implementation on the lab-IoT table and writes the results to
``BENCH_dataplane.json`` at the repository root, so every future PR has a
perf trajectory to compare against.  The seed replicas are verbatim copies
of the pre-vectorization hot loops:

* ``ConditionSampler`` -- the ``legacy_sampling=True`` path *is* the seed
  sampler (kept in-tree, bit-for-bit), so the comparison runs the real thing;
* ``DataTransformer.transform`` / ``inverse_transform`` -- per-column loops
  with per-row ``rng.choice`` mode draws and per-value ``OneHotEncoder``
  dict lookups / list comprehensions, copied from the seed;
* validity -- the per-record ``KGReasoner.violations`` loop (still in-tree
  as ``BatchValidator.record_scores``).

Run directly (``python -m benchmarks.bench_dataplane``) or through
``python -m benchmarks.run --json``.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import KiNETGAN, KiNETGANConfig
from repro.datasets import load_lab_iot
from repro.knowledge.builder import build_network_kg
from repro.knowledge.reasoner import KGReasoner
from repro.knowledge.validator import BatchValidator
from repro.tabular.encoders import MinMaxScaler, ModeSpecificNormalizer
from repro.tabular.sampler import ConditionSampler
from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dataplane.json"

BENCH_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "1500"))
SAMPLE_BATCH = 512
INVERSE_BATCH = 2048


def _rate(fn, rows: int, min_seconds: float = 1.0) -> float:
    """Throughput of ``fn`` in rows/second (repeats until ``min_seconds``)."""
    fn()  # warm-up
    start = time.perf_counter()
    done = 0
    while time.perf_counter() - start < min_seconds:
        fn()
        done += rows
    return done / (time.perf_counter() - start)


# --------------------------------------------------------------------- #
# Seed-implementation replicas (pre-vectorization hot loops)
# --------------------------------------------------------------------- #
def _seed_onehot_transform(encoder, values) -> np.ndarray:
    out = np.zeros((len(values), len(encoder.categories)), dtype=np.float64)
    for row, value in enumerate(values):
        index = encoder._index.get(value)
        if index is None:
            continue
        out[row, index] = 1.0
    return out


def _seed_mode_transform(encoder, values, rng) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    proba = encoder.gmm.predict_proba(values)
    modes = np.empty(len(values), dtype=int)
    for i in range(len(values)):
        modes[i] = rng.choice(encoder.gmm.n_components, p=proba[i])
    mu = encoder.gmm.means[modes]
    sigma = encoder.gmm.stds[modes]
    alpha = np.clip((values - mu) / (4.0 * sigma), -1.0, 1.0)
    beta = np.zeros((len(values), encoder.gmm.n_components), dtype=np.float64)
    beta[np.arange(len(values)), modes] = 1.0
    return np.concatenate([alpha[:, None], beta], axis=1)


def _seed_empirical_conditions(sampler: ConditionSampler, n: int, rng) -> np.ndarray:
    indices = rng.integers(0, sampler.table.n_rows, size=n)
    vectors = np.zeros((n, sampler.condition_dim), dtype=np.float64)
    for i, row_index in enumerate(indices):
        row = sampler.table.row(int(row_index))
        vectors[i] = sampler.vector_from_values(
            {name: row[name] for name in sampler.conditional_columns}
        )
    return vectors


def _seed_transform(transformer: DataTransformer, table: Table, rng) -> np.ndarray:
    blocks = []
    for info in transformer.output_info:
        encoder = transformer._encoders[info.name]
        values = table.column(info.name)
        if isinstance(encoder, ModeSpecificNormalizer):
            blocks.append(_seed_mode_transform(encoder, values.astype(np.float64), rng))
        elif isinstance(encoder, MinMaxScaler):
            blocks.append(encoder.transform(values.astype(np.float64))[:, None])
        else:
            blocks.append(_seed_onehot_transform(encoder, values))
    return np.concatenate(blocks, axis=1)


def _seed_inverse(transformer: DataTransformer, matrix: np.ndarray) -> Table:
    matrix = np.asarray(matrix, dtype=np.float64)
    columns = {}
    for info in transformer.output_info:
        encoder = transformer._encoders[info.name]
        block = matrix[:, info.start : info.end]
        if isinstance(encoder, ModeSpecificNormalizer):
            alpha = np.clip(block[:, 0], -1.0, 1.0)
            modes = np.argmax(block[:, 1:], axis=1)
            columns[info.name] = alpha * 4.0 * encoder.gmm.stds[modes] + encoder.gmm.means[modes]
        elif isinstance(encoder, MinMaxScaler):
            columns[info.name] = encoder.inverse_transform(block[:, 0])
        else:
            indices = np.argmax(block, axis=1)
            columns[info.name] = np.asarray(
                [encoder.categories[i] for i in indices], dtype=object
            )
    for spec in transformer.schema:
        if spec.is_continuous:
            values = np.asarray(columns[spec.name], dtype=np.float64)
            if spec.minimum is not None:
                values = np.maximum(values, spec.minimum)
            if spec.maximum is not None:
                values = np.minimum(values, spec.maximum)
            columns[spec.name] = values
    return Table(transformer.schema, columns)


# --------------------------------------------------------------------- #
def run_dataplane_bench(
    rows: int = BENCH_ROWS, epoch: bool = True, min_seconds: float = 1.0
) -> dict:
    """Measure the data plane and return the benchmark document.

    ``min_seconds`` is how long each measurement repeats; the CI smoke run
    shrinks it to keep the whole check under a minute.
    """
    bundle = load_lab_iot(n_records=rows, seed=7)
    table = bundle.table
    transformer = DataTransformer(max_modes=6, seed=0).fit(table)
    sampler = ConditionSampler(
        table, transformer, conditional_columns=bundle.condition_columns
    )
    legacy = ConditionSampler(
        table, transformer, conditional_columns=bundle.condition_columns,
        legacy_sampling=True,
    )
    reasoner = KGReasoner(build_network_kg(bundle.catalog), field_map=bundle.catalog.field_map)
    validator = BatchValidator(reasoner)
    rng = np.random.default_rng(0)

    metrics: dict[str, dict] = {}

    def record(name: str, seed_rps: float, new_rps: float, **extra) -> None:
        metrics[name] = {
            "seed_rows_per_sec": round(seed_rps),
            "vectorized_rows_per_sec": round(new_rps),
            "speedup": round(new_rps / seed_rps, 2),
            **extra,
        }

    # Condition sampling (training-by-sampling), batch 512.
    record(
        "sampler_sample",
        _rate(lambda: legacy.sample(SAMPLE_BATCH, rng), SAMPLE_BATCH, min_seconds),
        _rate(lambda: sampler.sample(SAMPLE_BATCH, rng), SAMPLE_BATCH, min_seconds),
        batch_size=SAMPLE_BATCH,
    )
    record(
        "empirical_conditions",
        _rate(
            lambda: _seed_empirical_conditions(sampler, SAMPLE_BATCH, rng),
            SAMPLE_BATCH,
            min_seconds,
        ),
        _rate(lambda: sampler.empirical_conditions(SAMPLE_BATCH, rng), SAMPLE_BATCH, min_seconds),
        batch_size=SAMPLE_BATCH,
    )

    # Table -> matrix encoding.
    record(
        "transform",
        _rate(lambda: _seed_transform(transformer, table, rng), table.n_rows, min_seconds),
        _rate(lambda: transformer.transform(table, rng=rng), table.n_rows, min_seconds),
        rows=table.n_rows,
    )

    # Matrix -> table decoding (hardened input, the sampling-path shape).
    matrix = transformer.transform(table, rng=rng)
    tiles = max(1, INVERSE_BATCH // len(matrix) + 1)
    hard = np.ascontiguousarray(np.tile(matrix, (tiles, 1))[:INVERSE_BATCH])
    record(
        "inverse_transform",
        _rate(lambda: _seed_inverse(transformer, hard), len(hard), min_seconds),
        _rate(lambda: transformer.inverse_transform(hard), len(hard), min_seconds),
        batch_size=len(hard),
    )

    # The categorical decode stage alone (the seed's per-value list
    # comprehension vs one fancy index over precomputed winner codes).
    encoder = transformer.encoder(bundle.condition_columns[0])
    info = transformer.column_info(bundle.condition_columns[0])
    codes = np.argmax(hard[:, info.start : info.end], axis=1)
    record(
        "onehot_decode",
        _rate(lambda: np.asarray([encoder.categories[i] for i in codes], dtype=object),
              len(codes), min_seconds),
        _rate(lambda: encoder.decode(codes), len(codes), min_seconds),
        batch_size=len(codes),
    )

    # Knowledge-graph validity.
    record(
        "validity_rate",
        _rate(lambda: validator.record_scores(table.to_records()), table.n_rows, min_seconds),
        _rate(lambda: reasoner.validity_mask(table), table.n_rows, min_seconds),
        rows=table.n_rows,
    )

    document = {
        "benchmark": "dataplane",
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
        },
        "config": {
            "dataset": "lab_iot",
            "rows": rows,
            "sample_batch": SAMPLE_BATCH,
            "inverse_batch": INVERSE_BATCH,
        },
        "metrics": metrics,
        "notes": (
            "inverse_transform total is bounded by the per-block argmax that the "
            "seed implementation already ran in numpy; this PR removes the "
            "per-value Python decode around it (see onehot_decode) and adds a "
            "one-BLAS-pass winner extraction for exactly-one-hot input. "
            "sampler/transform/validity were Python-loop bound and vectorize fully."
        ),
    }

    if epoch:
        # End-to-end: one KiNETGAN epoch through the engine on the lab table.
        config = KiNETGANConfig(
            embedding_dim=16,
            generator_dims=(48,),
            discriminator_dims=(48,),
            epochs=1,
            batch_size=128,
            knowledge_negatives_per_batch=32,
            seed=0,
        )
        model = KiNETGAN(config)
        start = time.perf_counter()
        model.fit(table, catalog=bundle.catalog, condition_columns=bundle.condition_columns)
        document["metrics"]["kinetgan_epoch"] = {
            "seconds": round(time.perf_counter() - start, 3),
            "rows": table.n_rows,
            "batch_size": config.batch_size,
        }
    return document


def write_results(document: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def format_results(document: dict) -> str:
    lines = [f"[bench:dataplane] lab-IoT, {document['config']['rows']} rows"]
    for name, entry in document["metrics"].items():
        if "speedup" in entry:
            lines.append(
                f"  {name:22s} seed {entry['seed_rows_per_sec']:>12,} rows/s"
                f" -> {entry['vectorized_rows_per_sec']:>12,} rows/s"
                f"  ({entry['speedup']}x)"
            )
        else:
            lines.append(f"  {name:22s} {entry['seconds']} s")
    return "\n".join(lines)


def main() -> None:
    document = run_dataplane_bench()
    path = write_results(document)
    print(format_results(document))
    print(f"[bench:dataplane] wrote {path}")


if __name__ == "__main__":
    main()
