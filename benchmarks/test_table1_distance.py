"""Table I -- statistical distance between synthetic and original data.

Regenerates the paper's Table I: for every model and both datasets, the
Earth Mover's Distance and the mixed L1/L2 distance between the synthetic
and the real training data.  The reproduction target is the *ordering*:
KiNETGAN / CTGAN / TVAE tightest, OCTGAN / TABLEGAN / PATEGAN loosest.
"""

from __future__ import annotations

import pytest

from repro.fidelity import emd_distance, mixed_distance

from _harness import MODEL_ORDER, write_table


def _distance_rows(experiment) -> dict[str, tuple[float, float]]:
    train = experiment["train"]
    out: dict[str, tuple[float, float]] = {}
    for name in MODEL_ORDER:
        synthetic = experiment["synthetic"][name]
        out[name] = (emd_distance(train, synthetic), mixed_distance(train, synthetic))
    return out


@pytest.mark.benchmark(group="table1")
def test_table1_statistical_distance(benchmark, lab_experiment, unsw_experiment):
    def run():
        return (_distance_rows(lab_experiment), _distance_rows(unsw_experiment))

    lab, unsw = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in MODEL_ORDER:
        rows.append([
            name,
            f"{lab[name][0]:.3f}", f"{lab[name][1]:.3f}",
            f"{unsw[name][0]:.3f}", f"{unsw[name][1]:.3f}",
        ])
    write_table(
        "table1_distance",
        ["model", "lab EMD", "lab distance", "UNSW EMD", "UNSW distance"],
        rows,
        "Table I: distance between synthetic and original data (lower is better)",
    )

    # Shape checks: the paper reports KiNETGAN tied-best with CTGAN / TVAE,
    # so it must sit in the tight half of the field and not be looser than
    # that tight group.  (Our numpy OCTGAN / TableGAN re-implementations do
    # not reproduce those baselines' weakness on marginals, so the paper's
    # "KiNETGAN beats OCTGAN/TableGAN by an order of magnitude" gap is not a
    # meaningful target here; see EXPERIMENTS.md.)
    import numpy as np

    for dataset in (lab, unsw):
        baselines = [m for m in MODEL_ORDER if m not in ("INDEPENDENT", "KiNETGAN")]
        median_emd = float(np.median([dataset[m][0] for m in baselines]))
        tight_group = min(dataset["CTGAN"][0], dataset["TVAE"][0])
        assert dataset["KiNETGAN"][0] <= median_emd + 0.05
        assert dataset["KiNETGAN"][0] <= tight_group + 0.03
