"""Serving benchmarks: artifact sampling and request-batching throughput.

Measures the :mod:`repro.serve` layer end to end on a small lab-IoT
KiNETGAN: how fast a loaded artifact produces rows through the one-shot,
streamed, and micro-batched paths, how much request coalescing buys over
serving the same burst one request at a time, and how long artifact
save / load round-trips take.  Results land in ``BENCH_serving.json`` at
the repository root so future PRs have a trajectory to compare against.

Interpreting the numbers:

* ``sample_rows_per_sec`` -- single-request sampling throughput of a
  loaded artifact (generator forward + harden + decode).
* ``stream_rows_per_sec`` -- the same request streamed in bounded-memory
  chunks; the gap to one-shot is the per-chunk decode overhead.
* ``batched_requests`` -- a burst of concurrent requests served through
  ``SamplingService.sample_many`` (one coalesced generator / harden /
  decode pipeline) versus the same burst served request-by-request; the
  ``speedup`` is what micro-batching buys.
* ``artifact_round_trip`` -- ``save_model`` + ``load_model`` wall time.
* ``sample_rows_per_sec_float32`` -- the one-shot row again for a model
  trained, saved and reloaded at ``dtype="float32"`` (half-size weight
  files, dtype recorded in the manifest; see ``docs/precision.md``).
* ``latency_slo`` -- end-to-end request latency (p50/p99) of the HTTP
  front-end under a sustained multi-client burst: several client threads
  each firing seeded ``POST /sample`` requests back to back against a
  running :class:`~repro.serve.SamplingHTTPServer`.  This is the
  latency-SLO row the CI smoke gate checks; throughput alone hides queue
  buildup, the p99 is what an operator provisions against.

Run directly (``python -m benchmarks.bench_serving``) or through
``python -m benchmarks.run --suite serving``.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import KiNETGAN, KiNETGANConfig
from repro.datasets import load_lab_iot
from repro.serve import (
    SampleRequest,
    SamplingHTTPServer,
    SamplingService,
    ServingPool,
    load_model,
    request_samples,
    save_model,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

BENCH_ROWS = int(os.environ.get("REPRO_BENCH_SERVE_ROWS", "1500"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_SERVE_EPOCHS", "8"))
SAMPLE_ROWS = int(os.environ.get("REPRO_BENCH_SERVE_SAMPLE_ROWS", "20000"))
BURST_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "64"))
ROWS_PER_REQUEST = int(os.environ.get("REPRO_BENCH_SERVE_ROWS_PER_REQUEST", "64"))
HTTP_CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_HTTP_CLIENTS", "4"))
HTTP_REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_SERVE_HTTP_REQUESTS", "24"))


def _train_model(rows: int, epochs: int, dtype: str = "float64") -> KiNETGAN:
    bundle = load_lab_iot(n_records=rows, seed=0)
    config = KiNETGANConfig(
        embedding_dim=32,
        generator_dims=(64, 64),
        discriminator_dims=(64, 64),
        epochs=epochs,
        batch_size=128,
        seed=0,
        dtype=dtype,
    )
    model = KiNETGAN(config)
    model.fit(
        bundle.table,
        catalog=bundle.catalog,
        condition_columns=bundle.condition_columns,
    )
    return model


def _best_rate(measure, repeats: int = 3) -> tuple[float, float]:
    """(best rows/sec, best seconds) over ``repeats`` timed calls."""
    best_seconds = float("inf")
    rows = 0
    for _ in range(repeats):
        start = time.perf_counter()
        rows = measure()
        elapsed = time.perf_counter() - start
        best_seconds = min(best_seconds, elapsed)
    return rows / best_seconds, best_seconds


def measure_http_latency(
    artifact: Path,
    clients: int = HTTP_CLIENTS,
    requests_per_client: int = HTTP_REQUESTS_PER_CLIENT,
    rows_per_request: int = ROWS_PER_REQUEST,
) -> dict:
    """p50/p99 request latency of the HTTP front-end under a client burst.

    ``clients`` threads each fire ``requests_per_client`` seeded ``/sample``
    requests back to back against a thread-pool server on loopback; every
    request's end-to-end wall time (connect -> parsed table) is recorded.
    """
    import threading

    latencies: list[list[float]] = [[] for _ in range(clients)]
    with ServingPool({"bench": artifact}, executor="thread:2") as pool:
        with SamplingHTTPServer(
            pool, port=0, queue_depth=clients * requests_per_client
        ) as server:
            url = server.url

            def run_client(slot: int) -> None:
                for i in range(requests_per_client):
                    start = time.perf_counter()
                    request_samples(
                        url, "bench", rows_per_request, seed=slot * 10_000 + i
                    )
                    latencies[slot].append(time.perf_counter() - start)

            threads = [
                threading.Thread(target=run_client, args=(slot,)) for slot in range(clients)
            ]
            burst_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            burst_seconds = time.perf_counter() - burst_start
            rejected = server.stats.snapshot()["rejected"]
    flat = np.sort(np.concatenate([np.asarray(times) for times in latencies]))
    total = int(flat.size)
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "rows_per_request": rows_per_request,
        "requests": total,
        "p50_ms": round(float(np.percentile(flat, 50)) * 1000, 2),
        "p99_ms": round(float(np.percentile(flat, 99)) * 1000, 2),
        "max_ms": round(float(flat[-1]) * 1000, 2),
        "requests_per_sec": round(total / burst_seconds, 1),
        "rejected": int(rejected),
    }


def measure_float32_sampling(rows: int, epochs: int, sample_rows: int) -> dict:
    """One-shot sampling throughput of a float32 artifact vs the float64 row.

    Trains the same small KiNETGAN with ``dtype="float32"`` (see
    ``docs/precision.md``), round-trips it through ``save_model`` /
    ``load_model`` -- the manifest records the dtype, the loaded networks
    restore in it -- and times the same one-shot sampling path as
    ``sample_rows_per_sec``.  Also records the artifact's on-disk bytes:
    float32 weight files are half the float64 ones.
    """
    model = _train_model(rows, epochs, dtype="float32")
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-f32-") as tmp:
        artifact = Path(tmp) / "kinetgan-f32"
        written = save_model(model, artifact, metadata={"benchmark": "serving"})
        loaded = load_model(artifact)
        service = SamplingService(capacity=2)
        service.registry.put(artifact, loaded)
        rate, seconds = _best_rate(
            lambda: service.sample(artifact, sample_rows, seed=1).n_rows
        )
        return {
            "rows": sample_rows,
            "rows_per_sec": int(rate),
            "seconds": round(seconds, 4),
            "artifact_bytes": sum(p.stat().st_size for p in artifact.iterdir()),
            "manifest_dtype": written.dtype,
        }


def run_serving_bench(
    rows: int = BENCH_ROWS,
    epochs: int = BENCH_EPOCHS,
    sample_rows: int = SAMPLE_ROWS,
    burst_requests: int = BURST_REQUESTS,
    rows_per_request: int = ROWS_PER_REQUEST,
) -> dict:
    """Measure the serving layer and return the benchmark document."""
    model = _train_model(rows, epochs)
    metrics: dict[str, dict] = {}

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        artifact = Path(tmp) / "kinetgan"

        save_start = time.perf_counter()
        save_model(model, artifact, metadata={"benchmark": "serving"})
        save_seconds = time.perf_counter() - save_start
        load_start = time.perf_counter()
        loaded = load_model(artifact)
        load_seconds = time.perf_counter() - load_start
        metrics["artifact_round_trip"] = {
            "save_seconds": round(save_seconds, 4),
            "load_seconds": round(load_seconds, 4),
            "artifact_bytes": sum(p.stat().st_size for p in artifact.iterdir()),
        }

        service = SamplingService(capacity=2)
        service.registry.put(artifact, loaded)

        rate, seconds = _best_rate(
            lambda: service.sample(artifact, sample_rows, seed=1).n_rows
        )
        metrics["sample_rows_per_sec"] = {
            "rows": sample_rows,
            "rows_per_sec": int(rate),
            "seconds": round(seconds, 4),
        }

        def _stream() -> int:
            total = 0
            for chunk in service.sample_stream(artifact, sample_rows, seed=1, chunk_rows=1024):
                total += chunk.n_rows
            return total

        rate, seconds = _best_rate(_stream)
        metrics["stream_rows_per_sec"] = {
            "rows": sample_rows,
            "chunk_rows": 1024,
            "rows_per_sec": int(rate),
            "seconds": round(seconds, 4),
        }

        burst = [
            SampleRequest(str(artifact), n=rows_per_request, seed=i)
            for i in range(burst_requests)
        ]

        def _one_by_one() -> int:
            return sum(
                service.sample(request.artifact, request.n, seed=request.seed).n_rows
                for request in burst
            )

        def _batched() -> int:
            return sum(table.n_rows for table in service.sample_many(burst))

        serial_rate, serial_seconds = _best_rate(_one_by_one)
        batched_rate, batched_seconds = _best_rate(_batched)
        metrics["batched_requests"] = {
            "requests": burst_requests,
            "rows_per_request": rows_per_request,
            "serial_rows_per_sec": int(serial_rate),
            "batched_rows_per_sec": int(batched_rate),
            "serial_requests_per_sec": round(burst_requests / serial_seconds, 1),
            "batched_requests_per_sec": round(burst_requests / batched_seconds, 1),
            "speedup": round(batched_rate / serial_rate, 2),
        }

        metrics["latency_slo"] = measure_http_latency(artifact)

    metrics["sample_rows_per_sec_float32"] = measure_float32_sampling(
        rows, epochs, sample_rows
    )

    return {
        "benchmark": "serving",
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
        },
        "config": {
            "dataset": "lab_iot",
            "train_rows": rows,
            "train_epochs": epochs,
            "sample_rows": sample_rows,
            "burst_requests": burst_requests,
            "rows_per_request": rows_per_request,
        },
        "metrics": metrics,
        "notes": (
            "Single-model serving on one CPU core; rows/sec is dominated by "
            "the generator matmuls plus the batched harden/decode passes. "
            "batched_requests.speedup is the micro-batching win: one "
            "coalesced generator/harden/decode pipeline for the whole burst "
            "instead of per-request passes (per-request results stay "
            "bit-identical either way, see tests/serve). latency_slo is the "
            "HTTP front-end under a sustained multi-client burst (loopback, "
            "thread-pool workers, JSON wire format): p50 is the steady-state "
            "request cost, p99 the queueing tail an operator provisions "
            "against; the CI smoke gate fails if either regresses past its "
            "tolerance band."
        ),
    }


def write_results(document: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def format_results(document: dict) -> str:
    metrics = document["metrics"]
    round_trip = metrics["artifact_round_trip"]
    batched = metrics["batched_requests"]
    lines = [
        "[bench:serving] lab-IoT KiNETGAN artifact serving",
        f"  artifact_round_trip          save {round_trip['save_seconds']:.3f}s"
        f"  load {round_trip['load_seconds']:.3f}s"
        f"  ({round_trip['artifact_bytes']:,} bytes)",
        f"  sample_rows_per_sec          {metrics['sample_rows_per_sec']['rows_per_sec']:,}"
        f" rows/s ({metrics['sample_rows_per_sec']['rows']:,} rows one-shot)",
        f"  stream_rows_per_sec          {metrics['stream_rows_per_sec']['rows_per_sec']:,}"
        f" rows/s (chunks of {metrics['stream_rows_per_sec']['chunk_rows']})",
        f"  batched_requests             {batched['serial_rows_per_sec']:,} ->"
        f" {batched['batched_rows_per_sec']:,} rows/s"
        f"  ({batched['speedup']}x over per-request, "
        f"{batched['batched_requests_per_sec']} req/s)",
    ]
    slo = metrics.get("latency_slo")
    if slo:
        lines.append(
            f"  latency_slo (HTTP)           p50 {slo['p50_ms']}ms  p99 {slo['p99_ms']}ms"
            f"  ({slo['clients']} clients x {slo['requests_per_client']} reqs, "
            f"{slo['requests_per_sec']} req/s, {slo['rejected']} rejected)"
        )
    f32 = metrics.get("sample_rows_per_sec_float32")
    if f32:
        lines.append(
            f"  sample_rows_per_sec_float32  {f32['rows_per_sec']:,}"
            f" rows/s ({f32['rows']:,} rows one-shot,"
            f" {f32['artifact_bytes']:,} artifact bytes,"
            f" manifest dtype {f32['manifest_dtype']})"
        )
    return "\n".join(lines)


def main() -> None:
    document = run_serving_bench()
    path = write_results(document)
    print(format_results(document))
    print(f"[bench:serving] wrote {path}")


if __name__ == "__main__":
    main()
