"""Figure 4 -- NIDS accuracy on UNSW-NB15 (train-on-synthetic / test-on-real)."""

from __future__ import annotations

import pytest

from repro.nids import evaluate_utility

from _harness import MODEL_ORDER, write_table

_CLASSIFIERS = ("decision_tree", "random_forest", "logistic_regression", "naive_bayes")


@pytest.mark.benchmark(group="fig4")
def test_fig4_nids_accuracy_unsw(benchmark, unsw_experiment):
    def run():
        return evaluate_utility(
            unsw_experiment["train"],
            unsw_experiment["test"],
            {name: unsw_experiment["synthetic"][name] for name in MODEL_ORDER},
            unsw_experiment["bundle"].label_column,
            classifiers=_CLASSIFIERS,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    by_source = {result.source: result for result in results}

    rows = []
    for source in ["REAL"] + MODEL_ORDER:
        result = by_source[source]
        rows.append(
            [source]
            + [f"{result.per_classifier[c]['accuracy']:.3f}" for c in _CLASSIFIERS]
            + [f"{result.mean_accuracy:.3f}"]
        )
    write_table(
        "fig4_utility_unsw",
        ["training source", *_CLASSIFIERS, "mean"],
        rows,
        "Figure 4: NIDS accuracy on UNSW-NB15 (trained on synthetic, tested on real)",
    )

    real = by_source["REAL"].mean_accuracy
    kinetgan = by_source["KiNETGAN"].mean_accuracy
    assert real >= kinetgan - 0.05
    assert kinetgan >= min(by_source[m].mean_accuracy for m in MODEL_ORDER if m != "KiNETGAN")
