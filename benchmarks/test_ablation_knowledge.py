"""Ablation A1 -- the knowledge-guided discriminator D_KG on / off.

The defining claim of the paper is that querying the NetworkKG during
training makes the generator produce *valid* attribute combinations.  This
ablation trains KiNETGAN with and without D_KG (everything else identical)
and compares the constraint-violation rate of their synthetic output, plus
marginal fidelity to show validity is not bought by collapsing the data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import KiNETGAN
from repro.fidelity import emd_distance
from repro.knowledge import BatchValidator, KGReasoner, build_network_kg

from _harness import BENCH_EPOCHS, bench_config, write_table


@pytest.mark.benchmark(group="ablation")
def test_ablation_knowledge_discriminator(benchmark, lab_experiment):
    bundle = lab_experiment["bundle"]
    train = lab_experiment["train"]
    reasoner = KGReasoner(build_network_kg(bundle.catalog), field_map=bundle.catalog.field_map)
    validator = BatchValidator(reasoner)

    def run():
        epochs = int(BENCH_EPOCHS * 1.5)
        with_kg = lab_experiment["models"]["KiNETGAN"]  # already trained with D_KG
        without_kg = KiNETGAN(
            bench_config(seed=0, epochs=epochs).with_overrides(
                use_knowledge_discriminator=False, lambda_knowledge=0.0
            )
        )
        without_kg.fit(train, condition_columns=bundle.condition_columns)
        rng = np.random.default_rng(2)
        synthetic_with = with_kg.sample(800, rng=rng)
        synthetic_without = without_kg.sample(800, rng=rng)
        return {
            "with": (
                validator.report(synthetic_with).validity_rate,
                emd_distance(train, synthetic_with),
            ),
            "without": (
                validator.report(synthetic_without).validity_rate,
                emd_distance(train, synthetic_without),
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    write_table(
        "ablation_knowledge",
        ["variant", "KG validity rate", "EMD"],
        [
            ["KiNETGAN (with D_KG)", f"{results['with'][0]:.3f}", f"{results['with'][1]:.3f}"],
            ["KiNETGAN w/o D_KG", f"{results['without'][0]:.3f}", f"{results['without'][1]:.3f}"],
        ],
        "Ablation A1: effect of the knowledge-guided discriminator",
    )

    # The knowledge-guided discriminator should cut the constraint-violation
    # rate substantially (on clean simulated data a well-trained conditional
    # GAN already gets most combinations right, so the fair comparison is the
    # ratio of violation rates, not absolute percentage points).  A small
    # absolute allowance keeps the check meaningful yet stable at the short
    # training budgets CI uses.
    violation_with = 1.0 - results["with"][0]
    violation_without = 1.0 - results["without"][0]
    assert violation_with <= 0.6 * violation_without + 0.03, (
        "the knowledge-guided discriminator should substantially cut the "
        f"constraint-violation rate (with={violation_with:.3f}, "
        f"without={violation_without:.3f})"
    )
