"""Benchmark-tier checks for the parallel runtime.

Runs a reduced version of :mod:`benchmarks.bench_runtime` and checks the
*structure* and the machine-independent invariants:

* the round-throughput sweep produces serial, process and thread numbers
  for every requested client count;
* the latency-overlap probe (blocked work units) actually overlaps -- this
  holds on any machine, single-core included, because sleeping workers
  consume no CPU;
* the transport-bytes probe shows the resident transport shipping orders
  of magnitude fewer bytes per round than the legacy payload transport --
  deterministic on any machine.

Absolute CPU-bound speedups are hardware-bound (cores), so like the rest of
the benchmark suite they are printed rather than asserted; run with ``-s``
to see them.
"""

from __future__ import annotations

from benchmarks.bench_runtime import format_results, run_runtime_bench


def test_runtime_bench_document_structure_and_overlap():
    document = run_runtime_bench(client_counts=(2,), rounds=1)
    print()
    print(format_results(document))

    metrics = document["metrics"]
    entry = metrics["federated_round_2clients"]
    assert entry["serial_rounds_per_sec"] > 0
    assert entry["process_rounds_per_sec"] > 0
    assert entry["thread_rounds_per_sec"] > 0
    assert entry["workers"] >= 2
    assert entry["cpu_count"] >= 1
    assert "transport" in entry

    overlap = metrics["latency_overlap"]
    # Eight 50 ms blocked tasks over eight workers: even with generous
    # scheduling slack the pool must clearly beat the 400 ms serial floor.
    assert overlap["speedup"] > 1.3

    transport = metrics["transport_bytes_per_round"]
    # The copy elimination is structural, not timing-bound: a resident
    # round must ship at least 10x fewer bytes than a payload round.
    assert transport["resident_delta_bytes_per_round"] > 0
    assert transport["reduction"] >= 10
    assert transport["cpu_count"] >= 1

    assert document["machine"]["cpus"] >= 1
    assert document["config"]["client_counts"] == [2]
