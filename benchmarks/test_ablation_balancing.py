"""Ablation A2 -- conditional balancing (training-by-sampling) on / off.

Section III-A-3 argues that uniformly boosting minority attribute values
during condition sampling is what lets the generator cover rare attack
classes.  This ablation trains the conditional generator with and without
the uniform boost and compares minority-class coverage of the synthetic
data and the macro-F1 of a detector trained on it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import KiNETGAN
from repro.nids import TabularFeaturizer, f1_score, make_classifier

from _harness import BENCH_EPOCHS, bench_config, write_table

_MINORITY_LABELS = ("exploit", "port_scan")


def _minority_share(table) -> float:
    distribution = table.class_distribution("label")
    return float(sum(distribution.get(label, 0.0) for label in _MINORITY_LABELS))


def _detector_macro_f1(synthetic, test) -> float:
    featurizer = TabularFeaturizer("label").fit(synthetic)
    X_train, y_train = featurizer.transform(synthetic)
    X_test, y_test = featurizer.transform(test)
    model = make_classifier("decision_tree", seed=0)
    model.fit(X_train, y_train)
    return f1_score(y_test, model.predict(X_test))


@pytest.mark.benchmark(group="ablation")
def test_ablation_conditional_balancing(benchmark, lab_experiment):
    bundle = lab_experiment["bundle"]
    train = lab_experiment["train"]
    test = lab_experiment["test"]

    def run():
        epochs = int(BENCH_EPOCHS * 1.5)
        balanced = lab_experiment["models"]["KiNETGAN"]  # uniform_probability=0.3
        unbalanced = KiNETGAN(
            bench_config(seed=0, epochs=epochs).with_overrides(uniform_probability=0.0)
        )
        unbalanced.fit(train, catalog=bundle.catalog,
                       condition_columns=bundle.condition_columns)
        rng = np.random.default_rng(3)
        synthetic_balanced = balanced.sample(800, rng=rng)
        synthetic_unbalanced = unbalanced.sample(800, rng=rng)
        return {
            "balanced": (
                _minority_share(synthetic_balanced),
                _detector_macro_f1(synthetic_balanced, test),
            ),
            "unbalanced": (
                _minority_share(synthetic_unbalanced),
                _detector_macro_f1(synthetic_unbalanced, test),
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    real_share = _minority_share(train)

    write_table(
        "ablation_balancing",
        ["variant", "minority-class share", "detector macro-F1"],
        [
            ["real data", f"{real_share:.3f}", "-"],
            ["with uniform boosting", f"{results['balanced'][0]:.3f}",
             f"{results['balanced'][1]:.3f}"],
            ["without boosting", f"{results['unbalanced'][0]:.3f}",
             f"{results['unbalanced'][1]:.3f}"],
        ],
        "Ablation A2: effect of training-by-sampling with uniform minority boosting",
    )

    # Both variants must at least generate some minority traffic; the
    # balanced variant should not cover minority classes worse than the
    # unbalanced one.
    assert results["balanced"][0] > 0.0
    assert results["balanced"][0] >= results["unbalanced"][0] - 0.02
