"""Experiment A4 -- federated detector training (the paper's future-work path).

Instead of sharing synthetic rows (experiment A3), the devices jointly train
one neural intrusion detector by federated averaging; only model weights move.
The bench reports accuracy and macro-F1 of

* local-only detectors (each device trains alone on its skewed slice),
* the FedAvg global detector,
* the same with client-level DP-FedAvg (clipping + Gaussian noise, with the
  spent (epsilon, delta) budget),
* the centralised upper bound trained on pooled raw data.
"""

from __future__ import annotations

import pytest

from repro.federated import DPFedAvgConfig, FederatedNIDSSimulation

from _harness import BENCH_EPOCHS, write_table


@pytest.mark.benchmark(group="federated")
def test_federated_nids_detector(benchmark, lab_bundle):
    num_rounds = max(6, BENCH_EPOCHS // 2)

    def run():
        simulation = FederatedNIDSSimulation(
            lab_bundle,
            num_clients=3,
            skew=0.6,
            hidden_dims=(32,),
            num_rounds=num_rounds,
            local_epochs=2,
            learning_rate=0.1,
            dp_config=DPFedAvgConfig(clip_norm=2.0, noise_multiplier=0.6, delta=1e-5),
            seed=3,
        )
        return simulation.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["local only (no sharing)", f"{result.local_only:.3f}", f"{result.local_only_f1:.3f}", "-"],
        ["federated (FedAvg)", f"{result.federated:.3f}", f"{result.federated_f1:.3f}", "-"],
        [
            "federated + DP",
            f"{result.federated_dp:.3f}",
            f"{result.federated_dp_f1:.3f}",
            f"eps={result.epsilon:.2f}",
        ],
        ["centralised raw data", f"{result.centralised:.3f}", f"{result.centralised_f1:.3f}", "-"],
    ]
    write_table(
        "federated_nids",
        ["strategy", "accuracy", "macro-F1", "privacy"],
        rows,
        "Experiment A4: federated detector training across devices",
    )

    # Weight sharing should not be worse than isolated training, and the DP
    # variant must stay a valid probability while spending a finite budget.
    assert result.federated_f1 >= result.local_only_f1 - 0.05
    assert result.federated <= result.centralised + 0.05
    assert result.epsilon is not None and result.epsilon > 0.0
    assert 0.0 <= result.federated_dp <= 1.0
