"""Figure 3 -- NIDS accuracy on the lab-collected dataset.

Train-on-synthetic / test-on-real utility: classifiers trained on each
model's synthetic data are scored on held-out real traffic and compared with
the real-data baseline.  The reproduction target is the ordering reported in
the paper: KiNETGAN close to the real baseline and above CTGAN / TABLEGAN /
OCTGAN.
"""

from __future__ import annotations

import pytest

from repro.nids import evaluate_utility

from _harness import MODEL_ORDER, write_table

#: The event-type annotation is the semantic parent of the label; a deployed
#: NIDS would not observe it, so it is excluded from the classifier features.
_DROP = ["event_type"]
_CLASSIFIERS = ("decision_tree", "random_forest", "logistic_regression", "naive_bayes")


@pytest.mark.benchmark(group="fig3")
def test_fig3_nids_accuracy_lab(benchmark, lab_experiment):
    def run():
        train = lab_experiment["train"].drop_columns(_DROP)
        test = lab_experiment["test"].drop_columns(_DROP)
        synthetic = {
            name: lab_experiment["synthetic"][name].drop_columns(_DROP)
            for name in MODEL_ORDER
        }
        return evaluate_utility(
            train, test, synthetic, lab_experiment["bundle"].label_column,
            classifiers=_CLASSIFIERS,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    by_source = {result.source: result for result in results}

    rows = []
    for source in ["REAL"] + MODEL_ORDER:
        result = by_source[source]
        rows.append(
            [source]
            + [f"{result.per_classifier[c]['accuracy']:.3f}" for c in _CLASSIFIERS]
            + [f"{result.mean_accuracy:.3f}"]
        )
    write_table(
        "fig3_utility_lab",
        ["training source", *_CLASSIFIERS, "mean"],
        rows,
        "Figure 3: NIDS accuracy on lab-collected data (trained on synthetic, tested on real)",
    )

    real = by_source["REAL"].mean_accuracy
    kinetgan = by_source["KiNETGAN"].mean_accuracy
    assert real >= kinetgan - 0.05, "real baseline should be at least as good as synthetic"
    # KiNETGAN stays within a reasonable gap of the real baseline and beats
    # the weakest baselines, as in the paper.
    assert kinetgan > real - 0.35
    assert kinetgan >= min(by_source[m].mean_accuracy for m in MODEL_ORDER if m != "KiNETGAN")
