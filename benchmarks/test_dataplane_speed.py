"""Pytest wrapper around the data-plane micro-benchmarks.

Rides with the (slow, bench) suite: runs the measurements from
:mod:`benchmarks.bench_dataplane` on a reduced row count, asserts the
vectorized paths stay ahead of the seed replicas on the hot metrics, and
prints the table (run with ``-s`` to see it).  The committed
``BENCH_dataplane.json`` trajectory is refreshed by
``python -m benchmarks.run``, not by this test.
"""

from __future__ import annotations

from bench_dataplane import format_results, run_dataplane_bench


def test_dataplane_vectorized_paths_beat_seed():
    document = run_dataplane_bench(rows=1000, epoch=False)
    print("\n" + format_results(document))
    metrics = document["metrics"]
    # The wins this PR is about: batched condition sampling and encoding.
    # Sampling must clear the 10x acceptance bar with margin even on noisy CI.
    assert metrics["sampler_sample"]["speedup"] > 10.0
    assert metrics["transform"]["speedup"] > 5.0
    assert metrics["validity_rate"]["speedup"] > 1.5
    # The full inverse path is argmax-bound (the seed already ran that part
    # in numpy; see the notes field of BENCH_dataplane.json), so the total
    # only needs to stay ahead of the seed -- the decode stage this PR
    # vectorized is asserted separately below.
    assert metrics["inverse_transform"]["speedup"] > 1.0
    assert metrics["onehot_decode"]["speedup"] > 5.0
