"""Figure 6 -- attribute-inference attack accuracy.

The attacker trains on each model's synthetic release to predict the
sensitive traffic label of real records from flow-level quasi-identifiers.
Reproduction target: KiNETGAN's attack accuracy is no higher than the
leakiest baselines (it does not make inference easier), while remaining
above the majority-class floor (the data is still useful).
"""

from __future__ import annotations

import pytest

from repro.privacy import AttributeInferenceAttack

from _harness import MODEL_ORDER, write_table

#: Quasi-identifiers exclude the event annotation and the ports that define
#: the attacks outright, so the inference task is non-trivial.
_QUASI = ["protocol", "src_ip", "dst_ip", "packet_count", "byte_count", "duration_ms"]


@pytest.mark.benchmark(group="fig6")
def test_fig6_attribute_inference(benchmark, lab_experiment):
    def run():
        test = lab_experiment["test"]
        out: dict[str, tuple[float, float]] = {}
        for name in MODEL_ORDER:
            attack = AttributeInferenceAttack(
                sensitive_column="label", quasi_identifiers=_QUASI,
                classifier="decision_tree", seed=6,
            )
            result = attack.run(test, lab_experiment["synthetic"][name])
            out[name] = (result.attack_accuracy, result.majority_baseline)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name, f"{results[name][0]:.3f}", f"{results[name][1]:.3f}",
         f"{results[name][0] - results[name][1]:+.3f}"]
        for name in MODEL_ORDER
    ]
    write_table(
        "fig6_attribute_inference",
        ["model", "attack accuracy", "majority baseline", "advantage"],
        rows,
        "Figure 6: attribute-inference attack accuracy (lower advantage is better)",
    )

    worst_baseline = max(results[m][0] for m in MODEL_ORDER if m != "KiNETGAN")
    assert results["KiNETGAN"][0] <= worst_baseline + 0.05
    for name in MODEL_ORDER:
        assert 0.0 <= results[name][0] <= 1.0
