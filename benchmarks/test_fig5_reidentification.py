"""Figure 5 -- re-identification attack at 30/60/90 % attacker overlap.

For every model, the linkage attack is run against its synthetic release of
the lab dataset with increasing attacker background knowledge.  The
reproduction targets are (a) attack accuracy grows with overlap for every
model and (b) KiNETGAN's accuracy stays at or below the baselines' (it leaks
no more than they do).
"""

from __future__ import annotations

import pytest

from repro.privacy import ReidentificationAttack

from _harness import MODEL_ORDER, write_table

_OVERLAPS = (0.3, 0.6, 0.9)
#: Quasi-identifiers available to the attacker (flow-level observables).
_QUASI = ["protocol", "src_ip", "dst_ip", "dst_port", "src_port", "byte_count"]


@pytest.mark.benchmark(group="fig5")
def test_fig5_reidentification(benchmark, lab_experiment):
    def run():
        train = lab_experiment["train"]
        results: dict[str, list[float]] = {}
        for name in MODEL_ORDER:
            attack = ReidentificationAttack(
                sensitive_column="label", quasi_identifiers=_QUASI, seed=5, max_targets=300,
            )
            sweep = attack.run_sweep(train, lab_experiment["synthetic"][name], _OVERLAPS)
            results[name] = [result.attack_accuracy for result in sweep]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name] + [f"{acc:.3f}" for acc in results[name]]
        for name in MODEL_ORDER
    ]
    write_table(
        "fig5_reidentification",
        ["model", "30% overlap", "60% overlap", "90% overlap"],
        rows,
        "Figure 5: re-identification attack accuracy vs attacker overlap (lower is better)",
    )

    for name in MODEL_ORDER:
        accuracies = results[name]
        assert accuracies[0] <= accuracies[1] <= accuracies[2], name
    # KiNETGAN leaks no more than the leakiest baseline at every overlap.
    for i in range(len(_OVERLAPS)):
        worst_baseline = max(results[m][i] for m in MODEL_ORDER if m != "KiNETGAN")
        assert results["KiNETGAN"][i] <= worst_baseline + 0.05
