"""Benchmark suite for the paper reproduction.

``pytest benchmarks`` regenerates the paper's tables and figures (all marked
``slow`` + ``bench``); ``python -m benchmarks.run`` runs the data-plane
micro-benchmarks and refreshes ``BENCH_*.json`` perf-trajectory files at the
repository root.
"""
