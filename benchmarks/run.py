"""Benchmark runner: ``python -m benchmarks.run [--json] [--suite ...]``.

Runs the benchmark suites and refreshes the ``BENCH_*.json`` perf-trajectory
files at the repository root.  With ``--json`` the full document is printed
to stdout (for CI consumption); otherwise a readable summary is shown.
Either way the JSON files are (re)written unless ``--no-write`` is given.

``--smoke`` is the CI regression gate: it re-measures the data plane with
short timing windows, compares against the committed
``BENCH_dataplane.json``, and exits non-zero if any metric regressed by more
than ``--tolerance`` (default 30%).  Absolute rows/sec are machine-bound, so
the comparison uses each metric's *speedup* -- the vectorized path's
throughput normalised by the in-file seed replica measured on the same
runner -- plus the floor that vectorized must never fall behind the seed
replica.  Smoke mode never rewrites the trajectory files.
"""

from __future__ import annotations

import argparse
import json
import sys

from benchmarks.bench_dataplane import (
    BENCH_ROWS,
    RESULT_PATH,
    format_results,
    run_dataplane_bench,
    write_results,
)
from benchmarks import bench_runtime, bench_serving

SMOKE_MIN_SECONDS = 0.25
SMOKE_RETRY_MIN_SECONDS = 1.0


def _evaluate_smoke(
    baseline_metrics: dict, current_metrics: dict, tolerance: float
) -> tuple[list[dict], list[str]]:
    """Per-metric comparison rows plus the list of failures."""
    rows: list[dict] = []
    failures: list[str] = []
    for name, entry in baseline_metrics.items():
        if "speedup" not in entry:
            continue
        measured = current_metrics.get(name)
        if measured is None:
            failures.append(f"{name}: metric missing from the smoke run")
            continue
        floor = max(entry["speedup"] * (1.0 - tolerance), 1.0)
        ok = measured["speedup"] >= floor
        rows.append(
            {
                "metric": name,
                "baseline_speedup": entry["speedup"],
                "measured_speedup": measured["speedup"],
                "measured_rows_per_sec": measured["vectorized_rows_per_sec"],
                "floor": round(floor, 2),
                "status": "ok" if ok else "REGRESSED",
            }
        )
        if not ok:
            failures.append(
                f"{name}: speedup {measured['speedup']}x < allowed floor "
                f"{floor:.2f}x (baseline {entry['speedup']}x)"
            )
    return rows, failures


def _run_smoke(tolerance: float, as_json: bool = False) -> int:
    """Re-measure the data plane and gate on the committed trajectory.

    Timing noise, not regressions, is the dominant failure mode of short
    windows on shared runners, so a metric only fails the gate if it stays
    below its floor in a second pass with 4x longer windows (per-metric
    best-of-both is compared).
    """
    if not RESULT_PATH.exists():
        print(f"[bench:smoke] no baseline at {RESULT_PATH}; run the full bench first")
        return 2
    baseline = json.loads(RESULT_PATH.read_text())
    rows = int(baseline.get("config", {}).get("rows", BENCH_ROWS))
    current = run_dataplane_bench(rows=rows, epoch=False, min_seconds=SMOKE_MIN_SECONDS)
    metrics = dict(current["metrics"])
    comparison, failures = _evaluate_smoke(baseline["metrics"], metrics, tolerance)

    retried = False
    if failures:
        retried = True
        retry = run_dataplane_bench(
            rows=rows, epoch=False, min_seconds=SMOKE_RETRY_MIN_SECONDS
        )
        for name, entry in retry["metrics"].items():
            best = metrics.get(name)
            if best is None or entry.get("speedup", 0) > best.get("speedup", 0):
                metrics[name] = entry
        comparison, failures = _evaluate_smoke(baseline["metrics"], metrics, tolerance)

    document = {
        "benchmark": "dataplane-smoke",
        "rows": rows,
        "tolerance": tolerance,
        "retried": retried,
        "comparison": comparison,
        "failures": failures,
        "ok": not failures,
    }
    if as_json:
        json.dump(document, sys.stdout, indent=2)
        print()
    else:
        print(f"[bench:smoke] lab-IoT, {rows} rows, tolerance {tolerance:.0%} on speedup")
        for row in comparison:
            print(
                f"  {row['metric']:22s} baseline {row['baseline_speedup']:>7.2f}x"
                f"  now {row['measured_speedup']:>7.2f}x"
                f"  ({row['measured_rows_per_sec']:,} rows/s)  {row['status']}"
            )
        if failures:
            print("[bench:smoke] FAILED (after retry with longer windows):")
            for failure in failures:
                print(f"  - {failure}")
        else:
            print("[bench:smoke] ok - no data-plane metric regressed beyond tolerance")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.run", description=__doc__
    )
    parser.add_argument("--json", action="store_true",
                        help="print the full benchmark document(s) as JSON")
    parser.add_argument("--suite", choices=("dataplane", "runtime", "serving", "all"),
                        default="dataplane",
                        help="which benchmark suite to run (default %(default)s)")
    parser.add_argument("--rows", type=int, default=BENCH_ROWS,
                        help="lab-IoT rows to benchmark on (default %(default)s)")
    parser.add_argument("--no-epoch", action="store_true",
                        help="skip the end-to-end KiNETGAN epoch measurement")
    parser.add_argument("--no-write", action="store_true",
                        help="do not rewrite the BENCH_*.json trajectory files")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: quick re-measure vs the committed "
                             "BENCH_dataplane.json; never writes")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional speedup regression in smoke "
                             "mode (default %(default)s)")
    args = parser.parse_args(argv)

    if args.smoke:
        return _run_smoke(args.tolerance, as_json=args.json)

    documents: dict[str, dict] = {}
    if args.suite in ("dataplane", "all"):
        document = run_dataplane_bench(rows=args.rows, epoch=not args.no_epoch)
        documents["dataplane"] = document
        if not args.no_write:
            write_results(document)
    if args.suite in ("runtime", "all"):
        document = bench_runtime.run_runtime_bench()
        documents["runtime"] = document
        if not args.no_write:
            bench_runtime.write_results(document)
    if args.suite in ("serving", "all"):
        document = bench_serving.run_serving_bench()
        documents["serving"] = document
        if not args.no_write:
            bench_serving.write_results(document)

    if args.json:
        payload = documents if len(documents) > 1 else next(iter(documents.values()))
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        for name, document in documents.items():
            if name == "dataplane":
                print(format_results(document))
                if not args.no_write:
                    print(f"[bench:dataplane] wrote {RESULT_PATH}")
            elif name == "runtime":
                print(bench_runtime.format_results(document))
                if not args.no_write:
                    print(f"[bench:runtime] wrote {bench_runtime.RESULT_PATH}")
            else:
                print(bench_serving.format_results(document))
                if not args.no_write:
                    print(f"[bench:serving] wrote {bench_serving.RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
