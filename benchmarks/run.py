"""Benchmark runner: ``python -m benchmarks.run [--json] [--rows N]``.

Runs the data-plane micro-benchmarks and refreshes the ``BENCH_*.json``
perf-trajectory files at the repository root.  With ``--json`` the full
document is printed to stdout (for CI consumption); otherwise a readable
summary is shown.  Either way the JSON file is (re)written unless
``--no-write`` is given.
"""

from __future__ import annotations

import argparse
import json
import sys

from benchmarks.bench_dataplane import (
    BENCH_ROWS,
    RESULT_PATH,
    format_results,
    run_dataplane_bench,
    write_results,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.run", description=__doc__
    )
    parser.add_argument("--json", action="store_true",
                        help="print the full benchmark document as JSON")
    parser.add_argument("--rows", type=int, default=BENCH_ROWS,
                        help="lab-IoT rows to benchmark on (default %(default)s)")
    parser.add_argument("--no-epoch", action="store_true",
                        help="skip the end-to-end KiNETGAN epoch measurement")
    parser.add_argument("--no-write", action="store_true",
                        help=f"do not rewrite {RESULT_PATH.name}")
    args = parser.parse_args(argv)

    document = run_dataplane_bench(rows=args.rows, epoch=not args.no_epoch)
    if not args.no_write:
        write_results(document)
    if args.json:
        json.dump(document, sys.stdout, indent=2)
        print()
    else:
        print(format_results(document))
        if not args.no_write:
            print(f"[bench:dataplane] wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
