"""Benchmark runner: ``python -m benchmarks.run [--json] [--suite ...]``.

Runs the benchmark suites and refreshes the ``BENCH_*.json`` perf-trajectory
files at the repository root.  With ``--json`` the full document is printed
to stdout (for CI consumption); otherwise a readable summary is shown.
Either way the JSON files are (re)written unless ``--no-write`` is given.

``--smoke`` is the CI regression gate: it re-measures the data plane with
short timing windows, compares against the committed
``BENCH_dataplane.json``, and exits non-zero if any metric regressed by more
than ``--tolerance`` (default 30%).  Absolute rows/sec are machine-bound, so
the comparison uses each metric's *speedup* -- the vectorized path's
throughput normalised by the in-file seed replica measured on the same
runner -- plus the floor that vectorized must never fall behind the seed
replica.  The gate also re-checks the runtime trajectory
(``BENCH_runtime.json``): the transport-bytes and latency-overlap probes are
core-count independent and always compared, while the CPU-bound round
throughput entries are *skipped* whenever the runner's usable core count
differs from the one recorded in the committed entry (a 1-core container
and a multi-core CI runner legitimately disagree about pool speedups).
The training trajectory (``BENCH_training.json``) is gated the same way:
the arena-runtime epoch speedup over the in-process seed replica (with a
longer-window retry), the deterministic network-core allocation ratio, and
the mixed-precision rows -- the committed float32 epoch-or-step-latency
speedup must hold >= 1.2x and re-measure within tolerance, and the float32
allocation ratio is re-checked alongside.
The fault-tolerance trajectory (``BENCH_faults.json``) gates its seeded
entries *exactly* -- round-completion bookkeeping and replay determinism
are pure functions of the seeds -- and its recovery-latency probes with a
tolerance band plus an absolute slack.  The serving trajectory
(``BENCH_serving.json``) gates its HTTP latency-SLO row the same way:
p50/p99 under the committed multi-client burst shape must stay under a
tolerance-plus-slack ceiling and the admission queue must absorb the burst
without rejections.  The observability trajectory (``BENCH_obs.json``)
gates the disabled-path span overhead bound (re-measured, must stay under
1% of a KiNETGAN epoch), the bit-identical-history guarantee under
instrumentation, and checks the committed instrumented HTTP latency
against the committed serving SLO ceilings.  Smoke mode never rewrites
the trajectory files.
"""

from __future__ import annotations

import argparse
import json
import sys

from benchmarks.bench_dataplane import (
    BENCH_ROWS,
    RESULT_PATH,
    format_results,
    run_dataplane_bench,
    write_results,
)
from benchmarks import bench_faults, bench_obs, bench_runtime, bench_serving, bench_training
from repro.runtime import default_worker_count

SMOKE_MIN_SECONDS = 0.25
SMOKE_RETRY_MIN_SECONDS = 1.0

#: Absolute slack (seconds) on the recovery-latency gate: pool respawn and
#: deadline abandonment are interpreter-spawn / scheduler bound, so a pure
#: ratio band is too twitchy on shared runners.
FAULT_LATENCY_SLACK_SECONDS = 1.0

#: Absolute slack (milliseconds) on the HTTP latency-SLO gate, added on top
#: of the tolerance band: loopback HTTP latency on a shared runner carries
#: scheduler jitter that a pure ratio ceiling would turn into flakes.
SERVING_P50_SLACK_MS = 250.0
SERVING_P99_SLACK_MS = 500.0

#: The smoke pass serves a smaller model than the committed trajectory
#: (fewer training rows/epochs keep the gate fast); request latency only
#: gets easier with the smaller generator, so the committed ceiling stays a
#: valid upper bound.
SERVING_SMOKE_ROWS = 600
SERVING_SMOKE_EPOCHS = 2

#: The observability smoke gate re-measures the disabled-path overhead
#: bound on a small training run; the bound is a ratio of nanoseconds to
#: an epoch measured in milliseconds, so the small model is ample.
OBS_SMOKE_ROWS = 400
OBS_SMOKE_EPOCHS = 2
OBS_OVERHEAD_CEILING_PCT = 1.0


def _evaluate_smoke(
    baseline_metrics: dict, current_metrics: dict, tolerance: float
) -> tuple[list[dict], list[str]]:
    """Per-metric comparison rows plus the list of failures."""
    rows: list[dict] = []
    failures: list[str] = []
    for name, entry in baseline_metrics.items():
        if "speedup" not in entry:
            continue
        measured = current_metrics.get(name)
        if measured is None:
            failures.append(f"{name}: metric missing from the smoke run")
            continue
        floor = max(entry["speedup"] * (1.0 - tolerance), 1.0)
        ok = measured["speedup"] >= floor
        rows.append(
            {
                "metric": name,
                "baseline_speedup": entry["speedup"],
                "measured_speedup": measured["speedup"],
                "measured_rows_per_sec": measured["vectorized_rows_per_sec"],
                "floor": round(floor, 2),
                "status": "ok" if ok else "REGRESSED",
            }
        )
        if not ok:
            failures.append(
                f"{name}: speedup {measured['speedup']}x < allowed floor "
                f"{floor:.2f}x (baseline {entry['speedup']}x)"
            )
    return rows, failures


def _smoke_runtime(tolerance: float) -> tuple[list[dict], list[str]]:
    """Re-check the runtime trajectory; core-count-sensitive entries may skip.

    Always compared (deterministic / core-count independent):

    * ``transport_bytes_per_round`` -- the resident transport must still
      beat the payload transport, and its byte reduction must stay within
      tolerance of the committed one;
    * ``transport_bytes_float32`` -- a float32 federated round must keep
      mapping ~half the shared-memory parameter bytes of a float64 one
      (buffer sizes are a pure function of the model dtype, so the floor
      never goes below 1.5x);
    * ``latency_overlap`` -- scheduling overlap of blocked work units
      (re-measured twice on failure, like the data-plane gate).

    Skipped with a visible row when the runner's usable core count differs
    from the committed entry's ``cpu_count``: the ``federated_round_*``
    process-pool speedups, which are meaningless to compare across core
    counts.
    """
    if not bench_runtime.RESULT_PATH.exists():
        return [], [f"no runtime baseline at {bench_runtime.RESULT_PATH}"]
    baseline = json.loads(bench_runtime.RESULT_PATH.read_text())["metrics"]
    cores = default_worker_count()
    rows: list[dict] = []
    failures: list[str] = []

    entry = baseline.get("transport_bytes_per_round")
    if entry is not None:
        measured = bench_runtime.measure_transport_bytes(rounds=1)
        floor = max(entry["reduction"] * (1.0 - tolerance), 1.0)
        ok = (
            measured["resident_delta_bytes_per_round"]
            < measured["legacy_payload_bytes_per_round"]
            and measured["reduction"] >= floor
        )
        rows.append(
            {
                "metric": "transport_bytes_per_round",
                "baseline_reduction": entry["reduction"],
                "measured_reduction": measured["reduction"],
                "floor": round(floor, 2),
                "status": "ok" if ok else "REGRESSED",
            }
        )
        if not ok:
            failures.append(
                f"transport_bytes_per_round: reduction {measured['reduction']}x < "
                f"allowed floor {floor:.2f}x (baseline {entry['reduction']}x)"
            )

    entry = baseline.get("transport_bytes_float32")
    if entry is not None:
        measured = bench_runtime.measure_dtype_transport(rounds=1)
        floor = max(entry["reduction"] * (1.0 - tolerance), 1.5)
        ok = measured["reduction"] >= floor
        rows.append(
            {
                "metric": "transport_bytes_float32",
                "baseline_reduction": entry["reduction"],
                "measured_reduction": measured["reduction"],
                "floor": round(floor, 2),
                "status": "ok" if ok else "REGRESSED",
            }
        )
        if not ok:
            failures.append(
                f"transport_bytes_float32: reduction {measured['reduction']}x < "
                f"allowed floor {floor:.2f}x (baseline {entry['reduction']}x)"
            )

    entry = baseline.get("latency_overlap")
    if entry is not None:
        floor = max(entry["speedup"] * (1.0 - tolerance), 1.0)
        best = 0.0
        for _attempt in range(2):
            best = max(best, bench_runtime.measure_latency_overlap()["speedup"])
            if best >= floor:
                break
        rows.append(
            {
                "metric": "latency_overlap",
                "baseline_speedup": entry["speedup"],
                "measured_speedup": best,
                "floor": round(floor, 2),
                "status": "ok" if best >= floor else "REGRESSED",
            }
        )
        if best < floor:
            failures.append(
                f"latency_overlap: speedup {best}x < allowed floor {floor:.2f}x "
                f"(baseline {entry['speedup']}x)"
            )

    for name, entry in baseline.items():
        if not name.startswith("federated_round"):
            continue
        recorded_cores = entry.get("cpu_count")
        if recorded_cores != cores:
            rows.append(
                {
                    "metric": name,
                    "status": "skipped",
                    "reason": f"recorded on {recorded_cores} cpus, runner has {cores}",
                }
            )
            continue
        n_clients = int(name.removeprefix("federated_round_").removesuffix("clients"))
        floor = entry["speedup"] * (1.0 - tolerance)
        best = 0.0
        for _attempt in range(2):
            measured = bench_runtime.measure_round_throughput((n_clients,), rounds=2)[name]
            best = max(best, measured["speedup"])
            if best >= floor:
                break
        rows.append(
            {
                "metric": name,
                "baseline_speedup": entry["speedup"],
                "measured_speedup": best,
                "floor": round(floor, 2),
                "status": "ok" if best >= floor else "REGRESSED",
            }
        )
        if best < floor:
            failures.append(
                f"{name}: process speedup {best}x < allowed floor {floor:.2f}x "
                f"(baseline {entry['speedup']}x)"
            )
    return rows, failures


def _smoke_training(tolerance: float) -> tuple[list[dict], list[str]]:
    """Re-check the training trajectory (``BENCH_training.json``).

    Two gates:

    * ``kinetgan_epoch`` -- the arena-runtime epoch speedup over the
      in-process seed replica, re-measured with short interleaved windows;
      like the data-plane gate it only fails after a second pass with the
      full windows (best-of-both compared against the floor).
    * ``step_allocations`` -- the network-core tracemalloc peak ratio,
      which is deterministic and therefore compared in a single pass.
    * ``float32_*`` -- the mixed-precision rows: the committed trajectory
      must keep a >= 1.2x float32 epoch *or* step-latency speedup (the
      acceptance bar of the precision tier), the speedup is re-measured on
      this runner against a tolerance-banded floor (with a longer-window
      retry), and the float32 step-allocation ratio -- deterministic, the
      arena simply holds half the bytes -- is re-checked in the same pass.
    """
    if not bench_training.RESULT_PATH.exists():
        return [], [f"no training baseline at {bench_training.RESULT_PATH}"]
    baseline_doc = json.loads(bench_training.RESULT_PATH.read_text())
    baseline = baseline_doc["metrics"]
    rows = int(baseline_doc.get("config", {}).get("rows", bench_training.BENCH_ROWS))
    comparison: list[dict] = []
    failures: list[str] = []

    entry = baseline.get("kinetgan_epoch")
    if entry is not None:
        floor = max(entry["speedup"] * (1.0 - tolerance), 1.0)
        best = 0.0
        for groups, reps in ((2, 3), (bench_training.EPOCH_GROUPS, bench_training.EPOCH_REPS)):
            best = max(best, bench_training.measure_epoch(rows, groups, reps)["speedup"])
            if best >= floor:
                break
        comparison.append(
            {
                "metric": "kinetgan_epoch",
                "baseline_speedup": entry["speedup"],
                "measured_speedup": best,
                "floor": round(floor, 2),
                "status": "ok" if best >= floor else "REGRESSED",
            }
        )
        if best < floor:
            failures.append(
                f"kinetgan_epoch: speedup {best}x < allowed floor {floor:.2f}x "
                f"(baseline {entry['speedup']}x)"
            )

    entry = baseline.get("step_allocations")
    if entry is not None:
        measured = bench_training.measure_step_allocations(rows)
        floor = max(entry["speedup"] * (1.0 - tolerance), 1.0)
        ok = measured["speedup"] >= floor
        comparison.append(
            {
                "metric": "step_allocations",
                "baseline_speedup": entry["speedup"],
                "measured_speedup": measured["speedup"],
                "floor": round(floor, 2),
                "status": "ok" if ok else "REGRESSED",
            }
        )
        if not ok:
            failures.append(
                f"step_allocations: ratio {measured['speedup']}x < allowed floor "
                f"{floor:.2f}x (baseline {entry['speedup']}x)"
            )

    entry_epoch = baseline.get("float32_epoch")
    entry_latency = baseline.get("float32_step_latency")
    entry_alloc = baseline.get("float32_step_allocations")
    if entry_epoch is not None or entry_latency is not None:
        committed = max(
            entry_epoch["speedup"] if entry_epoch else 0.0,
            entry_latency["speedup"] if entry_latency else 0.0,
        )
        ok = committed >= 1.2
        comparison.append(
            {
                "metric": "float32_committed",
                "baseline_speedup": committed,
                "measured_speedup": committed,
                "floor": 1.2,
                "status": "ok" if ok else "REGRESSED",
            }
        )
        if not ok:
            failures.append(
                f"float32 committed speedup {committed}x < 1.2x -- rerun "
                "`python -m benchmarks.run --suite training` on a quiet machine"
            )
        speed_floor = max(committed * (1.0 - tolerance), 1.0)
        alloc_floor = (
            max(entry_alloc["speedup"] * (1.0 - tolerance), 1.0) if entry_alloc else None
        )
        best_speed = 0.0
        best_alloc = 0.0
        for groups, reps in ((2, 2), (bench_training.EPOCH_GROUPS, bench_training.EPOCH_REPS)):
            measured = bench_training.measure_precision(rows, groups, reps)
            best_speed = max(
                best_speed,
                measured["float32_epoch"]["speedup"],
                measured["float32_step_latency"]["speedup"],
            )
            best_alloc = max(best_alloc, measured["float32_step_allocations"]["speedup"])
            if best_speed >= speed_floor and (alloc_floor is None or best_alloc >= alloc_floor):
                break
        ok = best_speed >= speed_floor
        comparison.append(
            {
                "metric": "float32_speedup",
                "baseline_speedup": committed,
                "measured_speedup": best_speed,
                "floor": round(speed_floor, 2),
                "status": "ok" if ok else "REGRESSED",
            }
        )
        if not ok:
            failures.append(
                f"float32 speedup: {best_speed}x < allowed floor {speed_floor:.2f}x "
                f"(committed {committed}x)"
            )
        if alloc_floor is not None:
            ok = best_alloc >= alloc_floor
            comparison.append(
                {
                    "metric": "float32_step_allocations",
                    "baseline_speedup": entry_alloc["speedup"],
                    "measured_speedup": best_alloc,
                    "floor": round(alloc_floor, 2),
                    "status": "ok" if ok else "REGRESSED",
                }
            )
            if not ok:
                failures.append(
                    f"float32_step_allocations: ratio {best_alloc}x < allowed floor "
                    f"{alloc_floor:.2f}x (baseline {entry_alloc['speedup']}x)"
                )
    return comparison, failures


def _smoke_faults(tolerance: float) -> tuple[list[dict], list[str]]:
    """Re-check the fault-tolerance trajectory (``BENCH_faults.json``).

    The deterministic entries gate exactly: the seeded ``round_completion``
    bookkeeping must reproduce bit-for-bit (injector draws are pure in
    ``(seed, task_id, attempt)``) and ``replay_determinism`` must still
    recover bit-identically.  The timing-bound ``recovery_latency`` probes
    gate against a tolerance band plus an absolute slack, with one retry,
    like the other wall-clock gates.
    """
    if not bench_faults.RESULT_PATH.exists():
        return [], [f"no faults baseline at {bench_faults.RESULT_PATH}"]
    baseline = json.loads(bench_faults.RESULT_PATH.read_text())["metrics"]
    rows: list[dict] = []
    failures: list[str] = []

    entry = baseline.get("round_completion")
    if entry is not None:
        measured = bench_faults.measure_round_completion()
        checks = ("rounds_completed", "clients_dropped", "task_completion_rate",
                  "dropped_per_round")
        ok = all(measured[key] == entry[key] for key in checks)
        rows.append(
            {
                "metric": "round_completion",
                "baseline_rate": entry["task_completion_rate"],
                "measured_rate": measured["task_completion_rate"],
                "status": "ok" if ok else "REGRESSED",
            }
        )
        if not ok:
            failures.append(
                "round_completion: seeded completion bookkeeping diverged from "
                f"the committed trajectory (now {measured['clients_dropped']} "
                f"drops / rate {measured['task_completion_rate']}, committed "
                f"{entry['clients_dropped']} / {entry['task_completion_rate']})"
            )

    entry = baseline.get("replay_determinism")
    if entry is not None:
        measured = bench_faults.measure_replay_determinism()
        ok = bool(measured["bit_identical"])
        rows.append(
            {
                "metric": "replay_determinism",
                "measured_max_abs_diff": measured["max_abs_diff"],
                "status": "ok" if ok else "REGRESSED",
            }
        )
        if not ok:
            failures.append(
                "replay_determinism: recovered run diverged from the fault-free "
                f"baseline (max |diff| {measured['max_abs_diff']})"
            )

    entry = baseline.get("recovery_latency")
    if entry is not None:
        for kind in ("crash", "straggler"):
            key = f"{kind}_recovery_overhead_seconds"
            ceiling = entry[key] * (1.0 + tolerance) + FAULT_LATENCY_SLACK_SECONDS
            best = float("inf")
            measured = None
            for _attempt in range(2):
                measured = bench_faults.measure_recovery_latency()
                best = min(best, measured[key])
                if best <= ceiling:
                    break
            unrecovered = measured[f"{kind}_unrecovered_tasks"]
            ok = best <= ceiling and unrecovered == 0
            rows.append(
                {
                    "metric": f"recovery_latency_{kind}",
                    "baseline_overhead_seconds": entry[key],
                    "measured_overhead_seconds": best,
                    "ceiling_seconds": round(ceiling, 3),
                    "status": "ok" if ok else "REGRESSED",
                }
            )
            if not ok:
                failures.append(
                    f"recovery_latency_{kind}: overhead {best:.3f}s > ceiling "
                    f"{ceiling:.3f}s (baseline {entry[key]}s)"
                    if unrecovered == 0
                    else f"recovery_latency_{kind}: {unrecovered} task(s) stayed "
                    "unrecovered after the replay budget"
                )
    return rows, failures


def _smoke_serving(tolerance: float) -> tuple[list[dict], list[str]]:
    """Re-check the serving latency SLO (``BENCH_serving.json``).

    Serves a (smaller) artifact over the HTTP front-end under the same
    multi-client burst shape as the committed ``latency_slo`` entry and
    gates p50/p99 against a tolerance band plus an absolute slack, with
    one retry -- loopback HTTP latency is scheduler-bound, so the shape of
    the gate mirrors the fault-recovery one.  A burst that sheds requests
    (``rejected > 0``) fails outright: the queue must absorb it.
    """
    if not bench_serving.RESULT_PATH.exists():
        return [], [f"no serving baseline at {bench_serving.RESULT_PATH}"]
    baseline = json.loads(bench_serving.RESULT_PATH.read_text())["metrics"]
    entry = baseline.get("latency_slo")
    if entry is None:
        return [], ["latency_slo missing from the committed BENCH_serving.json"]

    import tempfile
    from pathlib import Path

    from repro.serve import save_model

    rows: list[dict] = []
    failures: list[str] = []
    model = bench_serving._train_model(SERVING_SMOKE_ROWS, SERVING_SMOKE_EPOCHS)
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        artifact = Path(tmp) / "kinetgan"
        save_model(model, artifact, metadata={"benchmark": "serving-smoke"})
        ceilings = {
            "p50_ms": entry["p50_ms"] * (1.0 + tolerance) + SERVING_P50_SLACK_MS,
            "p99_ms": entry["p99_ms"] * (1.0 + tolerance) + SERVING_P99_SLACK_MS,
        }
        best: dict | None = None
        for _attempt in range(2):
            measured = bench_serving.measure_http_latency(
                artifact,
                clients=entry["clients"],
                requests_per_client=entry["requests_per_client"],
                rows_per_request=entry["rows_per_request"],
            )
            if best is None or measured["p99_ms"] < best["p99_ms"]:
                best = measured
            if all(best[key] <= ceilings[key] for key in ceilings) and best["rejected"] == 0:
                break
    for key in ("p50_ms", "p99_ms"):
        ok = best[key] <= ceilings[key]
        rows.append(
            {
                "metric": f"latency_slo_{key.removesuffix('_ms')}",
                "baseline_ms": entry[key],
                "measured_ms": best[key],
                "ceiling_ms": round(ceilings[key], 2),
                "status": "ok" if ok else "REGRESSED",
            }
        )
        if not ok:
            failures.append(
                f"latency_slo {key}: {best[key]}ms > ceiling {ceilings[key]:.1f}ms "
                f"(committed {entry[key]}ms)"
            )
    if best["rejected"] != 0:
        rows.append(
            {"metric": "latency_slo_rejected", "measured": best["rejected"],
             "status": "REGRESSED"}
        )
        failures.append(
            f"latency_slo: {best['rejected']} request(s) rejected under the "
            "burst; the admission queue must absorb the committed burst shape"
        )
    return rows, failures


def _smoke_obs(tolerance: float) -> tuple[list[dict], list[str]]:
    """Re-check the observability trajectory (``BENCH_obs.json``).

    Three gates:

    * the disabled-path overhead bound -- no-op span cost x spans per
      epoch over a freshly measured small KiNETGAN epoch -- must stay
      under :data:`OBS_OVERHEAD_CEILING_PCT` (an absolute 1% ceiling,
      not a tolerance band: the bound is architecture-enforced and sits
      orders of magnitude below it);
    * the instrumented run's loss history must be bit-identical to the
      uninstrumented one (observability never touches an RNG stream);
    * the *committed* instrumented HTTP latency must sit under the
      *committed* serving SLO ceilings (tolerance band plus the serving
      slacks) -- a static consistency check between the two trajectory
      files; the live latency re-measure happens in ``_smoke_serving``,
      whose request path is metrics-instrumented end to end.
    """
    if not bench_obs.RESULT_PATH.exists():
        return [], [f"no observability baseline at {bench_obs.RESULT_PATH}"]
    rows: list[dict] = []
    failures: list[str] = []

    measured = bench_obs.measure_epoch_overhead(rows=OBS_SMOKE_ROWS, epochs=OBS_SMOKE_EPOCHS)
    ok = measured["disabled_overhead_pct"] < OBS_OVERHEAD_CEILING_PCT
    rows.append(
        {
            "metric": "disabled_overhead_pct",
            "measured_pct": measured["disabled_overhead_pct"],
            "ceiling_pct": OBS_OVERHEAD_CEILING_PCT,
            "noop_span_ns": measured["noop_span_ns"],
            "status": "ok" if ok else "REGRESSED",
        }
    )
    if not ok:
        failures.append(
            f"obs disabled_overhead_pct: {measured['disabled_overhead_pct']}% >= "
            f"ceiling {OBS_OVERHEAD_CEILING_PCT}% of a KiNETGAN epoch"
        )

    identical = bool(measured["history_bit_identical"])
    rows.append(
        {
            "metric": "history_bit_identical",
            "measured": identical,
            "status": "ok" if identical else "REGRESSED",
        }
    )
    if not identical:
        failures.append(
            "obs history_bit_identical: the traced training run diverged from "
            "the untraced one -- instrumentation touched an RNG stream"
        )

    if bench_serving.RESULT_PATH.exists():
        serving_slo = json.loads(bench_serving.RESULT_PATH.read_text())["metrics"].get(
            "latency_slo"
        )
        committed = json.loads(bench_obs.RESULT_PATH.read_text())["metrics"].get(
            "latency_slo_instrumented"
        )
        if serving_slo and committed:
            slacks = {"p50_ms": SERVING_P50_SLACK_MS, "p99_ms": SERVING_P99_SLACK_MS}
            for key, slack in slacks.items():
                ceiling = serving_slo[key] * (1.0 + tolerance) + slack
                ok = committed[key] <= ceiling
                rows.append(
                    {
                        "metric": f"instrumented_{key.removesuffix('_ms')}",
                        "committed_ms": committed[key],
                        "ceiling_ms": round(ceiling, 2),
                        "status": "ok" if ok else "REGRESSED",
                    }
                )
                if not ok:
                    failures.append(
                        f"obs instrumented {key}: committed {committed[key]}ms > "
                        f"serving-SLO ceiling {ceiling:.1f}ms -- rerun "
                        "`python -m benchmarks.run --suite obs`"
                    )
    return rows, failures


def _run_smoke(tolerance: float, as_json: bool = False) -> int:
    """Re-measure the data plane and gate on the committed trajectory.

    Timing noise, not regressions, is the dominant failure mode of short
    windows on shared runners, so a metric only fails the gate if it stays
    below its floor in a second pass with 4x longer windows (per-metric
    best-of-both is compared).
    """
    if not RESULT_PATH.exists():
        print(f"[bench:smoke] no baseline at {RESULT_PATH}; run the full bench first")
        return 2
    baseline = json.loads(RESULT_PATH.read_text())
    rows = int(baseline.get("config", {}).get("rows", BENCH_ROWS))
    current = run_dataplane_bench(rows=rows, epoch=False, min_seconds=SMOKE_MIN_SECONDS)
    metrics = dict(current["metrics"])
    comparison, failures = _evaluate_smoke(baseline["metrics"], metrics, tolerance)

    retried = False
    if failures:
        retried = True
        retry = run_dataplane_bench(
            rows=rows, epoch=False, min_seconds=SMOKE_RETRY_MIN_SECONDS
        )
        for name, entry in retry["metrics"].items():
            best = metrics.get(name)
            if best is None or entry.get("speedup", 0) > best.get("speedup", 0):
                metrics[name] = entry
        comparison, failures = _evaluate_smoke(baseline["metrics"], metrics, tolerance)

    runtime_comparison, runtime_failures = _smoke_runtime(tolerance)
    training_comparison, training_failures = _smoke_training(tolerance)
    faults_comparison, faults_failures = _smoke_faults(tolerance)
    serving_comparison, serving_failures = _smoke_serving(tolerance)
    obs_comparison, obs_failures = _smoke_obs(tolerance)
    failures = (failures + runtime_failures + training_failures + faults_failures
                + serving_failures + obs_failures)

    document = {
        "benchmark": "bench-smoke",
        "rows": rows,
        "tolerance": tolerance,
        "retried": retried,
        "comparison": comparison,
        "runtime_comparison": runtime_comparison,
        "training_comparison": training_comparison,
        "faults_comparison": faults_comparison,
        "serving_comparison": serving_comparison,
        "obs_comparison": obs_comparison,
        "failures": failures,
        "ok": not failures,
    }
    if as_json:
        json.dump(document, sys.stdout, indent=2)
        print()
    else:
        print(f"[bench:smoke] lab-IoT, {rows} rows, tolerance {tolerance:.0%} on speedup")
        for row in comparison:
            print(
                f"  {row['metric']:22s} baseline {row['baseline_speedup']:>7.2f}x"
                f"  now {row['measured_speedup']:>7.2f}x"
                f"  ({row['measured_rows_per_sec']:,} rows/s)  {row['status']}"
            )
        print(f"[bench:smoke] runtime trajectory ({default_worker_count()} usable cpus)")
        for row in runtime_comparison:
            if row["status"] == "skipped":
                print(f"  {row['metric']:26s} skipped ({row['reason']})")
            else:
                baseline_key = (
                    "baseline_reduction" if "baseline_reduction" in row else "baseline_speedup"
                )
                measured_key = baseline_key.replace("baseline", "measured")
                print(
                    f"  {row['metric']:26s} baseline {row[baseline_key]:>7.2f}x"
                    f"  now {row[measured_key]:>7.2f}x"
                    f"  (floor {row['floor']}x)  {row['status']}"
                )
        print("[bench:smoke] training trajectory")
        for row in training_comparison:
            print(
                f"  {row['metric']:26s} baseline {row['baseline_speedup']:>7.2f}x"
                f"  now {row['measured_speedup']:>7.2f}x"
                f"  (floor {row['floor']}x)  {row['status']}"
            )
        print("[bench:smoke] fault-tolerance trajectory")
        for row in faults_comparison:
            if row["metric"] == "round_completion":
                print(
                    f"  {row['metric']:26s} completion {row['measured_rate']:.2%}"
                    f"  (committed {row['baseline_rate']:.2%}, exact)  {row['status']}"
                )
            elif row["metric"] == "replay_determinism":
                print(
                    f"  {row['metric']:26s} max |diff| {row['measured_max_abs_diff']:.1e}"
                    f"  (must be bit-identical)  {row['status']}"
                )
            else:
                print(
                    f"  {row['metric']:26s} overhead {row['measured_overhead_seconds']:.3f}s"
                    f"  (ceiling {row['ceiling_seconds']}s)  {row['status']}"
                )
        print("[bench:smoke] serving latency SLO (HTTP burst)")
        for row in serving_comparison:
            if "measured_ms" in row:
                print(
                    f"  {row['metric']:26s} {row['measured_ms']}ms"
                    f"  (committed {row['baseline_ms']}ms, "
                    f"ceiling {row['ceiling_ms']}ms)  {row['status']}"
                )
            else:
                print(f"  {row['metric']:26s} {row.get('measured')}  {row['status']}")
        print("[bench:smoke] observability plane")
        for row in obs_comparison:
            if row["metric"] == "disabled_overhead_pct":
                print(
                    f"  {row['metric']:26s} {row['measured_pct']:.4f}%"
                    f"  (ceiling {row['ceiling_pct']}%, "
                    f"noop span {row['noop_span_ns']}ns)  {row['status']}"
                )
            elif row["metric"] == "history_bit_identical":
                print(
                    f"  {row['metric']:26s} {row['measured']}"
                    f"  (traced vs untraced training)  {row['status']}"
                )
            else:
                print(
                    f"  {row['metric']:26s} {row['committed_ms']}ms"
                    f"  (ceiling {row['ceiling_ms']}ms)  {row['status']}"
                )
        if failures:
            print("[bench:smoke] FAILED (after retry with longer windows):")
            for failure in failures:
                print(f"  - {failure}")
        else:
            print("[bench:smoke] ok - no gated metric regressed beyond tolerance")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.run", description=__doc__
    )
    parser.add_argument("--json", action="store_true",
                        help="print the full benchmark document(s) as JSON")
    parser.add_argument("--suite",
                        choices=("dataplane", "runtime", "serving", "training",
                                 "faults", "obs", "all"),
                        default="dataplane",
                        help="which benchmark suite to run (default %(default)s)")
    parser.add_argument("--rows", type=int, default=BENCH_ROWS,
                        help="lab-IoT rows to benchmark on (default %(default)s)")
    parser.add_argument("--no-epoch", action="store_true",
                        help="skip the end-to-end KiNETGAN epoch measurement")
    parser.add_argument("--no-write", action="store_true",
                        help="do not rewrite the BENCH_*.json trajectory files")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: quick re-measure vs the committed "
                             "BENCH_dataplane.json; never writes")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional speedup regression in smoke "
                             "mode (default %(default)s)")
    args = parser.parse_args(argv)

    if args.smoke:
        return _run_smoke(args.tolerance, as_json=args.json)

    documents: dict[str, dict] = {}
    if args.suite in ("dataplane", "all"):
        document = run_dataplane_bench(rows=args.rows, epoch=not args.no_epoch)
        documents["dataplane"] = document
        if not args.no_write:
            write_results(document)
    if args.suite in ("runtime", "all"):
        document = bench_runtime.run_runtime_bench()
        documents["runtime"] = document
        if not args.no_write:
            bench_runtime.write_results(document)
    if args.suite in ("serving", "all"):
        document = bench_serving.run_serving_bench()
        documents["serving"] = document
        if not args.no_write:
            bench_serving.write_results(document)
    if args.suite in ("training", "all"):
        document = bench_training.run_training_bench(rows=args.rows)
        documents["training"] = document
        if not args.no_write:
            bench_training.write_results(document)
    if args.suite in ("faults", "all"):
        document = bench_faults.run_faults_bench()
        documents["faults"] = document
        if not args.no_write:
            bench_faults.write_results(document)
    if args.suite in ("obs", "all"):
        document = bench_obs.run_obs_bench()
        documents["obs"] = document
        if not args.no_write:
            bench_obs.write_results(document)

    if args.json:
        payload = documents if len(documents) > 1 else next(iter(documents.values()))
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        for name, document in documents.items():
            if name == "dataplane":
                print(format_results(document))
                if not args.no_write:
                    print(f"[bench:dataplane] wrote {RESULT_PATH}")
            elif name == "runtime":
                print(bench_runtime.format_results(document))
                if not args.no_write:
                    print(f"[bench:runtime] wrote {bench_runtime.RESULT_PATH}")
            elif name == "serving":
                print(bench_serving.format_results(document))
                if not args.no_write:
                    print(f"[bench:serving] wrote {bench_serving.RESULT_PATH}")
            elif name == "faults":
                print(bench_faults.format_results(document))
                if not args.no_write:
                    print(f"[bench:faults] wrote {bench_faults.RESULT_PATH}")
            elif name == "obs":
                print(bench_obs.format_results(document))
                if not args.no_write:
                    print(f"[bench:obs] wrote {bench_obs.RESULT_PATH}")
            else:
                print(bench_training.format_results(document))
                if not args.no_write:
                    print(f"[bench:training] wrote {bench_training.RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
