"""Observability benchmarks: disabled-path overhead and instrumented latency.

Measures what the :mod:`repro.obs` plane costs the hot paths it instruments:

* ``noop_span`` -- per-call cost of ``span(...)`` while tracing is
  disabled.  The disabled path is one module-global ``is None`` check
  returning a shared no-op handle; this microbenchmark is the evidence.
* ``epoch_overhead`` -- a KiNETGAN training run timed twice, once with
  tracing disabled (the default) and once exporting spans to a JSONL
  sink.  The disabled-path overhead bound is computed from the no-op
  span cost times the spans the engine opens per epoch, relative to the
  measured epoch wall time; the CI smoke gate requires it under 1%.
  The two runs must also produce **bit-identical** loss histories:
  observability never touches an RNG stream.
* ``latency_slo_instrumented`` -- the same multi-client HTTP burst as
  ``bench_serving``'s ``latency_slo`` row, measured with the metrics
  registry live on every request (it always is now) and tracing enabled,
  plus the cost of scraping ``GET /metrics`` itself.  The committed
  ``BENCH_serving.json`` ceilings stay the reference: instrumentation
  must not move the SLO.

Results land in ``BENCH_obs.json`` at the repository root.  Run directly
(``python -m benchmarks.bench_obs``) or through
``python -m benchmarks.run --suite obs``.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import tempfile
import time
import urllib.request
from pathlib import Path

import numpy as np

from benchmarks.bench_serving import _train_model, measure_http_latency
from repro.obs import JsonlSink, read_jsonl, span, tracing
from repro.serve import SamplingHTTPServer, ServingPool, save_model

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

NOOP_CALLS = int(os.environ.get("REPRO_BENCH_OBS_NOOP_CALLS", "200000"))
BENCH_ROWS = int(os.environ.get("REPRO_BENCH_OBS_ROWS", "1200"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_OBS_EPOCHS", "6"))

#: Spans the engine opens per training epoch on the disabled path: one
#: ``engine.epoch`` plus the amortised share of the single ``engine.run``.
SPANS_PER_EPOCH = 2


def measure_noop_span(calls: int = NOOP_CALLS, repeats: int = 3) -> dict:
    """Per-call cost of ``span(...)`` while tracing is disabled.

    Times a loop of ``span()`` calls against an empty loop of the same
    shape and reports the best-of-``repeats`` net cost per call.
    """
    best_span = float("inf")
    best_base = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            span("bench")
        best_span = min(best_span, time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(calls):
            pass
        best_base = min(best_base, time.perf_counter() - start)
    per_call_seconds = max(best_span - best_base, 0.0) / calls
    return {
        "calls": calls,
        "per_call_ns": round(per_call_seconds * 1e9, 1),
        "loop_seconds": round(best_span, 4),
        "baseline_loop_seconds": round(best_base, 4),
    }


def measure_epoch_overhead(
    rows: int = BENCH_ROWS, epochs: int = BENCH_EPOCHS, noop: dict | None = None
) -> dict:
    """KiNETGAN epoch seconds with tracing off vs exporting spans to JSONL.

    Also checks the two runs' loss histories are bit-identical (the
    instrumentation must never consume a random draw) and computes the
    disabled-path overhead bound: no-op span cost x spans per epoch over
    the measured epoch wall time.
    """
    if noop is None:
        noop = measure_noop_span()

    start = time.perf_counter()
    disabled = _train_model(rows, epochs)
    disabled_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-obs-bench-") as tmp:
        trace_path = Path(tmp) / "train.jsonl"
        with tracing(JsonlSink(trace_path)):
            with span("bench.fit", rows=rows, epochs=epochs):
                start = time.perf_counter()
                enabled = _train_model(rows, epochs)
                enabled_seconds = time.perf_counter() - start
        trace_events = len(read_jsonl(trace_path))

    histories = (disabled.history, enabled.history)
    bit_identical = all(
        getattr(histories[0], name) == getattr(histories[1], name)
        for name in ("generator_loss", "discriminator_loss", "condition_loss", "knowledge_loss")
    )

    epoch_disabled = disabled_seconds / epochs
    epoch_enabled = enabled_seconds / epochs
    overhead_bound_pct = (
        SPANS_PER_EPOCH * (noop["per_call_ns"] * 1e-9) / epoch_disabled * 100.0
    )
    return {
        "rows": rows,
        "epochs": epochs,
        "epoch_seconds_disabled": round(epoch_disabled, 4),
        "epoch_seconds_enabled": round(epoch_enabled, 4),
        "enabled_over_disabled": round(epoch_enabled / epoch_disabled, 4),
        "spans_per_epoch": SPANS_PER_EPOCH,
        "noop_span_ns": noop["per_call_ns"],
        "disabled_overhead_pct": round(overhead_bound_pct, 6),
        "history_bit_identical": bool(bit_identical),
        "trace_events": trace_events,
    }


def measure_instrumented_http(
    artifact: Path | None = None, rows: int = BENCH_ROWS, epochs: int = BENCH_EPOCHS
) -> dict:
    """The ``bench_serving`` latency burst with tracing enabled, plus scrape cost.

    The metrics registry is live on every request regardless; enabling
    tracing on top shows the full observability plane does not move the
    latency SLO.  Ends with a timed ``GET /metrics`` scrape of the loaded
    server so the exporter's own cost is on record.
    """
    with tempfile.TemporaryDirectory(prefix="repro-obs-http-") as tmp:
        if artifact is None:
            artifact = Path(tmp) / "kinetgan"
            save_model(_train_model(rows, epochs), artifact, metadata={"benchmark": "obs"})
        with tracing(JsonlSink(Path(tmp) / "http.jsonl")):
            latency = measure_http_latency(artifact)
        with ServingPool({"bench": artifact}, executor="thread:2") as pool:
            with SamplingHTTPServer(pool, port=0) as server:
                urllib.request.urlopen(server.url + "/metrics").read()  # warm
                start = time.perf_counter()
                body = urllib.request.urlopen(server.url + "/metrics").read()
                scrape_seconds = time.perf_counter() - start
    latency["scrape_ms"] = round(scrape_seconds * 1000, 3)
    latency["scrape_bytes"] = len(body)
    return latency


def run_obs_bench(rows: int = BENCH_ROWS, epochs: int = BENCH_EPOCHS) -> dict:
    """Measure the observability plane and return the benchmark document."""
    noop = measure_noop_span()
    metrics = {
        "noop_span": noop,
        "epoch_overhead": measure_epoch_overhead(rows, epochs, noop=noop),
        "latency_slo_instrumented": measure_instrumented_http(rows=rows, epochs=epochs),
    }
    return {
        "benchmark": "obs",
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
        },
        "config": {
            "dataset": "lab_iot",
            "train_rows": rows,
            "train_epochs": epochs,
            "noop_calls": NOOP_CALLS,
        },
        "metrics": metrics,
        "notes": (
            "noop_span is the whole disabled-path story: span() with no "
            "tracer installed is one global is-None check returning a shared "
            "no-op handle, so the engine's two spans per epoch cost "
            "spans_per_epoch x per_call_ns against an epoch measured in "
            "milliseconds -- disabled_overhead_pct is that bound and the CI "
            "smoke gate keeps it under 1%. epoch_overhead also proves the "
            "instrumented run's loss history is bit-identical to the "
            "uninstrumented one (observability never touches an RNG stream). "
            "latency_slo_instrumented replays bench_serving's multi-client "
            "burst with tracing enabled and the always-on metrics registry; "
            "the committed BENCH_serving.json latency_slo ceilings remain "
            "the reference the smoke gate checks against."
        ),
    }


def write_results(document: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def format_results(document: dict) -> str:
    metrics = document["metrics"]
    noop = metrics["noop_span"]
    epoch = metrics["epoch_overhead"]
    slo = metrics["latency_slo_instrumented"]
    return "\n".join(
        [
            "[bench:obs] observability-plane overhead on lab-IoT KiNETGAN",
            f"  noop_span                    {noop['per_call_ns']}ns/call"
            f"  ({noop['calls']:,} calls, tracing disabled)",
            f"  epoch_overhead               disabled {epoch['epoch_seconds_disabled']}s"
            f"  traced {epoch['epoch_seconds_enabled']}s"
            f"  (x{epoch['enabled_over_disabled']}, "
            f"bound {epoch['disabled_overhead_pct']:.4f}% of an epoch, "
            f"history identical: {epoch['history_bit_identical']})",
            f"  latency_slo_instrumented     p50 {slo['p50_ms']}ms  p99 {slo['p99_ms']}ms"
            f"  ({slo['requests_per_sec']} req/s, {slo['rejected']} rejected, "
            f"scrape {slo['scrape_ms']}ms / {slo['scrape_bytes']:,}B)",
        ]
    )


def main() -> None:
    document = run_obs_bench()
    path = write_results(document)
    print(format_results(document))
    print(f"[bench:obs] wrote {path}")


if __name__ == "__main__":
    main()
