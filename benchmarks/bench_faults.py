"""Fault-tolerance benchmarks: recovery latency and round-completion rate.

Measures what the resilient execution plane (:mod:`repro.runtime.faults`)
costs and guarantees when workers actually fail:

* ``round_completion`` -- a seeded federated run under a 25% per-task
  injected error rate with one replay per task: how many client rounds
  survive, how many are dropped, and the resulting completion rate.  The
  injector is pure in ``(seed, task_id, attempt)``, so every number in
  this entry is bit-deterministic and the smoke gate compares it exactly.
* ``replay_determinism`` -- a thread-pool run with an injected straggler
  past its deadline, replayed and compared against the fault-free serial
  run: the recovered global state must be *bit-identical* (the replay
  reuses the same parent-spawned round seed).  Deterministic; the gate
  requires identity.
* ``recovery_latency`` -- wall-clock overhead of recovering from one
  injected fault on otherwise-trivial task sets: a worker crash on the
  process pool (respawn + replay) and an abandoned straggler on the
  thread pool (deadline + replay).  Timing-bound, so the smoke gate
  allows a tolerance band plus an absolute slack and retries once.

Results land in ``BENCH_faults.json`` at the repository root.  Run
directly (``python -m benchmarks.bench_faults``) or through
``python -m benchmarks.run --suite faults``.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.federated.client import FederatedClient
from repro.federated.server import FederatedServer
from repro.federated.simulation import DetectorFactory
from repro.runtime import (
    FaultInjector,
    ProcessExecutor,
    SerialExecutor,
    TaskPolicy,
    ThreadExecutor,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

#: Seeded error process of the completion-rate probe.
COMPLETION_ERROR_RATE = 0.25
COMPLETION_ROUNDS = 6
COMPLETION_CLIENTS = 4
COMPLETION_RETRIES = 1
INJECTOR_SEED = 11

#: Deadline / straggler parameters of the latency probes.
LATENCY_TASKS = 16
STRAGGLER_DELAY = 0.5
STRAGGLER_DEADLINE = 0.1


def _square(x: int) -> int:
    """Module-level trivial work unit for the latency probes."""
    return x * x


def _make_clients(n_clients: int, model_fn: DetectorFactory) -> list[FederatedClient]:
    clients = []
    for i in range(n_clients):
        rng = np.random.default_rng(60 + i)
        clients.append(
            FederatedClient(
                client_id=f"bench-{i}",
                features=rng.normal(size=(128, model_fn.n_features)),
                labels=rng.integers(0, model_fn.n_classes, size=128),
                model_fn=model_fn,
                learning_rate=0.05,
                batch_size=64,
                local_epochs=1,
                seed=i,
            )
        )
    return clients


def _model_fn() -> DetectorFactory:
    return DetectorFactory(n_features=6, n_classes=2, hidden_dims=(16,), seed=0)


def measure_round_completion() -> dict:
    """Seeded federated run under injected errors: completion bookkeeping.

    Serial executor + rate-mode injector + one replay per task, so the
    entire entry is a pure function of the seeds and gates exactly.
    """
    model_fn = _model_fn()
    executor = SerialExecutor()
    executor.install_faults(
        FaultInjector(seed=INJECTOR_SEED, error_rate=COMPLETION_ERROR_RATE)
    )
    server = FederatedServer(
        model_fn,
        _make_clients(COMPLETION_CLIENTS, model_fn),
        seed=0,
        executor=executor,
        task_retries=COMPLETION_RETRIES,
    )
    with server:
        history = server.run(COMPLETION_ROUNDS)
    total_tasks = COMPLETION_ROUNDS * COMPLETION_CLIENTS
    dropped = sum(len(round_info.dropped) for round_info in history.rounds)
    return {
        "rounds": COMPLETION_ROUNDS,
        "clients": COMPLETION_CLIENTS,
        "error_rate": COMPLETION_ERROR_RATE,
        "retries": COMPLETION_RETRIES,
        "injector_seed": INJECTOR_SEED,
        "rounds_completed": history.n_rounds,
        "round_completion_rate": round(history.n_rounds / COMPLETION_ROUNDS, 4),
        "client_tasks": total_tasks,
        "clients_dropped": dropped,
        "task_completion_rate": round((total_tasks - dropped) / total_tasks, 4),
        "dropped_per_round": [len(round_info.dropped) for round_info in history.rounds],
        "deterministic": True,
    }


def measure_replay_determinism() -> dict:
    """Straggler-recovered thread run vs the fault-free serial baseline.

    The injected straggler overshoots its deadline, the attempt is
    abandoned before the task body runs, and the replay reuses the same
    round seed -- so the recovered global state must match the fault-free
    one bit for bit.
    """
    model_fn = _model_fn()
    with FederatedServer(
        model_fn, _make_clients(3, model_fn), seed=0
    ) as baseline_server:
        baseline_server.run(2)
        baseline = baseline_server.global_state

    executor = ThreadExecutor(max_workers=2)
    executor.install_faults(
        FaultInjector.straggle_once(task_id=1, delay_seconds=STRAGGLER_DELAY)
    )
    with FederatedServer(
        model_fn,
        _make_clients(3, model_fn),
        seed=0,
        executor=executor,
        task_timeout=STRAGGLER_DEADLINE,
        task_retries=2,
    ) as recovered_server:
        recovered_server.run(2)
        recovered = recovered_server.global_state

    max_abs_diff = max(
        float(np.max(np.abs(np.asarray(baseline[key]) - np.asarray(recovered[key]))))
        if np.asarray(baseline[key]).size
        else 0.0
        for key in baseline
    )
    identical = set(baseline) == set(recovered) and all(
        np.array_equal(baseline[key], recovered[key]) for key in baseline
    )
    return {
        "straggler_delay_seconds": STRAGGLER_DELAY,
        "deadline_seconds": STRAGGLER_DEADLINE,
        "bit_identical": bool(identical),
        "max_abs_diff": max_abs_diff,
        "deterministic": True,
    }


def _timed_map_tasks(executor, policy: TaskPolicy) -> tuple[float, int]:
    """Elapsed seconds of one ``map_tasks`` sweep plus its failure count."""
    start = time.perf_counter()
    results = executor.map_tasks(_square, list(range(LATENCY_TASKS)), policy)
    elapsed = time.perf_counter() - start
    failures = sum(0 if result.ok else 1 for result in results)
    return elapsed, failures


def measure_recovery_latency() -> dict:
    """Wall-clock cost of recovering one injected fault per executor kind.

    Each probe warms its pool, times a clean sweep, then times the same
    sweep with one injected fault and a replay budget; the difference is
    the recovery overhead (pool respawn + replay for a crash, deadline +
    replay for a straggler).
    """
    # Process pool: one worker crash mid-sweep, pool respawn, replay.
    with ProcessExecutor(max_workers=2) as pool:
        pool.map(_square, list(range(LATENCY_TASKS)))  # warm-up: spawn workers
        clean_seconds, _ = _timed_map_tasks(pool, TaskPolicy(retries=1))
        crash_policy = TaskPolicy(
            retries=1,
            injector=FaultInjector.crash_once(task_id=pool._task_counter + 2),
        )
        crash_seconds, crash_failures = _timed_map_tasks(pool, crash_policy)
        respawns = pool.respawns

    # Thread pool: one straggler past the deadline, abandoned, replayed.
    with ThreadExecutor(max_workers=2) as pool:
        pool.map(_square, list(range(LATENCY_TASKS)))
        thread_clean_seconds, _ = _timed_map_tasks(
            pool, TaskPolicy(timeout=STRAGGLER_DEADLINE, retries=1)
        )
        straggler_policy = TaskPolicy(
            timeout=STRAGGLER_DEADLINE,
            retries=1,
            injector=FaultInjector.straggle_once(
                task_id=pool._task_counter + 2, delay_seconds=STRAGGLER_DELAY
            ),
        )
        straggler_seconds, straggler_failures = _timed_map_tasks(pool, straggler_policy)

    return {
        "tasks": LATENCY_TASKS,
        "crash_clean_seconds": round(clean_seconds, 4),
        "crash_recovered_seconds": round(crash_seconds, 4),
        "crash_recovery_overhead_seconds": round(crash_seconds - clean_seconds, 4),
        "crash_pool_respawns": respawns,
        "crash_unrecovered_tasks": crash_failures,
        "straggler_clean_seconds": round(thread_clean_seconds, 4),
        "straggler_recovered_seconds": round(straggler_seconds, 4),
        "straggler_recovery_overhead_seconds": round(
            straggler_seconds - thread_clean_seconds, 4
        ),
        "straggler_unrecovered_tasks": straggler_failures,
        "deadline_seconds": STRAGGLER_DEADLINE,
        "cpu_count": os.cpu_count(),
    }


def run_faults_bench() -> dict:
    """Measure all fault probes and return the trajectory document."""
    metrics = {
        "round_completion": measure_round_completion(),
        "replay_determinism": measure_replay_determinism(),
        "recovery_latency": measure_recovery_latency(),
    }
    return {
        "benchmark": "faults",
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
        },
        "config": {
            "error_rate": COMPLETION_ERROR_RATE,
            "injector_seed": INJECTOR_SEED,
            "straggler_delay_seconds": STRAGGLER_DELAY,
            "deadline_seconds": STRAGGLER_DEADLINE,
            "latency_tasks": LATENCY_TASKS,
        },
        "metrics": metrics,
        "notes": (
            "round_completion and replay_determinism are pure functions of "
            "the seeds (the injector draws from SeedSequence(seed, task_id, "
            "attempt)) and gate exactly in CI. recovery_latency is "
            "timing-bound -- it prices a process-pool respawn and a "
            "deadline-abandoned straggler -- and gates with a tolerance "
            "band plus absolute slack."
        ),
    }


def write_results(document: dict, path: Path = RESULT_PATH) -> Path:
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def format_results(document: dict) -> str:
    metrics = document["metrics"]
    completion = metrics["round_completion"]
    replay = metrics["replay_determinism"]
    latency = metrics["recovery_latency"]
    lines = [
        "[bench:faults] seeded fault injection on the federated plane",
        (
            f"  round_completion        {completion['rounds_completed']}/"
            f"{completion['rounds']} rounds, "
            f"{completion['clients_dropped']}/{completion['client_tasks']} client "
            f"tasks dropped (task completion {completion['task_completion_rate']:.2%} "
            f"at {completion['error_rate']:.0%} injected errors, "
            f"{completion['retries']} retry)"
        ),
        (
            f"  replay_determinism      recovered state "
            f"{'bit-identical' if replay['bit_identical'] else 'DIVERGED'} "
            f"(max |diff| {replay['max_abs_diff']:.1e})"
        ),
        (
            f"  recovery_latency        crash +{latency['crash_recovery_overhead_seconds']:.3f}s "
            f"({latency['crash_pool_respawns']} respawn), straggler "
            f"+{latency['straggler_recovery_overhead_seconds']:.3f}s "
            f"(deadline {latency['deadline_seconds']}s) over {latency['tasks']} tasks"
        ),
    ]
    return "\n".join(lines)


def main() -> None:
    document = run_faults_bench()
    path = write_results(document)
    print(format_results(document))
    print(f"[bench:faults] wrote {path}")


if __name__ == "__main__":
    main()
