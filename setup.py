"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works in fully offline environments whose
setuptools/wheel combination cannot build PEP-660 editable wheels.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "KiNETGAN reproduction: knowledge-infused synthetic network-activity "
        "data generation for distributed NIDS"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
