"""Bring your own network: custom schema, catalog and knowledge graph.

Run with::

    python examples/custom_dataset.py [--records 2000] [--epochs 30]

This example shows the workflow a downstream user follows to apply KiNETGAN
to their *own* monitored environment rather than one of the bundled datasets:

1. describe the environment as a :class:`DomainCatalog` (devices, benign
   event types, attacks, and the attribute rules each event imposes),
2. define the matching table schema and produce (or load) flow records,
3. train KiNETGAN with the catalog so the knowledge-guided discriminator
   enforces the environment's rules,
4. check fidelity, knowledge-graph validity and the extended diagnostics
   (coverage, propensity) of the synthetic output.

The toy environment here is a small smart-office network: a door controller,
an IP phone and a printer, plus a brute-force attack against the door
controller's admin interface.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import KiNETGAN, KiNETGANConfig
from repro.fidelity import coverage_report, emd_distance, jensen_shannon_distance, propensity_score
from repro.knowledge import BatchValidator, KGReasoner, build_network_kg
from repro.knowledge.catalog import AttackSpec, DeviceSpec, DomainCatalog, EventSpec
from repro.tabular.schema import ColumnSpec, TableSchema
from repro.tabular.table import Table

OFFICE_DEVICES = [
    DeviceSpec("door_controller", "10.0.0.20", kind="access-control"),
    DeviceSpec("ip_phone", "10.0.0.21", kind="voip"),
    DeviceSpec("printer", "10.0.0.22", kind="printer"),
    DeviceSpec("office_gateway", "10.0.0.1", kind="router"),
    DeviceSpec("intruder_laptop", "10.0.0.99", kind="attacker"),
]

OFFICE_DOMAINS = {
    "door.vendor-cloud.example": "203.0.113.10",
    "voip.sip-provider.example": "203.0.113.20",
    "fw-updates.printer.example": "203.0.113.30",
}

BENIGN_EVENTS = [
    EventSpec(
        name="badge_swipe",
        kind="benign",
        protocols=("TCP",),
        source_devices=("door_controller",),
        destination_domains=("door.vendor-cloud.example",),
        destination_ports=(443,),
        source_port_range=(49152, 65535),
        description="Door controller reports a badge swipe to its cloud",
    ),
    EventSpec(
        name="sip_register",
        kind="benign",
        protocols=("UDP",),
        source_devices=("ip_phone",),
        destination_domains=("voip.sip-provider.example",),
        destination_ports=(5060,),
        source_port_range=(49152, 65535),
        description="IP phone keeps its SIP registration alive",
    ),
    EventSpec(
        name="print_job",
        kind="benign",
        protocols=("TCP",),
        source_devices=("office_gateway",),
        destination_ips=("10.0.0.22",),
        destination_ports=(9100, 631),
        source_port_range=(49152, 65535),
        description="Workstations submit print jobs through the gateway",
    ),
    EventSpec(
        name="printer_fw_check",
        kind="benign",
        protocols=("TCP",),
        source_devices=("printer",),
        destination_domains=("fw-updates.printer.example",),
        destination_ports=(443,),
        source_port_range=(49152, 65535),
        description="Printer polls for firmware updates",
    ),
]

ATTACKS = [
    AttackSpec(
        name="door_admin_bruteforce",
        cve="CVE-2023-0001",
        event=EventSpec(
            name="door_admin_bruteforce",
            kind="attack",
            protocols=("TCP",),
            source_devices=("intruder_laptop",),
            destination_ips=("10.0.0.20",),
            destination_ports=(8443,),
            source_port_range=(1024, 65535),
            description="Password brute force against the door controller's admin UI",
        ),
        description="Credential brute-force attack on the access controller",
    ),
]

EVENT_WEIGHTS = {
    "badge_swipe": 0.30,
    "sip_register": 0.34,
    "print_job": 0.22,
    "printer_fw_check": 0.10,
    "door_admin_bruteforce": 0.04,
}

EVENT_PROFILES = {
    # (packet-count mean, bytes-per-packet mean)
    "badge_swipe": (10.0, 300.0),
    "sip_register": (4.0, 450.0),
    "print_job": (180.0, 900.0),
    "printer_fw_check": (25.0, 600.0),
    "door_admin_bruteforce": (800.0, 120.0),
}


def office_catalog() -> DomainCatalog:
    return DomainCatalog(
        name="smart_office",
        devices=OFFICE_DEVICES,
        events=BENIGN_EVENTS,
        attacks=ATTACKS,
        domains=OFFICE_DOMAINS,
    )


def office_schema(catalog: DomainCatalog) -> TableSchema:
    destination_ips = sorted(
        {ip for event in catalog.all_events() for ip in catalog.destination_ips_for(event.name)}
    )
    destination_ports = sorted(
        {port for event in catalog.all_events() for port in event.destination_ports}
    )
    labels = ("normal", "bruteforce")
    return TableSchema(
        [
            ColumnSpec("event_type", "categorical", categories=tuple(EVENT_WEIGHTS)),
            ColumnSpec("protocol", "categorical", categories=("TCP", "UDP")),
            ColumnSpec("src_ip", "categorical", categories=tuple(d.ip for d in OFFICE_DEVICES)),
            ColumnSpec("dst_ip", "categorical", categories=tuple(destination_ips)),
            ColumnSpec("dst_port", "categorical", categories=tuple(destination_ports)),
            ColumnSpec("src_port", "continuous", minimum=1024, maximum=65535),
            ColumnSpec("packet_count", "continuous", minimum=1, maximum=50_000),
            ColumnSpec("byte_count", "continuous", minimum=40, maximum=5.0e7),
            ColumnSpec("label", "categorical", categories=labels, sensitive=True),
        ]
    )


def simulate_capture(catalog: DomainCatalog, schema: TableSchema, n: int, seed: int) -> Table:
    """Generate flow records that respect the catalog's rules exactly."""
    rng = np.random.default_rng(seed)
    device_ip = {device.name: device.ip for device in OFFICE_DEVICES}
    names = list(EVENT_WEIGHTS)
    weights = np.asarray([EVENT_WEIGHTS[name] for name in names])
    records = []
    for _ in range(n):
        event_name = names[rng.choice(len(names), p=weights / weights.sum())]
        spec = catalog.event(event_name)
        destination_ips = catalog.destination_ips_for(event_name)
        packets_mean, bytes_per_packet = EVENT_PROFILES[event_name]
        packet_count = float(np.clip(rng.lognormal(np.log(packets_mean), 0.5), 1, 50_000))
        low, high = spec.source_port_range
        records.append(
            {
                "event_type": event_name,
                "protocol": spec.protocols[rng.integers(0, len(spec.protocols))],
                "src_ip": device_ip[spec.source_devices[rng.integers(0, len(spec.source_devices))]],
                "dst_ip": destination_ips[rng.integers(0, len(destination_ips))],
                "dst_port": int(
                    spec.destination_ports[rng.integers(0, len(spec.destination_ports))]
                ),
                "src_port": float(rng.integers(low, high + 1)),
                "packet_count": packet_count,
                "byte_count": float(
                    np.clip(packet_count * rng.lognormal(np.log(bytes_per_packet), 0.3), 40, 5.0e7)
                ),
                "label": "bruteforce" if spec.kind == "attack" else "normal",
            }
        )
    return Table.from_records(schema, records)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=2000)
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Describing the smart-office environment as a DomainCatalog ...")
    catalog = office_catalog()
    schema = office_schema(catalog)
    capture = simulate_capture(catalog, schema, args.records, args.seed)
    print(f"simulated capture: {capture.n_rows} rows, "
          f"{capture.class_distribution('label')}")

    print("\nTraining KiNETGAN with the custom knowledge graph ...")
    config = KiNETGANConfig(
        epochs=args.epochs, generator_dims=(64, 64), discriminator_dims=(64,), seed=args.seed
    )
    model = KiNETGAN(config)
    model.fit(capture, catalog=catalog, condition_columns=["event_type", "protocol", "label"])

    rng = np.random.default_rng(args.seed + 1)
    synthetic = model.sample(capture.n_rows, rng=rng)

    print("\n=== Evaluation of the synthetic capture ===")
    reasoner = KGReasoner(build_network_kg(catalog), field_map=catalog.field_map)
    validity = BatchValidator(reasoner).report(synthetic)
    print(f"knowledge-graph validity : {validity.validity_rate:.3f}")
    if validity.violations_by_rule:
        print(f"  violations by rule     : {validity.violations_by_rule}")
    print(f"EMD distance             : {emd_distance(capture, synthetic):.4f}")
    print(f"Jensen-Shannon distance  : {jensen_shannon_distance(capture, synthetic):.4f}")
    coverage = coverage_report(capture, synthetic)
    print(f"coverage                 : {coverage}")
    propensity = propensity_score(capture, synthetic, seed=args.seed)
    print(f"propensity test          : {propensity}")
    print("\nSynthetic label distribution:",
          {k: round(v, 3) for k, v in synthetic.class_distribution("label").items()})


if __name__ == "__main__":
    main()
