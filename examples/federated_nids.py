"""Federated NIDS training: weight sharing instead of data sharing.

Run with::

    python examples/federated_nids.py [--records 3000] [--rounds 10] [--clients 4] [--workers 4]

``--workers N`` (N > 1) fans the per-client local training of every round --
and the whole federated-KiNETGAN sites -- out over a process pool via
:mod:`repro.runtime`; ``--workers thread[:N]`` uses a zero-pickling thread
pool instead.  Seeded results are bit-identical to the serial run either
way.  Clients and sites are worker-resident: they are installed into the
execution plane once and each round ships only seeds and flattened
parameter deltas (shared-memory backed on the process pool).

The script demonstrates the paper's future-work agenda end to end:

1. partition the simulated lab capture across several devices with a
   non-IID label skew,
2. jointly train one neural intrusion detector with FedAvg (only weights are
   exchanged), comparing local-only, federated, federated+DP and centralised
   training,
3. federate the KiNETGAN generator itself across two sites and sample a
   pooled synthetic table from the jointly trained weights.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import KiNETGANConfig
from repro.datasets import load_lab_iot
from repro.federated import (
    DPFedAvgConfig,
    FederatedKiNETGAN,
    FederatedNIDSSimulation,
    label_skew_partition,
)
from repro.knowledge import BatchValidator, KGReasoner, build_network_kg


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=3000, help="size of the simulated capture")
    parser.add_argument("--clients", type=int, default=4, help="number of federated devices")
    parser.add_argument("--rounds", type=int, default=10, help="federated rounds")
    parser.add_argument("--gan-rounds", type=int, default=4, help="federated KiNETGAN rounds")
    parser.add_argument("--workers", type=str, default="serial",
                        help="executor spec for client/site training: 0/1/'serial', "
                             "N or 'process[:N]', or 'thread[:N]'")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Loading the simulated lab IoT capture ...")
    bundle = load_lab_iot(n_records=args.records, seed=args.seed)
    print(bundle.summary())

    # ------------------------------------------------------------------ #
    print("\n=== Federated detector training (FedAvg vs local-only vs centralised) ===")
    # The with-block closes the executor's workers on every path, including
    # exceptions raised mid-run.
    with FederatedNIDSSimulation(
        bundle,
        num_clients=args.clients,
        skew=0.6,
        hidden_dims=(32,),
        num_rounds=args.rounds,
        local_epochs=2,
        dp_config=DPFedAvgConfig(clip_norm=2.0, noise_multiplier=0.6, delta=1e-5),
        seed=args.seed,
        executor=args.workers,
    ) as simulation:
        result = simulation.run()
    print(
        f"local-only accuracy      : {result.local_only:.3f} "
        f"(macro-F1 {result.local_only_f1:.3f})"
    )
    print(f"federated accuracy       : {result.federated:.3f} (macro-F1 {result.federated_f1:.3f})")
    print(
        f"federated + DP accuracy  : {result.federated_dp:.3f} "
        f"(epsilon = {result.epsilon:.2f}, delta = 1e-5)"
    )
    print(
        f"centralised accuracy     : {result.centralised:.3f} "
        f"(macro-F1 {result.centralised_f1:.3f})"
    )
    per_local = {k: round(v, 3) for k, v in result.per_client_local.items()}
    print("per-device local accuracy:", per_local)

    # ------------------------------------------------------------------ #
    print("\n=== Federated KiNETGAN (weight averaging across two sites) ===")
    rng = np.random.default_rng(args.seed)
    parts = label_skew_partition(bundle.table, bundle.label_column, 2, rng, skew=0.5)
    config = KiNETGANConfig(
        embedding_dim=32,
        generator_dims=(64, 64),
        discriminator_dims=(64,),
        epochs=1,  # per-round local epochs are passed to run()
        batch_size=128,
        seed=args.seed,
    )
    with FederatedKiNETGAN(
        reference_table=bundle.table.head(min(1000, bundle.table.n_rows)),
        config=config,
        catalog=bundle.catalog,
        condition_columns=bundle.condition_columns,
        seed=args.seed,
        executor=args.workers,
    ) as federated_gan:
        for i, part in enumerate(parts):
            federated_gan.add_site(f"site-{i}", part)
            print(f"  site-{i}: {part.n_rows} private records")
        federated_gan.run(num_rounds=args.gan_rounds, local_epochs=3)
        synthetic = federated_gan.sample(1000, rng=rng)

    reasoner = KGReasoner(build_network_kg(bundle.catalog), field_map=bundle.catalog.field_map)
    validity = BatchValidator(reasoner).report(synthetic)
    print(f"pooled synthetic rows   : {synthetic.n_rows}")
    print(f"knowledge-graph validity: {validity.validity_rate:.3f}")
    print("label distribution      :", {
        k: round(v, 3) for k, v in synthetic.class_distribution(bundle.label_column).items()
    })


if __name__ == "__main__":
    main()
