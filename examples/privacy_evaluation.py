"""Privacy evaluation: run the paper's attack battery against two releases.

Run with::

    python examples/privacy_evaluation.py [--epochs 30]

Compares a KiNETGAN synthetic release of the lab capture against a naive
"release the real data" strategy under the three attacks of section V-C:
re-identification (30/60/90 % attacker overlap), attribute inference and
membership inference (white-box and fully-black-box).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import KiNETGAN, KiNETGANConfig
from repro.datasets import load_lab_iot
from repro.privacy import (
    AttributeInferenceAttack,
    MembershipInferenceAttack,
    ReidentificationAttack,
)
from repro.tabular import train_test_split

QUASI_IDENTIFIERS = ["protocol", "src_ip", "dst_ip", "dst_port", "src_port", "byte_count"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=2500)
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    bundle = load_lab_iot(n_records=args.records, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    members, non_members = train_test_split(
        bundle.table, 0.3, rng, stratify_column=bundle.label_column
    )

    print(f"Training KiNETGAN ({args.epochs} epochs) on {members.n_rows} member records ...")
    model = KiNETGAN(KiNETGANConfig(epochs=args.epochs, seed=args.seed))
    model.fit(members, catalog=bundle.catalog, condition_columns=bundle.condition_columns)
    synthetic = model.sample(members.n_rows, rng=rng)

    releases = {"KiNETGAN synthetic": synthetic, "raw data release": members}

    print("\n== Re-identification attack (Figure 5) ==")
    for name, release in releases.items():
        attack = ReidentificationAttack("label", quasi_identifiers=QUASI_IDENTIFIERS,
                                        seed=args.seed)
        for result in attack.run_sweep(members, release):
            print(f"  [{name}] {result}")

    print("\n== Attribute-inference attack (Figure 6) ==")
    for name, release in releases.items():
        attack = AttributeInferenceAttack(
            "label",
            quasi_identifiers=["protocol", "src_ip", "dst_ip", "packet_count",
                               "byte_count", "duration_ms"],
            seed=args.seed,
        )
        print(f"  [{name}] {attack.run(non_members, release)}")

    print("\n== Membership-inference attack (Figure 7) ==")
    for name, release in releases.items():
        attack = MembershipInferenceAttack(seed=args.seed)
        fbb = attack.run(members, non_members, release, setting="fbb")
        wb = attack.run(members, non_members, release, setting="wb")
        print(f"  [{name}] {wb}")
        print(f"  [{name}] {fbb}")

    print("\nInterpretation: the synthetic release should keep attack accuracies close")
    print("to their baselines (overlap fraction / majority class / 0.5) while the raw")
    print("release is trivially vulnerable to membership and re-identification attacks.")


if __name__ == "__main__":
    main()
