"""Distributed NIDS via synthetic-data sharing (the paper's motivating scenario).

Run with::

    python examples/distributed_nids.py [--nodes 3] [--epochs 20] [--workers 3]

``--workers N`` (N > 1) trains the per-node pipelines (local detector +
local KiNETGAN + synthetic share) in parallel on a process pool via
:mod:`repro.runtime`; ``--workers thread[:N]`` uses a zero-pickling thread
pool.  Node pipelines and the shared test table are installed into the
execution plane once (worker-resident state) and seeded results are
bit-identical to the serial run in every case.

Three IoT sites observe non-IID slices of the lab traffic (each site mostly
sees its "own" events and attacks).  No site may share raw flows.  Each site
trains a local KiNETGAN against the shared NetworkKG, publishes synthetic
traffic, and the coordinator trains the global intrusion detector on the
pooled synthetic shares.  The script compares local-only, synthetic-sharing
and centralised-raw detection quality.
"""

from __future__ import annotations

import argparse

from repro.core import KiNETGANConfig
from repro.datasets import load_lab_iot
from repro.distributed import DistributedNIDSSimulation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=3000)
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--skew", type=float, default=0.7,
                        help="non-IID label skew across nodes (0 = IID)")
    parser.add_argument("--workers", type=str, default="serial",
                        help="executor spec for the node pipelines: 0/1/'serial', "
                             "N or 'process[:N]', or 'thread[:N]'")
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    bundle = load_lab_iot(n_records=args.records, seed=args.seed)
    print(bundle.summary())

    print(f"\nRunning the distributed scenario with {args.nodes} nodes "
          f"(skew={args.skew}, {args.epochs} epochs per local generator, "
          f"workers={args.workers}) ...")
    # The with-block closes the executor's workers on every path, including
    # exceptions raised mid-run.
    with DistributedNIDSSimulation(
        bundle,
        num_nodes=args.nodes,
        non_iid_skew=args.skew,
        classifier="decision_tree",
        config=KiNETGANConfig(epochs=args.epochs, seed=args.seed),
        seed=args.seed,
        executor=args.workers,
    ) as simulation:
        result = simulation.run(share_size=600)

    print("\nPer-node local detector accuracy (no sharing):")
    for node_id, accuracy in result.per_node_local.items():
        validity = result.share_validity.get(node_id)
        validity_text = f", share KG-validity {validity:.2f}" if validity is not None else ""
        print(f"  {node_id}: accuracy {accuracy:.3f}{validity_text}")

    print("\nDeployment comparison:")
    print(f"  {result}")
    print("\nSharing knowledge-infused synthetic traffic recovers most of the macro-F1")
    print("that non-IID local training loses, without any raw flow leaving a device.")


if __name__ == "__main__":
    main()
