"""Tour of the knowledge pipeline: ontology -> NetworkKG -> reasoner -> rules.

Run with::

    python examples/knowledge_graph_tour.py

Shows how the UCO-extended ontology and the lab catalog combine into the
NetworkKG, what validity queries the reasoner answers (including the paper's
CVE-1999-0003 port-range example), and how invalid synthetic records are
flagged.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import load_lab_iot
from repro.knowledge import (
    BatchValidator,
    KGReasoner,
    build_network_kg,
    default_network_ontology,
)


def main() -> None:
    ontology = default_network_ontology()
    print(f"Ontology: {len(ontology.classes)} classes, {len(ontology.properties)} properties")
    print("  NetworkEvent properties:",
          [p.name for p in ontology.properties_of("NetworkEvent")])

    bundle = load_lab_iot(n_records=2000, seed=3)
    graph = build_network_kg(bundle.catalog)
    print(f"\n{graph}")
    print("  predicates:", sorted(graph.predicates()))

    reasoner = KGReasoner(graph, field_map=bundle.catalog.field_map)
    print("\nEvent types known to the KG:", reasoner.event_names())
    print("Attack events:", reasoner.attack_events())

    print("\nThe paper's running example -- CVE-1999-0003:")
    print("  valid protocols:", reasoner.valid_protocols("cve_1999_0003"))
    print("  valid destination port range:", reasoner.destination_port_range("cve_1999_0003"))
    print("  valid destination IPs:", reasoner.valid_destination_ips("cve_1999_0003"))

    valid = {
        "event_type": "cve_1999_0003", "protocol": "TCP", "src_ip": "192.168.1.66",
        "dst_ip": "192.168.1.10", "dst_port": 33000, "src_port": 40000,
    }
    invalid = dict(valid, dst_port=80)
    print("\n  record with dst_port=33000 valid?", reasoner.is_valid(valid))
    print("  record with dst_port=80 valid?", reasoner.is_valid(invalid))
    for violation in reasoner.violations(invalid):
        print("   violation:", violation)

    rules = reasoner.to_rule_set()
    print(f"\nCompiled declarative rule set: {len(rules)} rules")

    validator = BatchValidator(reasoner)
    report = validator.report(bundle.table)
    print("\nValidity of the real capture:", report)

    rng = np.random.default_rng(0)
    records = bundle.table.sample(200, rng).to_records()
    for record in records[:100]:
        record["dst_port"] = int(rng.integers(1, 65535))
    from repro.tabular import Table

    corrupted = Table.from_records(bundle.schema, records)
    print("Validity after corrupting half of the ports:")
    print(validator.report(corrupted))


if __name__ == "__main__":
    main()
