"""Quickstart: train KiNETGAN on the lab IoT capture and inspect the output.

Run with::

    python examples/quickstart.py [--records 3000] [--epochs 40]

The script loads the simulated lab capture, builds the NetworkKG from its
catalog, trains KiNETGAN, samples a synthetic table, and prints fidelity,
knowledge-graph validity and downstream NIDS accuracy.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import KiNETGAN, KiNETGANConfig
from repro.datasets import load_lab_iot
from repro.fidelity import evaluate_fidelity
from repro.nids import evaluate_utility
from repro.tabular import train_test_split


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=3000, help="size of the simulated capture")
    parser.add_argument("--epochs", type=int, default=40, help="KiNETGAN training epochs")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Loading the simulated lab IoT capture ...")
    bundle = load_lab_iot(n_records=args.records, seed=args.seed)
    print(bundle.summary())

    rng = np.random.default_rng(args.seed)
    train, test = train_test_split(bundle.table, 0.25, rng, stratify_column=bundle.label_column)

    config = KiNETGANConfig(epochs=args.epochs, verbose=True, log_every=10, seed=args.seed)
    model = KiNETGAN(config)
    print(f"\nTraining KiNETGAN for {args.epochs} epochs on {train.n_rows} flows ...")
    model.fit(train, catalog=bundle.catalog, condition_columns=bundle.condition_columns)

    synthetic = model.sample(train.n_rows, rng=rng)
    print("\nSynthetic label distribution:", synthetic.class_distribution("label"))

    print("\nFidelity:", evaluate_fidelity(train, synthetic, test, model="KiNETGAN"))
    print("Knowledge-graph validity of synthetic data:")
    print(model.validity_report(1000, rng=rng))

    print("\nDownstream NIDS utility (train on synthetic, test on real):")
    results = evaluate_utility(
        train.drop_columns(["event_type"]),
        test.drop_columns(["event_type"]),
        {"KiNETGAN": synthetic.drop_columns(["event_type"])},
        bundle.label_column,
        classifiers=("decision_tree", "naive_bayes"),
    )
    for result in results:
        print(f"  {result.as_row()}")

    print("\nConditional generation of attack traffic only:")
    attacks = model.sample(200, conditions={"event_type": "traffic_flooding"}, rng=rng)
    print("  event types:", attacks.class_distribution("event_type"))


if __name__ == "__main__":
    main()
