"""Check that intra-repository markdown links resolve.

Scans the repository's markdown documentation (``README.md``,
``ROADMAP.md``, ``docs/*.md``) for ``[text](target)`` links and fails if
any relative target does not exist on disk.  External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are
skipped; a ``#fragment`` suffix on a relative target is stripped before
the existence check.

Run from the repository root (CI's docs job does):

    python scripts/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline link: [text](target).  Targets never contain spaces in
#: this repository's docs, which keeps the pattern simple and precise.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def broken_links(path: Path) -> list[str]:
    broken = []
    for target in LINK.findall(path.read_text()):
        if target.startswith(SKIP_PREFIXES):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            broken.append(target)
    return broken


def main() -> int:
    failures = 0
    for path in doc_files():
        for target in broken_links(path):
            print(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print(f"checked {len(doc_files())} markdown files: all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
