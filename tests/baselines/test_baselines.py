"""Baseline synthesizer tests: every model fits and samples on tiny data."""

from __future__ import annotations

import pytest

from repro.baselines import (
    CTGAN,
    OCTGAN,
    PATEGAN,
    TVAE,
    IndependentSampler,
    TableGAN,
    baseline_classes,
)
from repro.core.config import KiNETGANConfig


def _fast_config() -> KiNETGANConfig:
    return KiNETGANConfig(
        embedding_dim=12,
        generator_dims=(24,),
        discriminator_dims=(24,),
        epochs=2,
        batch_size=64,
        seed=0,
    )


@pytest.mark.parametrize("name", ["CTGAN", "OCTGAN", "TVAE", "TABLEGAN", "PATEGAN", "INDEPENDENT"])
def test_every_baseline_fits_and_samples(name, tiny_table):
    cls = baseline_classes()[name]
    if name == "INDEPENDENT":
        model = cls()
    elif name == "PATEGAN":
        model = cls(_fast_config(), num_teachers=3)
    else:
        model = cls(_fast_config())
    kwargs = {"condition_columns": ["proto", "label"]} if name in ("CTGAN", "OCTGAN") else {}
    model.fit(tiny_table, **kwargs)
    synthetic = model.sample(100)
    assert synthetic.n_rows == 100
    assert synthetic.schema.names == tiny_table.schema.names
    # Values stay inside the schema domains.
    for spec in tiny_table.schema:
        if spec.is_categorical:
            assert set(synthetic.column(spec.name)).issubset(set(spec.categories))


def test_registry_covers_all_paper_baselines():
    assert set(baseline_classes()) == {
        "CTGAN", "OCTGAN", "TVAE", "TABLEGAN", "PATEGAN", "INDEPENDENT",
    }


class TestCTGAN:
    def test_knowledge_is_disabled(self, tiny_table):
        model = CTGAN(_fast_config())
        assert model.config.use_knowledge_discriminator is False
        assert model.config.lambda_knowledge == 0.0
        # Passing a catalog is silently ignored rather than an error.
        model.fit(tiny_table, catalog=None, condition_columns=["label"])
        assert model.trainer.kg_discriminator is None

    def test_conditional_sampling_supported(self, tiny_table):
        model = CTGAN(_fast_config()).fit(tiny_table, condition_columns=["label"])
        synthetic = model.sample(80, conditions={"label": "attack"})
        assert synthetic.class_distribution("label").get("attack", 0) > 0.5


class TestOCTGAN:
    def test_networks_contain_ode_blocks(self, tiny_table):
        from repro.neural.ode import ODEBlock

        model = OCTGAN(_fast_config(), ode_steps=2).fit(tiny_table, condition_columns=["label"])
        generator_layers = model.trainer.generator.network.layers
        discriminator_layers = model.trainer.discriminator.network.layers
        assert any(isinstance(layer, ODEBlock) for layer in generator_layers)
        assert any(isinstance(layer, ODEBlock) for layer in discriminator_layers)


class TestTVAE:
    def test_loss_decreases(self, tiny_table):
        config = _fast_config().with_overrides(epochs=8)
        model = TVAE(config).fit(tiny_table)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_conditions_rejected(self, tiny_table):
        model = TVAE(_fast_config()).fit(tiny_table)
        with pytest.raises(ValueError):
            model.sample(10, conditions={"label": "attack"})


class TestTableGAN:
    def test_label_column_auto_detected(self, tiny_table):
        model = TableGAN(_fast_config()).fit(tiny_table)
        assert model.label_column == "label"

    def test_uses_minmax_encoding(self, tiny_table):
        model = TableGAN(_fast_config()).fit(tiny_table)
        assert model.config.continuous_encoding == "minmax"
        assert model.transformer.column_info("bytes").dim == 1


class TestPATEGAN:
    def test_epsilon_accumulates(self, tiny_table):
        model = PATEGAN(_fast_config(), num_teachers=3, laplace_scale=1.0)
        model.fit(tiny_table)
        assert model.epsilon_spent > 0
        assert len(model.teachers) == 3

    def test_too_few_teachers_rejected(self):
        with pytest.raises(ValueError):
            PATEGAN(num_teachers=1)


class TestIndependentSampler:
    def test_marginals_preserved(self, tiny_table, rng):
        model = IndependentSampler(seed=1).fit(tiny_table)
        synthetic = model.sample(2000, rng=rng)
        real_share = tiny_table.class_distribution("label")["attack"]
        synth_share = synthetic.class_distribution("label").get("attack", 0.0)
        assert abs(real_share - synth_share) < 0.06

    def test_respects_schema_bounds(self, tiny_table, rng):
        model = IndependentSampler(jitter=0.5, seed=1).fit(tiny_table)
        synthetic = model.sample(500, rng=rng)
        assert synthetic.column("bytes").astype(float).min() >= 0.0

    def test_sample_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            IndependentSampler().sample(5)
