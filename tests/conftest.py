"""Shared fixtures for the test suite.

Fixtures that are expensive (dataset bundles, fitted transformers, a trained
KiNETGAN) are session-scoped so the integration tests reuse them instead of
re-fitting models per test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import KiNETGANConfig
from repro.datasets import load_lab_iot, load_unsw_nb15
from repro.tabular.schema import ColumnSpec, TableSchema
from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_schema() -> TableSchema:
    return TableSchema(
        [
            ColumnSpec("proto", "categorical", categories=("tcp", "udp")),
            ColumnSpec("service", "categorical", categories=("http", "dns", "ssh")),
            ColumnSpec("bytes", "continuous", minimum=0.0, maximum=10_000.0),
            ColumnSpec("duration", "continuous", minimum=0.0),
            ColumnSpec("label", "categorical", categories=("normal", "attack"), sensitive=True),
        ]
    )


def _make_tiny_records(n: int, seed: int) -> list[dict]:
    generator = np.random.default_rng(seed)
    records = []
    for _ in range(n):
        is_attack = generator.uniform() < 0.2
        service = ("ssh" if is_attack else ["http", "dns"][generator.integers(0, 2)])
        proto = "udp" if service == "dns" else "tcp"
        records.append(
            {
                "proto": proto,
                "service": service,
                "bytes": float(generator.lognormal(6 if is_attack else 4, 0.5)),
                "duration": float(generator.lognormal(1.0, 0.8)),
                "label": "attack" if is_attack else "normal",
            }
        )
    return records


@pytest.fixture
def tiny_table(tiny_schema) -> Table:
    return Table.from_records(tiny_schema, _make_tiny_records(300, seed=7))


@pytest.fixture
def tiny_table_alt(tiny_schema) -> Table:
    """A second draw from the same process (used as a 'synthetic' stand-in)."""
    return Table.from_records(tiny_schema, _make_tiny_records(300, seed=99))


@pytest.fixture
def fitted_transformer(tiny_table) -> DataTransformer:
    return DataTransformer(max_modes=4, seed=0).fit(tiny_table)


@pytest.fixture
def fast_config() -> KiNETGANConfig:
    """A configuration small enough for per-test GAN training."""
    return KiNETGANConfig(
        embedding_dim=16,
        generator_dims=(32,),
        discriminator_dims=(32,),
        epochs=2,
        batch_size=64,
        knowledge_negatives_per_batch=16,
        seed=0,
    )


@pytest.fixture(scope="session")
def lab_bundle_small():
    return load_lab_iot(n_records=900, seed=13)


@pytest.fixture(scope="session")
def unsw_bundle_small():
    return load_unsw_nb15(n_records=900, seed=17)
