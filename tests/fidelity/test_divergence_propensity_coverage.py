"""Tests for the extended fidelity battery (JSD / KS, pMSE, coverage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fidelity.coverage import (
    category_coverage,
    coverage_report,
    duplicate_rate,
    range_coverage,
)
from repro.fidelity.divergence import (
    column_jsd,
    column_ks,
    jensen_shannon_distance,
    ks_statistic,
    per_column_divergences,
)
from repro.fidelity.propensity import propensity_score
from repro.tabular.table import Table


@pytest.fixture(scope="module")
def real(lab_bundle_small):
    return lab_bundle_small.table.head(500)


@pytest.fixture(scope="module")
def identical(real):
    return real.select_rows(np.arange(real.n_rows))


@pytest.fixture(scope="module")
def shuffled_copy(real):
    """Same marginals as the real table, different row order."""
    rng = np.random.default_rng(0)
    return real.shuffle(rng)


@pytest.fixture(scope="module")
def corrupted(real):
    """A degenerate 'synthetic' table: one event type, constant continuous values."""
    records = real.to_records()
    for record in records:
        record["event_type"] = "dns_lookup"
        record["protocol"] = "UDP"
        record["packet_count"] = 2.0
        record["byte_count"] = 160.0
    return Table.from_records(real.schema, records)


class TestDivergences:
    def test_identical_tables_have_zero_divergence(self, real, identical):
        assert jensen_shannon_distance(real, identical) == pytest.approx(0.0, abs=1e-9)
        assert ks_statistic(real, identical) == pytest.approx(0.0, abs=1e-9)

    def test_corrupted_table_has_large_divergence(self, real, corrupted, identical):
        # Only four of the ten columns are corrupted, so the column-averaged
        # divergences land around 0.15-0.3 rather than near 1.
        assert jensen_shannon_distance(real, corrupted) > 0.1
        assert ks_statistic(real, corrupted) > 0.1
        assert jensen_shannon_distance(real, corrupted) > jensen_shannon_distance(real, identical)

    def test_jsd_bounded_by_one(self, real, corrupted):
        divergences = per_column_divergences(real, corrupted)
        for entry in divergences.values():
            assert 0.0 <= entry["jsd"] <= 1.0
            assert 0.0 <= entry["ks"] <= 1.0

    def test_column_level_metrics_identify_the_broken_column(self, real, corrupted):
        assert column_jsd(real, corrupted, "event_type") > column_jsd(real, corrupted, "dst_port")
        assert column_ks(real, corrupted, "packet_count") > 0.5

    def test_schema_mismatch_rejected(self, real):
        smaller = real.select_columns(["event_type", "protocol"])
        with pytest.raises(ValueError):
            jensen_shannon_distance(real, smaller)

    def test_empty_tables_rejected(self, real):
        empty = Table.empty(real.schema)
        with pytest.raises(ValueError):
            column_jsd(real, empty, "event_type")
        with pytest.raises(ValueError):
            column_ks(real, empty, "packet_count")


class TestPropensity:
    def test_identical_distributions_near_null(self, real, shuffled_copy):
        result = propensity_score(real, shuffled_copy, max_rows=400, epochs=40, seed=0)
        assert result.pmse < 0.5 * result.null_pmse
        assert result.distinguishing_accuracy < 0.75

    def test_corrupted_synthetic_is_distinguishable(self, real, corrupted):
        result = propensity_score(real, corrupted, max_rows=400, epochs=40, seed=0)
        assert result.distinguishing_accuracy > 0.8
        assert result.pmse_ratio > 0.5

    def test_pmse_ratio_bounds(self, real, shuffled_copy):
        result = propensity_score(real, shuffled_copy, max_rows=200, epochs=20, seed=1)
        assert 0.0 <= result.pmse_ratio <= 1.0 + 1e-6

    def test_schema_mismatch_and_empty_rejected(self, real):
        with pytest.raises(ValueError):
            propensity_score(real, real.select_columns(["event_type"]))
        with pytest.raises(ValueError):
            propensity_score(real, Table.empty(real.schema))


class TestCoverage:
    def test_identical_tables_have_full_coverage(self, real, identical):
        report = coverage_report(real, identical)
        assert report.category_coverage == pytest.approx(1.0)
        assert report.range_coverage == pytest.approx(1.0)
        assert report.duplicate_rate == pytest.approx(1.0)

    def test_mode_collapsed_table_has_low_category_coverage(self, real, corrupted):
        per_column = category_coverage(real, corrupted)
        assert per_column["event_type"] < 0.2
        assert per_column["protocol"] < 0.6

    def test_constant_columns_shrink_range_coverage(self, real, corrupted):
        per_column = range_coverage(real, corrupted)
        assert per_column["packet_count"] < 0.1

    def test_disjoint_rows_have_zero_duplicate_rate(self, real):
        records = real.head(100).to_records()
        for record in records:
            record["src_port"] = 40000.0  # outside any real row's tolerance
            record["packet_count"] = float(record["packet_count"]) + 5000.0
        shifted = Table.from_records(real.schema, records)
        assert duplicate_rate(real, shifted) < 0.05

    def test_report_aggregates_per_column_values(self, real, corrupted):
        report = coverage_report(real, corrupted)
        assert set(report.per_column_category) == set(real.schema.categorical_names)
        assert set(report.per_column_range) == set(real.schema.continuous_names)
        assert report.category_coverage == pytest.approx(
            float(np.mean(list(report.per_column_category.values())))
        )

    def test_schema_mismatch_rejected(self, real):
        with pytest.raises(ValueError):
            coverage_report(real, real.select_columns(["event_type"]))
