"""Fidelity metric tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fidelity import (
    association_similarity,
    column_emd,
    emd_distance,
    evaluate_fidelity,
    likelihood_fitness,
    mixed_distance,
    per_column_distances,
)
from repro.tabular.schema import ColumnSpec, TableSchema
from repro.tabular.table import Table


class TestDistances:
    def test_identical_tables_have_zero_distance(self, tiny_table):
        assert emd_distance(tiny_table, tiny_table) == pytest.approx(0.0, abs=1e-12)
        assert mixed_distance(tiny_table, tiny_table) == pytest.approx(0.0, abs=1e-12)

    def test_same_process_tables_have_small_distance(self, tiny_table, tiny_table_alt):
        assert emd_distance(tiny_table, tiny_table_alt) < 0.1
        assert mixed_distance(tiny_table, tiny_table_alt) < 0.3

    def test_shifted_distribution_increases_distance(self, tiny_table, tiny_table_alt):
        # Shift the continuous column far away.
        shifted_columns = {
            name: tiny_table_alt.column(name).copy() for name in tiny_table_alt.schema.names
        }
        shifted_columns["bytes"] = shifted_columns["bytes"].astype(float) * 10.0
        shifted = Table(tiny_table_alt.schema, shifted_columns)
        assert emd_distance(tiny_table, shifted) > emd_distance(tiny_table, tiny_table_alt)

    def test_categorical_distance_is_total_variation(self):
        schema = TableSchema([ColumnSpec("c", "categorical", categories=("a", "b"))])
        real = Table(schema, {"c": np.asarray(["a"] * 80 + ["b"] * 20, dtype=object)})
        synth = Table(schema, {"c": np.asarray(["a"] * 20 + ["b"] * 80, dtype=object)})
        assert column_emd(real, synth, "c") == pytest.approx(0.6)

    def test_per_column_distances_cover_all_columns(self, tiny_table, tiny_table_alt):
        table = per_column_distances(tiny_table, tiny_table_alt)
        assert set(table) == set(tiny_table.schema.names)
        for entry in table.values():
            assert entry["emd"] >= 0 and entry["mixed"] >= 0

    def test_schema_mismatch_rejected(self, tiny_table):
        with pytest.raises(ValueError):
            emd_distance(tiny_table, tiny_table.select_columns(["proto", "label"]))

    def test_empty_table_rejected(self, tiny_table):
        empty = Table.empty(tiny_table.schema)
        with pytest.raises(ValueError):
            column_emd(tiny_table, empty, "bytes")


class TestLikelihood:
    def test_in_distribution_data_scores_higher(self, tiny_table, tiny_table_alt):
        shifted_columns = {
            name: tiny_table_alt.column(name).copy() for name in tiny_table_alt.schema.names
        }
        shifted_columns["bytes"] = shifted_columns["bytes"].astype(float) + 1e5
        shifted = Table(tiny_table_alt.schema, shifted_columns)
        good = likelihood_fitness(tiny_table, tiny_table, tiny_table_alt)
        bad = likelihood_fitness(tiny_table, tiny_table, shifted)
        assert good["l_syn"] > bad["l_syn"]

    def test_returns_finite_values(self, tiny_table, tiny_table_alt):
        result = likelihood_fitness(tiny_table, tiny_table_alt, tiny_table_alt)
        assert np.isfinite(result["l_syn"]) and np.isfinite(result["l_test"])


class TestAssociation:
    def test_identical_tables_have_similarity_one(self, tiny_table):
        assert association_similarity(tiny_table, tiny_table) == pytest.approx(1.0)

    def test_shuffled_columns_reduce_similarity(self, tiny_table, rng):
        # Independently permuting a column destroys its associations.
        shuffled_columns = {
            name: tiny_table.column(name).copy() for name in tiny_table.schema.names
        }
        shuffled_columns["service"] = rng.permutation(shuffled_columns["service"])
        shuffled_columns["bytes"] = rng.permutation(shuffled_columns["bytes"])
        shuffled = Table(tiny_table.schema, shuffled_columns)
        assert association_similarity(tiny_table, shuffled) < 1.0

    def test_bounded_between_zero_and_one(self, tiny_table, tiny_table_alt):
        value = association_similarity(tiny_table, tiny_table_alt)
        assert 0.0 <= value <= 1.0


class TestReport:
    def test_report_fields_and_row(self, tiny_table, tiny_table_alt):
        report = evaluate_fidelity(tiny_table, tiny_table_alt, model="SAME-PROCESS")
        row = report.as_row()
        assert row["model"] == "SAME-PROCESS"
        assert row["emd"] < 0.1
        assert 0 <= row["association"] <= 1
        assert "Lsyn" in str(report) or "SAME-PROCESS" in str(report)

    def test_report_ranks_better_model_lower(self, tiny_table, tiny_table_alt, rng):
        # A "model" that outputs uniform noise over the schema should be worse.
        noise_columns = {}
        for spec in tiny_table.schema:
            if spec.is_categorical:
                noise_columns[spec.name] = rng.choice(
                    np.asarray(spec.categories, dtype=object), size=300
                )
            else:
                noise_columns[spec.name] = rng.uniform(0, 1e4, size=300)
        noise_table = Table(tiny_table.schema, noise_columns)
        good = evaluate_fidelity(tiny_table, tiny_table_alt, model="good")
        bad = evaluate_fidelity(tiny_table, noise_table, model="bad")
        assert good.emd < bad.emd
        assert good.mixed < bad.mixed
