"""A federated KiNETGAN round under ``process:2`` yields a connected trace.

The acceptance shape of the observability plane: the coordinator's
``federated.round`` span and the worker-side ``federated.site_round``
spans -- executed in pool worker processes -- land in one JSONL file as a
single trace, with every site span parented to its round span.
"""

import numpy as np
import pytest

from repro.core import KiNETGANConfig
from repro.datasets import load_lab_iot
from repro.federated.kinetgan import FederatedKiNETGAN
from repro.federated.partition import label_skew_partition
from repro.obs import JsonlSink, read_jsonl, span, tracing

CONFIG = KiNETGANConfig(
    embedding_dim=8,
    generator_dims=(16,),
    discriminator_dims=(16,),
    epochs=1,
    batch_size=32,
    knowledge_negatives_per_batch=8,
    max_modes=3,
    seed=0,
)


@pytest.fixture(scope="module")
def bundle():
    return load_lab_iot(n_records=900, seed=13)


def _run_rounds(bundle, executor, trace_path, num_rounds=2):
    table = bundle.table.head(300)
    rng = np.random.default_rng(0)
    parts = label_skew_partition(table, "label", 2, rng, skew=0.5, min_rows=20)
    with tracing(JsonlSink(trace_path)):
        with span("federated.fit"):
            with FederatedKiNETGAN(
                reference_table=table.head(150),
                config=CONFIG,
                catalog=bundle.catalog,
                condition_columns=bundle.condition_columns,
                seed=0,
                executor=executor,
            ) as fed:
                for i, part in enumerate(parts):
                    fed.add_site(f"site-{i}", part)
                for _ in range(num_rounds):
                    fed.run_round(local_epochs=1)
                return fed.global_states()


def test_process_round_produces_connected_trace(bundle, tmp_path):
    path = tmp_path / "federated.jsonl"
    _run_rounds(bundle, "process:2", path)
    events = read_jsonl(path)

    root = next(event for event in events if event["name"] == "federated.fit")
    rounds = [event for event in events if event["name"] == "federated.round"]
    sites = [event for event in events if event["name"] == "federated.site_round"]

    # One trace end to end: every span shares the root's trace id.
    assert {event["trace_id"] for event in events} == {root["trace_id"]}
    assert len(rounds) == 2
    assert all(event["parent_id"] == root["span_id"] for event in rounds)

    # Two sites per round, each parented to its own round span ...
    round_span_ids = {event["span_id"] for event in rounds}
    assert len(sites) == 4
    assert all(event["parent_id"] in round_span_ids for event in sites)
    by_round = {span_id: 0 for span_id in round_span_ids}
    for event in sites:
        by_round[event["parent_id"]] += 1
    assert sorted(by_round.values()) == [2, 2]

    # ... and really executed in pool workers, not the coordinator.
    assert all(event["pid"] != root["pid"] for event in sites)

    # Engine epoch spans from inside the workers join the same trace too.
    epochs = [event for event in events if event["name"] == "engine.epoch"]
    assert epochs and all(event["trace_id"] == root["trace_id"] for event in epochs)


def test_tracing_leaves_federated_round_bit_identical(bundle, tmp_path):
    untraced_gen, untraced_disc = None, None

    table = bundle.table.head(300)
    rng = np.random.default_rng(0)
    parts = label_skew_partition(table, "label", 2, rng, skew=0.5, min_rows=20)

    def run(traced: bool):
        with FederatedKiNETGAN(
            reference_table=table.head(150),
            config=CONFIG,
            catalog=bundle.catalog,
            condition_columns=bundle.condition_columns,
            seed=0,
            executor=None,
        ) as fed:
            for i, part in enumerate(parts):
                fed.add_site(f"site-{i}", part)
            fed.run(num_rounds=1, local_epochs=1)
            return fed.global_states()

    baseline_gen, baseline_disc = run(traced=False)
    with tracing(JsonlSink(tmp_path / "t.jsonl")):
        with span("outer"):
            traced_gen, traced_disc = run(traced=True)

    for name in baseline_gen:
        np.testing.assert_array_equal(baseline_gen[name], traced_gen[name])
    for name in baseline_disc:
        np.testing.assert_array_equal(baseline_disc[name], traced_disc[name])
