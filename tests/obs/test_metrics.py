"""MetricsRegistry: instruments, thread safety, and the two exporters."""

import math
import re
import threading

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry, default_registry, set_default_registry

# One exposition line: name{labels} value  (labels optional).
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" (-?[0-9][0-9.eE+-]*|[+-]Inf|NaN)$"
)
_META_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def assert_valid_exposition(text: str) -> None:
    """Every line is a HELP/TYPE comment or a well-formed sample line."""
    assert text.endswith("\n")
    for line in text.rstrip("\n").splitlines():
        if line.startswith("#"):
            assert _META_RE.match(line), line
        else:
            assert _SAMPLE_RE.match(line), line


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_children_are_cached_per_label_set(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", labels={"k": "a"})
        again = registry.counter("c_total", labels={"k": "a"})
        b = registry.counter("c_total", labels={"k": "b"})
        assert a is again and a is not b

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(5)
        gauge.dec(1.5)
        gauge.inc()
        assert gauge.value == 4.5

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 7.0):
            histogram.observe(value)
        assert histogram.cumulative() == [(0.1, 1), (1.0, 3), (math.inf, 4)]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(8.05)

    def test_histogram_boundary_value_lands_in_its_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0,))
        histogram.observe(1.0)  # le="1" is inclusive, Prometheus-style
        assert histogram.cumulative()[0] == (1.0, 1)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("9starts_with_digit")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labels={"bad-label": "x"})

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestExposition:
    def test_full_document_is_valid_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total", help="second family").inc(2)
        registry.counter("a_total", help="first family", labels={"k": "v"}).inc()
        registry.gauge("z_gauge").set(-1.25)
        registry.histogram("h_seconds", help="latency").observe(0.2)
        text = registry.prometheus_text()
        assert_valid_exposition(text)
        names = [line.split()[2] for line in text.splitlines() if line.startswith("# TYPE")]
        assert names == sorted(names)
        assert 'a_total{k="v"} 1' in text
        assert "z_gauge -1.25" in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"k": 'a"b\\c\nd'}).inc()
        text = registry.prometheus_text()
        assert 'k="a\\"b\\\\c\\nd"' in text
        assert_valid_exposition(text)

    def test_empty_registry_exports_empty_document(self):
        assert MetricsRegistry().prometheus_text() == ""

    def test_snapshot_round_trips_through_json(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c_total", labels={"k": "v"}).inc(3)
        registry.histogram("h_seconds", buckets=(0.5,)).observe(0.1)
        snapshot = json.loads(registry.snapshot_json())
        assert snapshot["c_total"]["kind"] == "counter"
        assert snapshot["c_total"]["samples"][0] == {"labels": {"k": "v"}, "value": 3}
        buckets = snapshot["h_seconds"]["samples"][0]["buckets"]
        assert buckets[-1]["le"] == "+Inf"
        assert buckets[-1]["count"] == 1

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestDefaultRegistry:
    def test_swap_and_restore(self):
        mine = MetricsRegistry()
        previous = set_default_registry(mine)
        try:
            assert default_registry() is mine
        finally:
            set_default_registry(previous)
        assert default_registry() is previous

    def test_value_lookup(self):
        registry = MetricsRegistry()
        assert registry.value("missing_total") is None
        registry.counter("c_total", labels={"k": "v"}).inc(4)
        assert registry.value("c_total", {"k": "v"}) == 4
        assert registry.value("c_total", {"k": "other"}) is None
