"""Trace-context propagation across the serial / thread / process matrix.

The contract: a span opened inside a work unit dispatched through
``Executor.map`` or ``Executor.map_tasks`` while the coordinator holds an
open span must join the coordinator's trace, parented to the dispatching
span -- in-process or across a process pool (where the context and the
JSONL sink path ride the pickled task envelope).
"""

import pytest

from repro.obs import JsonlSink, MemorySink, read_jsonl, span, tracing
from repro.runtime import (
    ProcessExecutor,
    SerialExecutor,
    TaskPolicy,
    ThreadExecutor,
)

MATRIX = [
    pytest.param(SerialExecutor, id="serial"),
    pytest.param(lambda: ThreadExecutor(max_workers=2), id="thread"),
    pytest.param(lambda: ProcessExecutor(max_workers=2), id="process"),
]


def traced_work(payload: int) -> int:
    """Module-level (picklable) work unit that opens its own span."""
    with span("work", payload=payload):
        return payload * 10


def _events(executor_factory, tmp_path, use_map_tasks: bool):
    path = tmp_path / "trace.jsonl"
    with tracing(JsonlSink(path)):
        with span("dispatch"):
            with executor_factory() as executor:
                if use_map_tasks:
                    results = executor.map_tasks(traced_work, [1, 2, 3], TaskPolicy())
                    values = [result.value for result in results]
                else:
                    values = executor.map(traced_work, [1, 2, 3])
    assert values == [10, 20, 30]
    return read_jsonl(path)


@pytest.mark.parametrize("executor_factory", MATRIX)
@pytest.mark.parametrize("use_map_tasks", [False, True], ids=["map", "map_tasks"])
def test_worker_spans_parent_to_dispatching_span(executor_factory, tmp_path, use_map_tasks):
    events = _events(executor_factory, tmp_path, use_map_tasks)
    dispatch = next(event for event in events if event["name"] == "dispatch")
    work = [event for event in events if event["name"] == "work"]
    assert len(work) == 3
    assert {event["trace_id"] for event in work} == {dispatch["trace_id"]}
    assert all(event["parent_id"] == dispatch["span_id"] for event in work)
    payloads = sorted(event["attrs"]["payload"] for event in work)
    assert payloads == [1, 2, 3]


def test_process_worker_spans_record_worker_pids(tmp_path):
    events = _events(lambda: ProcessExecutor(max_workers=2), tmp_path, use_map_tasks=False)
    dispatch = next(event for event in events if event["name"] == "dispatch")
    work = [event for event in events if event["name"] == "work"]
    # The spans really were written by pool workers, not the coordinator.
    assert all(event["pid"] != dispatch["pid"] for event in work)


def test_no_wrapping_when_tracing_disabled():
    with SerialExecutor() as executor:
        assert executor.map(traced_work, [1]) == [10]


def test_no_wrapping_without_an_open_span():
    # Tracing on but no current span: nothing to propagate, workers start
    # fresh traces of their own.
    sink = MemorySink()
    with tracing(sink):
        with SerialExecutor() as executor:
            executor.map(traced_work, [1, 2])
    roots = [event for event in sink.events if event["name"] == "work"]
    assert len(roots) == 2
    assert all(event["parent_id"] is None for event in roots)
    assert roots[0]["trace_id"] != roots[1]["trace_id"]


def test_map_tasks_retry_stays_in_trace(tmp_path):
    from repro.runtime import FaultInjector

    path = tmp_path / "trace.jsonl"
    with tracing(JsonlSink(path)):
        with span("dispatch"):
            with SerialExecutor() as executor:
                # Fail the first attempt of task 0 only; the retry runs clean.
                executor.install_faults(FaultInjector(schedule={(0, 0): "error"}))
                results = executor.map_tasks(
                    traced_work, [5], TaskPolicy(retries=2)
                )
    assert results[0].ok and results[0].value == 50
    events = read_jsonl(path)
    dispatch = next(event for event in events if event["name"] == "dispatch")
    work = [event for event in events if event["name"] == "work"]
    assert work and all(event["parent_id"] == dispatch["span_id"] for event in work)
