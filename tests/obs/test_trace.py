"""Span tracing: determinism, nesting, sinks, and the disabled fast path."""

import itertools
import json
import threading

from repro.obs import (
    JsonlSink,
    MemorySink,
    TraceContext,
    activate,
    current_span_id,
    current_trace_id,
    propagation_context,
    read_jsonl,
    span,
    tracing,
    tracing_enabled,
)


def deterministic(prefix: str = "id"):
    """(clock, ids) pair producing stable, readable trace output."""
    ticks = itertools.count()
    serial = itertools.count()
    return (lambda: float(next(ticks))), (lambda: f"{prefix}{next(serial)}")


class TestDisabledFastPath:
    def test_span_is_a_shared_noop_when_disabled(self):
        assert not tracing_enabled()
        first = span("anything", attr=1)
        second = span("else")
        assert first is second  # one shared object: no per-call allocation
        with first as handle:
            handle.set_attr("ignored", True)
        assert current_trace_id() is None

    def test_propagation_context_is_none_when_disabled(self):
        assert propagation_context() is None


class TestSpans:
    def test_parenting_and_deterministic_output(self):
        sink = MemorySink()
        clock, ids = deterministic()
        with tracing(sink, clock=clock, ids=ids):
            with span("root", kind="test"):
                with span("child"):
                    pass
        child, root = sink.events
        assert root["name"] == "root"
        assert root["parent_id"] is None
        assert root["trace_id"] == "id0"
        assert root["attrs"] == {"kind": "test"}
        assert child["trace_id"] == root["trace_id"]
        assert child["parent_id"] == root["span_id"]
        assert (root["start"], root["end"]) == (0.0, 3.0)
        assert (child["start"], child["end"]) == (1.0, 2.0)
        assert child["duration"] == 1.0

    def test_siblings_share_a_parent(self):
        sink = MemorySink()
        with tracing(sink):
            with span("root"):
                with span("a"):
                    pass
                with span("b"):
                    pass
        by_name = {event["name"]: event for event in sink.events}
        assert by_name["a"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["b"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["a"]["span_id"] != by_name["b"]["span_id"]

    def test_error_status_recorded_and_exception_propagates(self):
        sink = MemorySink()
        try:
            with tracing(sink):
                with span("boom"):
                    raise ValueError("bad")
        except ValueError:
            pass
        else:  # pragma: no cover - the raise must escape
            raise AssertionError("exception swallowed")
        (event,) = sink.events
        assert event["status"] == "error"
        assert event["error"] == "ValueError: bad"

    def test_set_attr_lands_in_the_event(self):
        sink = MemorySink()
        with tracing(sink):
            with span("s") as handle:
                handle.set_attr("rows", 42)
        assert sink.events[0]["attrs"] == {"rows": 42}

    def test_tracing_context_manager_restores_disabled_state(self):
        assert not tracing_enabled()
        with tracing(MemorySink()):
            assert tracing_enabled()
        assert not tracing_enabled()

    def test_current_ids_visible_inside_span(self):
        with tracing(MemorySink()):
            assert current_trace_id() is None
            with span("s"):
                assert current_trace_id() is not None
                assert current_span_id() is not None
            assert current_trace_id() is None


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        clock, ids = deterministic()
        with tracing(JsonlSink(path), clock=clock, ids=ids):
            with span("outer"):
                with span("inner"):
                    pass
        events = read_jsonl(path)
        assert [event["name"] for event in events] == ["inner", "outer"]
        # Each line is one standalone JSON object (multiprocess-appendable).
        lines = path.read_text().strip().splitlines()
        assert all(json.loads(line)["trace_id"] == "id0" for line in lines)

    def test_threads_each_get_their_own_parent_chain(self):
        sink = MemorySink()
        with tracing(sink):
            with span("root"):
                context = propagation_context()

                def worker(slot):
                    with activate(context):
                        with span(f"worker-{slot}"):
                            pass

                threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        root = next(event for event in sink.events if event["name"] == "root")
        workers = [event for event in sink.events if event["name"].startswith("worker-")]
        assert len(workers) == 4
        assert all(event["parent_id"] == root["span_id"] for event in workers)
        assert all(event["trace_id"] == root["trace_id"] for event in workers)


class TestPropagationPrimitives:
    def test_context_carries_trace_span_and_sink_path(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing(JsonlSink(path)):
            with span("root"):
                context = propagation_context()
        assert isinstance(context, TraceContext)
        assert context.sink_path == str(path)

    def test_memory_sink_context_has_no_path(self):
        with tracing(MemorySink()):
            with span("root"):
                context = propagation_context()
        assert context.sink_path is None

    def test_activate_installs_temporary_tracer_when_disabled(self, tmp_path):
        path = tmp_path / "t.jsonl"
        context = TraceContext("trace-1", "span-1", str(path))
        assert not tracing_enabled()
        with activate(context):
            assert tracing_enabled()
            with span("adopted"):
                pass
        assert not tracing_enabled()
        (event,) = read_jsonl(path)
        assert event["trace_id"] == "trace-1"
        assert event["parent_id"] == "span-1"

    def test_context_is_picklable(self):
        import pickle

        context = TraceContext("t", "s", "/tmp/x.jsonl")
        assert pickle.loads(pickle.dumps(context)) == context
