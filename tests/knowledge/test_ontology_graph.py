"""Ontology and knowledge-graph store tests."""

from __future__ import annotations

import pytest

from repro.knowledge.graph import KnowledgeGraph
from repro.knowledge.ontology import Ontology, default_network_ontology


class TestOntology:
    def test_default_ontology_has_network_extension(self):
        onto = default_network_ontology()
        for cls in ("NetworkEvent", "DomainURL", "Device", "EventType", "Protocol"):
            assert onto.has_class(cls)
        for prop in ("hasProtocol", "hasSourceIP", "hasDestinationPort", "allowsProtocol"):
            assert onto.has_property(prop)

    def test_subsumption(self):
        onto = default_network_ontology()
        assert onto.is_subclass_of("AttackEvent", "NetworkEvent")
        assert onto.is_subclass_of("AttackEvent", "Entity")
        assert not onto.is_subclass_of("NetworkEvent", "AttackEvent")
        assert "AttackEvent" in onto.subclasses("Indicator")

    def test_ancestors_ordering(self):
        onto = default_network_ontology()
        ancestors = onto.ancestors("AttackEvent")
        assert ancestors[0] == "NetworkEvent"
        assert ancestors[-1] == "Entity"

    def test_property_inheritance(self):
        onto = default_network_ontology()
        # AttackEvent inherits NetworkEvent's properties.
        assert onto.validate_assertion("AttackEvent", "hasProtocol")
        assert not onto.validate_assertion("Port", "hasProtocol")

    def test_duplicate_class_rejected(self):
        onto = Ontology()
        onto.add_class("A")
        with pytest.raises(ValueError):
            onto.add_class("A")

    def test_unknown_parent_rejected(self):
        onto = Ontology()
        with pytest.raises(ValueError):
            onto.add_class("B", parent="missing")

    def test_property_requires_known_domain(self):
        onto = Ontology()
        onto.add_class("A")
        with pytest.raises(ValueError):
            onto.add_property("p", "missing", "A")

    def test_properties_of_class(self):
        onto = default_network_ontology()
        names = {p.name for p in onto.properties_of("NetworkEvent")}
        assert "hasProtocol" in names and "hasSourceIP" in names


class TestKnowledgeGraph:
    def test_add_and_query_triples(self):
        graph = KnowledgeGraph()
        graph.add_triple("event:A", "allowsProtocol", "proto:TCP")
        graph.add_triple("event:A", "allowsProtocol", "proto:UDP")
        graph.add_triple("event:B", "allowsProtocol", "proto:TCP")
        assert len(graph) == 3
        assert set(graph.objects("event:A", "allowsProtocol")) == {"proto:TCP", "proto:UDP"}
        assert set(graph.subjects("allowsProtocol", "proto:TCP")) == {"event:A", "event:B"}

    def test_literal_objects_preserved(self):
        graph = KnowledgeGraph()
        graph.add_triple("range:x", "rangeLow", 32771)
        values = graph.objects("range:x", "rangeLow")
        assert values == [32771]
        assert isinstance(values[0], int)

    def test_types(self):
        graph = KnowledgeGraph()
        graph.add_type("device:cam", "Device")
        graph.add_type("device:plug", "Device")
        assert set(graph.entities_of_type("Device")) == {"device:cam", "device:plug"}
        assert graph.types_of("device:cam") == ["Device"]

    def test_pattern_wildcards(self):
        graph = KnowledgeGraph()
        graph.add_triple("a", "p", "x")
        graph.add_triple("a", "q", "y")
        assert len(list(graph.triples(subject="a"))) == 2
        assert len(list(graph.triples(predicate="p"))) == 1
        assert graph.has_triple("a", "q", "y")
        assert not graph.has_triple("a", "q", "z")

    def test_missing_subject_yields_nothing(self):
        graph = KnowledgeGraph()
        assert list(graph.triples(subject="nope")) == []
        assert graph.neighbors("nope") == []
        assert graph.degree("nope") == 0

    def test_empty_subject_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeGraph().add_triple("", "p", "o")

    def test_serialisation_round_trip(self, tmp_path):
        graph = KnowledgeGraph()
        graph.add_type("event:A", "EventType")
        graph.add_triple("event:A", "allowsDestinationPort", "port:443")
        graph.add_triple("portrange:A-dst", "rangeLow", 32771)
        path = tmp_path / "kg.tsv"
        graph.save(path)
        restored = KnowledgeGraph.load(path)
        assert len(restored) == len(graph)
        assert restored.objects("portrange:A-dst", "rangeLow") == [32771]
        assert restored.has_triple("event:A", "allowsDestinationPort", "port:443")

    def test_malformed_text_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeGraph.from_text("only two\tfields")

    def test_predicates_listing(self):
        graph = KnowledgeGraph()
        graph.add_triple("a", "p", "x")
        graph.add_triple("a", "q", "x")
        assert graph.predicates() == {"p", "q"}
