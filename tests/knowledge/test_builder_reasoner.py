"""NetworkKG builder, reasoner and batch-validator tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.lab_iot import lab_iot_catalog
from repro.knowledge.builder import build_network_kg
from repro.knowledge.catalog import AttackSpec, DeviceSpec, DomainCatalog, EventSpec
from repro.knowledge.reasoner import KGReasoner
from repro.knowledge.validator import BatchValidator


@pytest.fixture(scope="module")
def lab_reasoner() -> KGReasoner:
    catalog = lab_iot_catalog()
    graph = build_network_kg(catalog)
    return KGReasoner(graph, field_map=catalog.field_map)


class TestCatalog:
    def test_lab_catalog_contains_paper_entities(self):
        catalog = lab_iot_catalog()
        device_names = {d.name for d in catalog.devices}
        assert {"blink_camera", "smart_plug", "motion_sensor"} <= device_names
        assert "cve_1999_0003" in catalog.event_names
        assert "motion_detected" in catalog.event_names

    def test_destination_ips_resolve_domains(self):
        catalog = lab_iot_catalog()
        ips = catalog.destination_ips_for("motion_detected")
        assert "18.210.45.3" in ips

    def test_duplicate_devices_rejected(self):
        with pytest.raises(ValueError):
            DomainCatalog(
                name="x",
                devices=[DeviceSpec("a", "1.1.1.1"), DeviceSpec("a", "2.2.2.2")],
            )

    def test_attack_event_kind_enforced(self):
        with pytest.raises(ValueError):
            AttackSpec(name="bad", cve="CVE-0", event=EventSpec(name="e", kind="benign"))

    def test_event_port_range_order_enforced(self):
        with pytest.raises(ValueError):
            EventSpec(name="e", destination_port_range=(10, 5))


class TestBuilder:
    def test_graph_contains_expected_entity_types(self, lab_reasoner):
        graph = lab_reasoner.graph
        assert len(graph.entities_of_type("Device")) == 6
        assert len(graph.entities_of_type("EventType")) == 10
        assert len(graph.entities_of_type("Attack")) == 3
        assert len(graph.entities_of_type("Vulnerability")) == 3

    def test_cve_attack_links_to_port_range(self, lab_reasoner):
        graph = lab_reasoner.graph
        ranges = graph.objects("attack:cve_1999_0003", "targetsPortRange")
        assert ranges
        assert graph.objects(str(ranges[0]), "rangeLow") == [32771]
        assert graph.objects(str(ranges[0]), "rangeHigh") == [34000]

    def test_ontology_violations_rejected(self):
        from repro.knowledge.builder import NetworkKGBuilder
        from repro.knowledge.ontology import Ontology

        bare = Ontology()
        bare.add_class("Entity")
        builder = NetworkKGBuilder(ontology=bare)
        with pytest.raises(Exception):
            builder.build(lab_iot_catalog())


class TestReasoner:
    def test_event_inventory(self, lab_reasoner):
        assert set(lab_reasoner.attack_events()) == {
            "traffic_flooding", "port_scan", "cve_1999_0003",
        }
        assert "motion_detected" in lab_reasoner.benign_events()
        assert lab_reasoner.event_kind("port_scan") == "attack"

    def test_paper_example_port_range(self, lab_reasoner):
        assert lab_reasoner.destination_port_range("cve_1999_0003") == (32771, 34000)

    def test_valid_protocols_and_ips(self, lab_reasoner):
        assert lab_reasoner.valid_protocols("motion_detected") == {"TCP"}
        assert lab_reasoner.valid_source_ips("motion_detected") == {"192.168.1.12"}
        assert lab_reasoner.valid_destination_ips("motion_detected") == {"18.210.45.3"}

    def test_valid_record_accepted(self, lab_reasoner):
        record = {
            "event_type": "motion_detected",
            "protocol": "TCP",
            "src_ip": "192.168.1.12",
            "dst_ip": "18.210.45.3",
            "dst_port": 443,
            "src_port": 50000,
        }
        assert lab_reasoner.is_valid(record)

    def test_invalid_port_rejected(self, lab_reasoner):
        record = {
            "event_type": "cve_1999_0003",
            "protocol": "TCP",
            "src_ip": "192.168.1.66",
            "dst_ip": "192.168.1.10",
            "dst_port": 80,  # outside 32771..34000
            "src_port": 50000,
        }
        violations = lab_reasoner.violations(record)
        assert any(v.rule_name == "destination-port" for v in violations)

    def test_unknown_event_rejected(self, lab_reasoner):
        violations = lab_reasoner.violations({"event_type": "not_an_event"})
        assert violations and violations[0].rule_name == "known-event"

    def test_wrong_source_device_rejected(self, lab_reasoner):
        record = {
            "event_type": "motion_detected",
            "protocol": "TCP",
            "src_ip": "192.168.1.66",  # attacker box cannot send motion events
            "dst_ip": "18.210.45.3",
            "dst_port": 443,
        }
        assert not lab_reasoner.is_valid(record)

    def test_valid_values_enumeration(self, lab_reasoner):
        ports = lab_reasoner.valid_values("destination_port", "cve_1999_0003")
        assert 32771 in ports and 34000 in ports and 80 not in ports
        protocols = lab_reasoner.valid_values("protocol", "dns_lookup")
        assert protocols == {"UDP"}
        with pytest.raises(ValueError):
            lab_reasoner.valid_values("nonsense-role", "dns_lookup")

    def test_sample_valid_record_is_valid(self, lab_reasoner):
        generator = np.random.default_rng(3)
        for event in lab_reasoner.event_names():
            record = lab_reasoner.sample_valid_record(event, generator)
            assert lab_reasoner.is_valid(record), (event, record)

    def test_rule_set_compilation_agrees_with_reasoner(self, lab_reasoner):
        rules = lab_reasoner.to_rule_set()
        generator = np.random.default_rng(5)
        for event in lab_reasoner.event_names():
            record = lab_reasoner.sample_valid_record(event, generator)
            assert rules.is_valid(record)
        bad = {"event_type": "dns_lookup", "protocol": "TCP"}
        assert not rules.is_valid(bad)
        assert not lab_reasoner.is_valid(bad)


class TestBatchValidator:
    def test_real_lab_data_is_fully_valid(self, lab_reasoner, lab_bundle_small):
        report = BatchValidator(lab_reasoner).report(lab_bundle_small.table)
        assert report.validity_rate == 1.0
        assert report.violation_rate == 0.0

    def test_corrupted_rows_are_flagged(self, lab_reasoner, lab_bundle_small):
        records = lab_bundle_small.table.to_records()[:50]
        for record in records:
            record["dst_port"] = 31337  # not valid for any lab event
        from repro.tabular.table import Table

        corrupted = Table.from_records(lab_bundle_small.schema, records)
        report = BatchValidator(lab_reasoner).report(corrupted)
        assert report.validity_rate == 0.0
        assert report.violations_by_rule.get("destination-port", 0) == 50

    def test_scores_are_binary(self, lab_reasoner, lab_bundle_small):
        scores = BatchValidator(lab_reasoner).table_scores(
            lab_bundle_small.table.head(30)
        )
        assert set(np.unique(scores)).issubset({0.0, 1.0})


@settings(max_examples=20, deadline=None)
@given(port=st.integers(min_value=1, max_value=65535))
def test_reasoner_port_validity_property(port):
    """Property: the reasoner accepts a CVE-1999-0003 destination port iff it
    lies inside the knowledge-graph range 32771..34000 (the explicit ports in
    the catalog are all inside that range too)."""
    catalog = lab_iot_catalog()
    reasoner = KGReasoner(build_network_kg(catalog), field_map=catalog.field_map)
    record = {
        "event_type": "cve_1999_0003",
        "protocol": "TCP",
        "src_ip": "192.168.1.66",
        "dst_ip": "192.168.1.10",
        "dst_port": port,
        "src_port": 40000,
    }
    assert reasoner.is_valid(record) == (32771 <= port <= 34000)
