"""Batched ``KGReasoner.validity_mask`` parity with the per-record query."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_lab_iot
from repro.knowledge.builder import build_network_kg
from repro.knowledge.reasoner import KGReasoner
from repro.knowledge.validator import BatchValidator
from repro.tabular.table import Table


@pytest.fixture(scope="module")
def lab():
    bundle = load_lab_iot(n_records=400, seed=3)
    reasoner = KGReasoner(build_network_kg(bundle.catalog), field_map=bundle.catalog.field_map)
    return bundle, reasoner


def _per_record(reasoner: KGReasoner, table: Table) -> np.ndarray:
    return np.asarray([reasoner.is_valid(record) for record in table.to_records()])


class TestValidityMask:
    def test_matches_per_record_on_real_data(self, lab):
        bundle, reasoner = lab
        mask = reasoner.validity_mask(bundle.table)
        np.testing.assert_array_equal(mask, _per_record(reasoner, bundle.table))
        assert mask.all()  # generated lab data is valid by construction

    def test_matches_per_record_on_corrupted_rows(self, lab):
        bundle, reasoner = lab
        table = bundle.table
        rng = np.random.default_rng(0)
        columns = {name: table.column(name).copy() for name in table.schema.names}
        # Corrupt a third of the rows across every KG-constrained column.
        n = table.n_rows
        fm = reasoner.field_map
        rows = rng.choice(n, size=n // 3, replace=False)
        third = len(rows) // 3 or 1
        columns[fm["protocol"]][rows[:third]] = "carrier-pigeon"
        columns[fm["destination_port"]][rows[third : 2 * third]] = 1.0
        columns[fm["event_type"]][rows[2 * third :]] = "unheard_of_event"
        corrupted = Table(table.schema, columns)
        mask = reasoner.validity_mask(corrupted)
        np.testing.assert_array_equal(mask, _per_record(reasoner, corrupted))
        assert not mask.all()

    def test_accepts_column_mapping(self, lab):
        bundle, reasoner = lab
        table = bundle.table
        columns = {name: table.column(name) for name in table.schema.names}
        np.testing.assert_array_equal(
            reasoner.validity_mask(columns), reasoner.validity_mask(table)
        )

    def test_unconstrained_when_event_column_absent(self, lab):
        bundle, reasoner = lab
        table = bundle.table.drop_columns([reasoner.field_map["event_type"]])
        assert reasoner.validity_mask(table).all()

    def test_non_numeric_port_is_invalid(self, lab):
        bundle, reasoner = lab
        table = bundle.table
        columns = {name: table.column(name).copy() for name in table.schema.names}
        port_column = reasoner.field_map["destination_port"]
        if table.schema.column(port_column).is_continuous:
            pytest.skip("port column stored as float in this schema")
        columns[port_column][0] = "not-a-port"
        corrupted = Table(table.schema, columns)
        mask = reasoner.validity_mask(corrupted)
        np.testing.assert_array_equal(mask, _per_record(reasoner, corrupted))

    def test_table_scores_uses_batched_path(self, lab):
        bundle, reasoner = lab
        scores = BatchValidator(reasoner).table_scores(bundle.table)
        assert scores.dtype == np.float64
        np.testing.assert_array_equal(scores, _per_record(reasoner, bundle.table).astype(float))
