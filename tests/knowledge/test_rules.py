"""Rule primitive tests, including hypothesis consistency properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knowledge.rules import ImplicationRule, MembershipRule, RangeRule, RuleSet


class TestMembershipRule:
    def test_allows_listed_values(self):
        rule = MembershipRule(attribute="proto", allowed={"tcp", "udp"})
        assert rule.check({"proto": "tcp"}) == []
        assert len(rule.check({"proto": "icmp"})) == 1

    def test_guard_limits_applicability(self):
        rule = MembershipRule(
            attribute="dst_port", allowed={443}, when={"event": "upload"}
        )
        assert rule.check({"event": "dns", "dst_port": 53}) == []
        assert len(rule.check({"event": "upload", "dst_port": 53})) == 1

    def test_missing_attribute_is_not_a_violation(self):
        rule = MembershipRule(attribute="proto", allowed={"tcp"})
        assert rule.check({"other": 1}) == []

    def test_empty_allowed_set_rejected(self):
        with pytest.raises(ValueError):
            MembershipRule(attribute="proto", allowed=set())


class TestRangeRule:
    def test_inside_and_outside(self):
        rule = RangeRule(attribute="port", low=32771, high=34000)
        assert rule.check({"port": 33000}) == []
        assert len(rule.check({"port": 80})) == 1

    def test_boundaries_inclusive(self):
        rule = RangeRule(attribute="port", low=10, high=20)
        assert rule.check({"port": 10}) == []
        assert rule.check({"port": 20}) == []

    def test_non_numeric_value_is_violation(self):
        rule = RangeRule(attribute="port", low=0, high=10)
        assert len(rule.check({"port": "abc"})) == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RangeRule(attribute="port", low=10, high=5)


class TestImplicationRule:
    def test_combined_memberships_and_ranges(self):
        rule = ImplicationRule(
            when={"event_type": "cve_1999_0003"},
            memberships={"protocol": {"TCP"}},
            ranges={"dst_port": (32771, 34000)},
        )
        valid = {"event_type": "cve_1999_0003", "protocol": "TCP", "dst_port": 33000}
        assert rule.check(valid) == []
        invalid = {"event_type": "cve_1999_0003", "protocol": "UDP", "dst_port": 80}
        assert len(rule.check(invalid)) == 2

    def test_guard_with_value_set(self):
        rule = ImplicationRule(
            when={"protocol": ("TCP", "UDP")}, memberships={"state": {"CON", "FIN"}}
        )
        assert rule.check({"protocol": "ICMP", "state": "weird"}) == []
        assert len(rule.check({"protocol": "TCP", "state": "weird"})) == 1

    def test_empty_guard_rejected(self):
        with pytest.raises(ValueError):
            ImplicationRule(when={}, memberships={"a": {1}})


class TestRuleSet:
    def _ruleset(self) -> RuleSet:
        return RuleSet(
            [
                MembershipRule(attribute="protocol", allowed={"TCP", "UDP"}),
                ImplicationRule(
                    when={"event_type": "exploit"},
                    ranges={"dst_port": (32771, 34000)},
                ),
            ]
        )

    def test_validate_collects_all_violations(self):
        rules = self._ruleset()
        record = {"protocol": "ICMP", "event_type": "exploit", "dst_port": 80}
        assert len(rules.validate(record)) == 2
        assert not rules.is_valid(record)

    def test_validity_mask_and_rate(self):
        rules = self._ruleset()
        records = [
            {"protocol": "TCP", "event_type": "benign", "dst_port": 443},
            {"protocol": "ICMP", "event_type": "benign", "dst_port": 443},
        ]
        assert rules.validity_mask(records) == [True, False]
        assert rules.violation_rate(records) == pytest.approx(0.5)

    def test_empty_records_violation_rate(self):
        assert self._ruleset().violation_rate([]) == 0.0

    def test_merge(self):
        merged = self._ruleset().merge(RuleSet([RangeRule(attribute="x", low=0, high=1)]))
        assert len(merged) == 3


@settings(max_examples=30, deadline=None)
@given(
    port=st.integers(min_value=0, max_value=65535),
    low=st.integers(min_value=0, max_value=60000),
    width=st.integers(min_value=0, max_value=5000),
)
def test_range_rule_consistency_property(port, low, width):
    """Property: RangeRule flags a value iff it is outside [low, high]."""
    rule = RangeRule(attribute="p", low=low, high=low + width)
    violations = rule.check({"p": port})
    expected_violation = not (low <= port <= low + width)
    assert bool(violations) == expected_violation


@settings(max_examples=30, deadline=None)
@given(
    allowed=st.sets(st.sampled_from(["a", "b", "c", "d"]), min_size=1),
    value=st.sampled_from(["a", "b", "c", "d", "e"]),
)
def test_membership_rule_consistency_property(allowed, value):
    """Property: MembershipRule flags a value iff it is not in the allowed set."""
    rule = MembershipRule(attribute="x", allowed=allowed)
    assert bool(rule.check({"x": value})) == (value not in allowed)
