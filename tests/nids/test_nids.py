"""NIDS classifier, metric and pipeline tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nids import (
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    KNearestNeighbors,
    LogisticRegressionClassifier,
    MLPClassifier,
    RandomForestClassifier,
    TabularFeaturizer,
    accuracy_score,
    classification_report,
    confusion_matrix,
    evaluate_utility,
    f1_score,
    make_classifier,
    precision_score,
    recall_score,
    train_and_score,
)
from repro.tabular.split import train_test_split


def _blobs(rng, n=300, n_classes=3):
    """Well-separated Gaussian blobs: every classifier should ace these."""
    centers = rng.uniform(-10, 10, size=(n_classes, 4))
    X = np.zeros((n, 4))
    y = np.zeros(n, dtype=int)
    for i in range(n):
        label = i % n_classes
        X[i] = centers[label] + rng.normal(0, 0.5, size=4)
        y[i] = label
    return X, y


@pytest.mark.parametrize(
    "factory",
    [
        lambda: DecisionTreeClassifier(seed=0),
        lambda: RandomForestClassifier(n_estimators=5, seed=0),
        lambda: LogisticRegressionClassifier(epochs=100, seed=0),
        lambda: GaussianNaiveBayes(),
        lambda: KNearestNeighbors(k=3, seed=0),
        lambda: MLPClassifier(epochs=30, seed=0),
    ],
    ids=["tree", "forest", "logreg", "nb", "knn", "mlp"],
)
def test_classifiers_learn_separable_blobs(factory, rng):
    X, y = _blobs(rng)
    model = factory()
    model.fit(X[:200], y[:200])
    assert accuracy_score(y[200:], model.predict(X[200:])) > 0.9


@pytest.mark.parametrize(
    "factory",
    [
        lambda: DecisionTreeClassifier(seed=0),
        lambda: RandomForestClassifier(n_estimators=5, seed=0),
        lambda: GaussianNaiveBayes(),
    ],
    ids=["tree", "forest", "nb"],
)
def test_predict_proba_rows_sum_to_one(factory, rng):
    X, y = _blobs(rng, n=150)
    model = factory()
    model.fit(X, y)
    proba = model.predict_proba(X[:20])
    np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)


def test_classifier_empty_fit_rejected():
    with pytest.raises(ValueError):
        DecisionTreeClassifier().fit(np.zeros((0, 3)), np.zeros(0, dtype=int))


def test_predict_before_fit_rejected():
    with pytest.raises(RuntimeError):
        GaussianNaiveBayes().predict(np.zeros((2, 3)))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score(np.asarray([0, 1, 1]), np.asarray([0, 1, 0])) == pytest.approx(2 / 3)

    def test_confusion_matrix_layout(self):
        matrix = confusion_matrix(np.asarray([0, 0, 1]), np.asarray([0, 1, 1]))
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])

    def test_perfect_prediction_metrics(self):
        y = np.asarray([0, 1, 2, 1])
        report = classification_report(y, y)
        assert report["accuracy"] == 1.0
        assert report["precision"] == 1.0
        assert report["recall"] == 1.0
        assert report["f1"] == 1.0

    def test_macro_vs_micro_differ_under_imbalance(self):
        y_true = np.asarray([0] * 95 + [1] * 5)
        y_pred = np.asarray([0] * 100)
        micro = f1_score(y_true, y_pred, average="micro")
        macro = f1_score(y_true, y_pred, average="macro")
        assert micro > macro

    def test_precision_recall_known_values(self):
        y_true = np.asarray([0, 0, 1, 1])
        y_pred = np.asarray([0, 1, 1, 1])
        # class 0: P=1, R=0.5; class 1: P=2/3, R=1.
        assert precision_score(y_true, y_pred) == pytest.approx((1 + 2 / 3) / 2)
        assert recall_score(y_true, y_pred) == pytest.approx(0.75)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score(np.asarray([]), np.asarray([]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score(np.asarray([1]), np.asarray([1, 2]))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50))
def test_accuracy_bounds_property(labels):
    """Property: accuracy of self-prediction is 1; metrics stay in [0, 1]."""
    y = np.asarray(labels)
    assert accuracy_score(y, y) == 1.0
    flipped = (y + 1) % 4
    assert 0.0 <= accuracy_score(y, flipped) <= 1.0
    assert 0.0 <= f1_score(y, flipped) <= 1.0


class TestFeaturizer:
    def test_feature_matrix_shape(self, tiny_table):
        featurizer = TabularFeaturizer("label").fit(tiny_table)
        X, y = featurizer.transform(tiny_table)
        # proto(2) + service(3) + bytes(1) + duration(1) = 7 features.
        assert X.shape == (300, 7)
        assert y.shape == (300,)
        assert featurizer.n_classes == 2

    def test_labels_round_trip(self, tiny_table):
        featurizer = TabularFeaturizer("label").fit(tiny_table)
        _, y = featurizer.transform(tiny_table)
        restored = [featurizer.label_of(code) for code in y[:10]]
        assert restored == list(tiny_table.column("label")[:10])

    def test_unknown_label_column_rejected(self, tiny_table):
        with pytest.raises(KeyError):
            TabularFeaturizer("missing").fit(tiny_table)

    def test_same_layout_for_other_tables(self, tiny_table, tiny_table_alt):
        featurizer = TabularFeaturizer("label").fit(tiny_table)
        X_other = featurizer.transform_features(tiny_table_alt)
        assert X_other.shape[1] == featurizer.transform_features(tiny_table).shape[1]


class TestPipeline:
    def test_make_classifier_unknown_name(self):
        with pytest.raises(KeyError):
            make_classifier("quantum_forest")

    def test_train_and_score_on_real_data(self, tiny_table, rng):
        train, test = train_test_split(tiny_table, 0.3, rng, stratify_column="label")
        report = train_and_score("decision_tree", train, test, "label")
        assert report["accuracy"] > 0.7

    def test_evaluate_utility_structure(self, tiny_table, tiny_table_alt, rng):
        train, test = train_test_split(tiny_table, 0.3, rng, stratify_column="label")
        results = evaluate_utility(
            train, test, {"SAME-PROCESS": tiny_table_alt}, "label",
            classifiers=("decision_tree", "naive_bayes"),
        )
        assert results[0].source == "REAL"
        assert results[1].source == "SAME-PROCESS"
        for result in results:
            assert set(result.per_classifier) == {"decision_tree", "naive_bayes"}
            assert 0.0 <= result.mean_accuracy <= 1.0
        row = results[0].as_row()
        assert "mean_accuracy" in row

    def test_real_baseline_at_least_as_good_as_noise(self, tiny_table, rng):
        train, test = train_test_split(tiny_table, 0.3, rng, stratify_column="label")
        # Noise table: labels shuffled, destroying the feature-label link.
        from repro.tabular.table import Table

        columns = {name: train.column(name).copy() for name in train.schema.names}
        columns["label"] = rng.permutation(columns["label"])
        noise = Table(train.schema, columns)
        results = evaluate_utility(
            train, test, {"NOISE": noise}, "label", classifiers=("decision_tree",)
        )
        real_acc = results[0].mean_accuracy
        noise_acc = results[1].mean_accuracy
        assert real_acc >= noise_acc
