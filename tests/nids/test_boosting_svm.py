"""Tests for the boosted ensembles and the linear SVM classifier."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nids.boosting import AdaBoostClassifier, GradientBoostingClassifier
from repro.nids.pipeline import make_classifier
from repro.nids.svm import LinearSVMClassifier


def make_blobs(n: int, seed: int, n_classes: int = 3, shift: float = 4.0):
    rng = np.random.default_rng(seed)
    per_class = n // n_classes
    X_parts, y_parts = [], []
    for k in range(n_classes):
        centre = np.array([shift * k, -shift * k, shift * (k % 2), 0.0])
        X_parts.append(rng.normal(loc=centre, scale=1.0, size=(per_class, 4)))
        y_parts.append(np.full(per_class, k, dtype=int))
    X = np.concatenate(X_parts)
    y = np.concatenate(y_parts)
    order = rng.permutation(len(y))
    return X[order], y[order]


def make_xor(n: int, seed: int):
    """A problem a linear model cannot solve but trees can."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


CLASSIFIER_FACTORIES = {
    "gradient_boosting": lambda: GradientBoostingClassifier(n_estimators=20, seed=0),
    "adaboost": lambda: AdaBoostClassifier(n_estimators=15, max_depth=2, seed=0),
    "svm": lambda: LinearSVMClassifier(epochs=25, seed=0),
}


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", sorted(CLASSIFIER_FACTORIES))
    def test_learns_separable_blobs(self, name):
        X_train, y_train = make_blobs(300, seed=1)
        X_test, y_test = make_blobs(150, seed=2)
        model = CLASSIFIER_FACTORIES[name]()
        model.fit(X_train, y_train)
        accuracy = (model.predict(X_test) == y_test).mean()
        assert accuracy > 0.9

    @pytest.mark.parametrize("name", sorted(CLASSIFIER_FACTORIES))
    def test_predict_proba_is_a_distribution(self, name):
        X_train, y_train = make_blobs(200, seed=3)
        model = CLASSIFIER_FACTORIES[name]()
        model.fit(X_train, y_train)
        probabilities = model.predict_proba(X_train[:20])
        assert probabilities.shape == (20, 3)
        assert np.all(probabilities >= 0.0)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)

    @pytest.mark.parametrize("name", sorted(CLASSIFIER_FACTORIES))
    def test_predict_before_fit_rejected(self, name):
        model = CLASSIFIER_FACTORIES[name]()
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((3, 4)))

    @pytest.mark.parametrize("name", sorted(CLASSIFIER_FACTORIES))
    def test_empty_fit_rejected(self, name):
        model = CLASSIFIER_FACTORIES[name]()
        with pytest.raises(ValueError):
            model.fit(np.zeros((0, 4)), np.zeros(0, dtype=int))

    @pytest.mark.parametrize("name", sorted(CLASSIFIER_FACTORIES))
    def test_registered_in_pipeline(self, name):
        model = make_classifier(name, seed=1)
        assert model is not None


class TestGradientBoosting:
    def test_solves_xor_unlike_a_linear_model(self):
        X_train, y_train = make_xor(400, seed=5)
        X_test, y_test = make_xor(200, seed=6)
        boosted = GradientBoostingClassifier(n_estimators=30, max_depth=3, seed=0)
        boosted.fit(X_train, y_train)
        linear = LinearSVMClassifier(epochs=40, seed=0)
        linear.fit(X_train, y_train)
        boosted_accuracy = (boosted.predict(X_test) == y_test).mean()
        linear_accuracy = (linear.predict(X_test) == y_test).mean()
        assert boosted_accuracy > 0.9
        assert boosted_accuracy > linear_accuracy + 0.15

    def test_more_estimators_do_not_hurt_training_fit(self):
        X, y = make_blobs(250, seed=7)
        small = GradientBoostingClassifier(n_estimators=2, seed=0).fit(X, y)
        large = GradientBoostingClassifier(n_estimators=25, seed=0).fit(X, y)
        assert (large.predict(X) == y).mean() >= (small.predict(X) == y).mean() - 1e-9

    def test_subsampling_runs(self):
        X, y = make_blobs(200, seed=8)
        model = GradientBoostingClassifier(n_estimators=10, subsample=0.5, seed=0).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.8

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0.0)


class TestAdaBoost:
    def test_boosting_beats_a_single_stump(self):
        """A depth-1 stump can separate at most two of the three blobs; the
        boosted committee of stumps should recover all three classes."""
        X_train, y_train = make_blobs(300, seed=9)
        X_test, y_test = make_blobs(150, seed=10)
        from repro.nids.decision_tree import DecisionTreeClassifier

        stump = DecisionTreeClassifier(max_depth=1, seed=0).fit(X_train, y_train)
        boosted = AdaBoostClassifier(n_estimators=40, max_depth=1, seed=0).fit(X_train, y_train)
        stump_accuracy = (stump.predict(X_test) == y_test).mean()
        boosted_accuracy = (boosted.predict(X_test) == y_test).mean()
        assert stump_accuracy < 0.75
        assert boosted_accuracy > stump_accuracy + 0.1

    def test_alphas_are_positive(self):
        X, y = make_blobs(200, seed=11)
        model = AdaBoostClassifier(n_estimators=10, seed=0).fit(X, y)
        assert len(model._alphas) >= 1
        assert all(alpha > 0 for alpha in model._alphas)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            AdaBoostClassifier(learning_rate=0.0)


class TestLinearSVM:
    def test_binary_margins_have_correct_sign(self):
        X, y = make_blobs(200, seed=12, n_classes=2)
        model = LinearSVMClassifier(epochs=40, seed=0).fit(X, y)
        margins = model.decision_function(X)
        predictions = margins.argmax(axis=1)
        assert (predictions == y).mean() > 0.95

    def test_mismatched_lengths_rejected(self):
        X, y = make_blobs(50, seed=13)
        with pytest.raises(ValueError):
            LinearSVMClassifier().fit(X, y[:-1])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LinearSVMClassifier(regularization=0.0)
        with pytest.raises(ValueError):
            LinearSVMClassifier(epochs=0)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_predictions_are_valid_class_ids(self, seed):
        X, y = make_blobs(120, seed=seed)
        model = LinearSVMClassifier(epochs=5, seed=seed).fit(X, y)
        predictions = model.predict(X)
        assert set(np.unique(predictions)) <= set(range(int(y.max()) + 1))
