"""Package-level smoke tests."""

from __future__ import annotations

import repro


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_top_level_subpackages_import():
    import repro.baselines
    import repro.core
    import repro.datasets
    import repro.distributed
    import repro.fidelity
    import repro.knowledge
    import repro.neural
    import repro.nids
    import repro.privacy
    import repro.tabular

    assert repro.core.KiNETGAN.name == "KiNETGAN"
    assert len(repro.baselines.baseline_classes()) == 6
