"""Distributed NIDS tests: protocol, node, coordinator and full simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import IndependentSampler
from repro.distributed import (
    Coordinator,
    DeviceNode,
    DistributedNIDSSimulation,
    SyntheticShare,
)


class TestProtocol:
    def test_share_validation(self, tiny_table):
        share = SyntheticShare(
            node_id="n0", synthetic=tiny_table, n_real_records=300, generator_name="X"
        )
        assert share.validity_rate is None
        with pytest.raises(ValueError):
            SyntheticShare(node_id="n0", synthetic=tiny_table, n_real_records=-1,
                           generator_name="X")
        with pytest.raises(ValueError):
            SyntheticShare(node_id="n0", synthetic=tiny_table, n_real_records=1,
                           generator_name="X", validity_rate=1.5)


class TestDeviceNode:
    def test_local_detector_and_share(self, tiny_table, rng):
        node = DeviceNode(
            node_id="sensor",
            table=tiny_table,
            label_column="label",
            synthesizer=IndependentSampler(seed=1),
        )
        node.train_local_detector("decision_tree")
        metrics = node.evaluate_local_detector(tiny_table)
        assert metrics["accuracy"] > 0.7
        assert 0.0 <= metrics["f1"] <= 1.0

        node.fit_synthesizer()
        share = node.produce_share(120, rng=rng)
        assert share.synthetic.n_rows == 120
        assert share.node_id == "sensor"
        assert share.n_real_records == tiny_table.n_rows

    def test_share_before_fit_rejected(self, tiny_table):
        node = DeviceNode("n", tiny_table, "label", synthesizer=IndependentSampler())
        with pytest.raises(RuntimeError):
            node.produce_share(10)

    def test_empty_table_rejected(self, tiny_table):
        from repro.tabular.table import Table

        with pytest.raises(ValueError):
            DeviceNode("n", Table.empty(tiny_table.schema), "label")

    def test_kinetgan_node_reports_share_validity(self, lab_bundle_small, fast_config, rng):
        node = DeviceNode(
            node_id="iot",
            table=lab_bundle_small.table.head(300),
            label_column="label",
            catalog=lab_bundle_small.catalog,
            condition_columns=["event_type", "label"],
            config=fast_config,
        )
        node.fit_synthesizer()
        share = node.produce_share(100, rng=rng)
        assert share.validity_rate is not None
        assert 0.0 <= share.validity_rate <= 1.0


class TestCoordinator:
    def test_pooling_and_training(self, tiny_table, tiny_table_alt, rng):
        coordinator = Coordinator(label_column="label", classifier="decision_tree")
        coordinator.receive(SyntheticShare("a", tiny_table, 300, "X"))
        coordinator.receive(SyntheticShare("b", tiny_table_alt, 300, "Y"))
        assert coordinator.pooled_training_data.n_rows == 600
        coordinator.train_global_detector()
        summary = coordinator.evaluate(tiny_table)
        assert summary.global_accuracy > 0.7
        assert 0.0 <= summary.global_f1 <= 1.0

    def test_empty_share_rejected(self, tiny_table):
        from repro.tabular.table import Table

        coordinator = Coordinator(label_column="label")
        with pytest.raises(ValueError):
            coordinator.receive(SyntheticShare("a", Table.empty(tiny_table.schema), 0, "X"))

    def test_evaluate_before_training_rejected(self, tiny_table):
        with pytest.raises(RuntimeError):
            Coordinator(label_column="label").evaluate(tiny_table)

    def test_missing_label_column_rejected(self, tiny_table):
        coordinator = Coordinator(label_column="label")
        with pytest.raises(ValueError):
            coordinator.receive(
                SyntheticShare("a", tiny_table.drop_columns(["label"]), 10, "X")
            )


class TestSimulation:
    def test_full_simulation_with_cheap_synthesizer(self, lab_bundle_small):
        simulation = DistributedNIDSSimulation(
            lab_bundle_small,
            num_nodes=3,
            non_iid_skew=0.6,
            classifier="decision_tree",
            synthesizer_factory=lambda seed: IndependentSampler(seed=seed),
            seed=5,
        )
        result = simulation.run(share_size=200)
        for value in (result.local_only, result.synthetic_sharing, result.centralised_real):
            assert 0.0 <= value <= 1.0
        assert len(result.per_node_local) == 3
        # Centralised real data is an upper bound (within small slack).
        assert result.centralised_real >= result.synthetic_sharing - 0.1
        assert np.isfinite(result.local_only_f1)

    def test_partition_respects_node_count(self, lab_bundle_small, rng):
        simulation = DistributedNIDSSimulation(lab_bundle_small, num_nodes=4, seed=1)
        partitions = simulation.partition(lab_bundle_small.table, rng)
        assert len(partitions) == 4
        assert sum(p.n_rows for p in partitions) >= lab_bundle_small.n_records

    def test_invalid_parameters_rejected(self, lab_bundle_small):
        with pytest.raises(ValueError):
            DistributedNIDSSimulation(lab_bundle_small, num_nodes=1)
        with pytest.raises(ValueError):
            DistributedNIDSSimulation(lab_bundle_small, non_iid_skew=1.0)
