"""Unit tests for KiNETGAN components: generator, discriminators, losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.condition import build_condition_matrix
from repro.core.config import KiNETGANConfig
from repro.core.discriminator import DataDiscriminator
from repro.core.generator import ConditionalGenerator, TabularOutputActivation
from repro.core.kg_discriminator import KnowledgeGuidedDiscriminator
from repro.core.losses import condition_penalty
from repro.knowledge.builder import build_network_kg
from repro.knowledge.reasoner import KGReasoner
from repro.tabular.sampler import ConditionSampler


class TestConfig:
    def test_defaults_validate(self):
        config = KiNETGANConfig()
        assert config.use_knowledge_discriminator

    def test_with_overrides_returns_copy(self):
        base = KiNETGANConfig()
        other = base.with_overrides(epochs=5, lambda_knowledge=0.0)
        assert other.epochs == 5 and base.epochs != 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"embedding_dim": 0},
            {"epochs": 0},
            {"uniform_probability": 1.5},
            {"lambda_condition": -1.0},
            {"continuous_encoding": "zscore"},
            {"discriminator_steps": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            KiNETGANConfig(**kwargs)


class TestTabularOutputActivation:
    def test_applies_tanh_and_softmax_per_span(self, fitted_transformer, rng):
        layer = TabularOutputActivation(fitted_transformer.activation_spans(), rng=rng)
        raw = rng.normal(size=(8, fitted_transformer.output_dim)) * 3
        out = layer.forward(raw, training=False)
        for start, end, activation in fitted_transformer.activation_spans():
            block = out[:, start:end]
            if activation == "tanh":
                assert np.all(np.abs(block) <= 1.0)
            else:
                np.testing.assert_allclose(block.sum(axis=1), 1.0)

    def test_backward_shape(self, fitted_transformer, rng):
        layer = TabularOutputActivation(fitted_transformer.activation_spans(), rng=rng)
        raw = rng.normal(size=(4, fitted_transformer.output_dim))
        layer.forward(raw)
        grad = layer.backward(np.ones_like(raw))
        assert grad.shape == raw.shape

    def test_invalid_tau_rejected(self, fitted_transformer):
        with pytest.raises(ValueError):
            TabularOutputActivation(fitted_transformer.activation_spans(), tau=0.0)


class TestGeneratorAndDiscriminator:
    def test_generator_output_shape(self, fitted_transformer, rng):
        generator = ConditionalGenerator(8, 4, fitted_transformer, hidden_dims=(16,), rng=rng)
        out = generator.forward(rng.normal(size=(6, 8)), rng.normal(size=(6, 4)))
        assert out.shape == (6, fitted_transformer.output_dim)

    def test_generator_none_condition_means_zeros(self, fitted_transformer, rng):
        generator = ConditionalGenerator(8, 4, fitted_transformer, hidden_dims=(16,), rng=rng)
        out = generator.forward(rng.normal(size=(3, 8)), None)
        assert out.shape == (3, fitted_transformer.output_dim)

    def test_generator_rejects_bad_widths(self, fitted_transformer, rng):
        generator = ConditionalGenerator(8, 4, fitted_transformer, hidden_dims=(16,), rng=rng)
        with pytest.raises(ValueError):
            generator.forward(rng.normal(size=(3, 9)), rng.normal(size=(3, 4)))
        with pytest.raises(ValueError):
            generator.forward(rng.normal(size=(3, 8)), rng.normal(size=(3, 5)))

    def test_generator_backward_and_parameters(self, fitted_transformer, rng):
        generator = ConditionalGenerator(8, 4, fitted_transformer, hidden_dims=(16,), rng=rng)
        out = generator.forward(rng.normal(size=(5, 8)), rng.normal(size=(5, 4)))
        grad_in = generator.backward(np.ones_like(out))
        assert grad_in.shape == (5, 12)
        assert generator.num_parameters() > 0

    def test_discriminator_logit_shape(self, fitted_transformer, rng):
        disc = DataDiscriminator(fitted_transformer.output_dim, 4, hidden_dims=(16,), rng=rng)
        logits = disc.forward(
            rng.normal(size=(7, fitted_transformer.output_dim)), rng.normal(size=(7, 4))
        )
        assert logits.shape == (7, 1)

    def test_discriminator_backward_returns_data_grad_only(self, fitted_transformer, rng):
        disc = DataDiscriminator(fitted_transformer.output_dim, 4, hidden_dims=(16,), rng=rng)
        disc.forward(rng.normal(size=(7, fitted_transformer.output_dim)), rng.normal(size=(7, 4)))
        grad = disc.backward(np.ones((7, 1)))
        assert grad.shape == (7, fitted_transformer.output_dim)

    def test_state_dict_round_trip(self, fitted_transformer, rng):
        generator = ConditionalGenerator(8, 0, fitted_transformer, hidden_dims=(16,), rng=rng)
        noise = rng.normal(size=(4, 8))
        before = generator.forward(noise, None, training=False)
        state = {k: v.copy() for k, v in generator.state_dict().items()}
        for param, _ in generator.parameters():
            param += 0.5
        generator.load_state_dict(state)
        np.testing.assert_allclose(generator.forward(noise, None, training=False), before)


class TestConditionPenalty:
    def test_zero_when_generator_matches_condition(self, tiny_table, fitted_transformer, rng):
        sampler = ConditionSampler(tiny_table, fitted_transformer,
                                   conditional_columns=["proto", "label"])
        batch = sampler.sample(16, rng)
        # Build a fake output that copies the condition into the one-hot blocks.
        fake = np.full((16, fitted_transformer.output_dim), 0.5)
        for column in sampler.conditional_columns:
            info = fitted_transformer.column_info(column)
            fake[:, info.onehot_slice] = np.clip(
                batch.vector[:, sampler.condition_slice(column)], 1e-4, 1 - 1e-4
            )
        loss, grad = condition_penalty(fake, batch.vector, sampler, fitted_transformer)
        assert loss < 0.01
        # Gradient is zero outside the conditional one-hot blocks.
        info_bytes = fitted_transformer.column_info("bytes")
        assert np.all(grad[:, info_bytes.start : info_bytes.end] == 0)

    def test_large_when_generator_contradicts_condition(
        self, tiny_table, fitted_transformer, rng
    ):
        sampler = ConditionSampler(tiny_table, fitted_transformer, conditional_columns=["label"])
        batch = sampler.sample(16, rng)
        fake = np.full((16, fitted_transformer.output_dim), 0.5)
        info = fitted_transformer.column_info("label")
        # Put all probability mass on the wrong category.
        fake[:, info.onehot_slice] = 1.0 - batch.vector[:, sampler.condition_slice("label")]
        fake = np.clip(fake, 1e-4, 1 - 1e-4)
        loss, grad = condition_penalty(fake, batch.vector, sampler, fitted_transformer)
        assert loss > 1.0
        assert np.abs(grad[:, info.onehot_slice]).sum() > 0

    def test_batch_size_mismatch_rejected(self, tiny_table, fitted_transformer, rng):
        sampler = ConditionSampler(tiny_table, fitted_transformer, conditional_columns=["label"])
        batch = sampler.sample(4, rng)
        with pytest.raises(ValueError):
            condition_penalty(
                np.zeros((3, fitted_transformer.output_dim)), batch.vector, sampler,
                fitted_transformer,
            )

    def test_build_condition_matrix(self, tiny_table, fitted_transformer):
        sampler = ConditionSampler(tiny_table, fitted_transformer,
                                   conditional_columns=["proto", "label"])
        matrix = build_condition_matrix(sampler, [{"proto": "tcp"}, {"label": "attack"}, {}])
        assert matrix.shape == (3, sampler.condition_dim)
        assert matrix[2].sum() == 0.0


class TestKnowledgeGuidedDiscriminator:
    @pytest.fixture
    def lab_setup(self, lab_bundle_small):
        from repro.tabular.transformer import DataTransformer

        table = lab_bundle_small.table.head(300)
        transformer = DataTransformer(max_modes=4, seed=0).fit(table)
        reasoner = KGReasoner(
            build_network_kg(lab_bundle_small.catalog),
            field_map=lab_bundle_small.catalog.field_map,
        )
        return table, transformer, reasoner

    def test_kg_columns_detected(self, lab_setup, rng):
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, rng=rng)
        assert "event_type" in dkg.kg_columns and "dst_port" in dkg.kg_columns

    def test_hard_scores_flag_invalid_rows(self, lab_setup, rng):
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, rng=rng)
        scores = dkg.hard_scores(table.head(50))
        np.testing.assert_allclose(scores, 1.0)
        records = table.head(20).to_records()
        for record in records:
            record["protocol"] = "UDP" if record["protocol"] == "TCP" else "TCP"
        from repro.tabular.table import Table

        flipped = Table.from_records(table.schema, records)
        assert dkg.hard_scores(flipped).mean() < 0.6

    def test_head_learns_to_separate_valid_from_invalid(self, lab_setup, rng):
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, hidden_dims=(32,), rng=rng)
        real_matrix = transformer.transform(table, rng=rng)
        for _ in range(30):
            dkg.train_step(table, real_matrix, fake_matrix=None, negatives=64)
        valid_scores = dkg.head_scores(real_matrix[:100])
        # Corrupt the protocol column of the same rows.
        records = table.head(100).to_records()
        for record in records:
            record["dst_port"] = 31337
        from repro.tabular.table import Table

        invalid = transformer.transform(Table.from_records(table.schema, records), rng=rng)
        invalid_scores = dkg.head_scores(invalid)
        assert valid_scores.mean() > invalid_scores.mean()

    def test_generator_feedback_gradient_nonzero_only_on_kg_columns(self, lab_setup, rng):
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, rng=rng)
        fake = rng.uniform(0, 1, size=(16, transformer.output_dim))
        loss, grad = dkg.generator_loss_and_grad(fake)
        assert loss > 0
        kg_slices = [transformer.column_info(name) for name in dkg.kg_columns]
        mask = np.zeros(transformer.output_dim, dtype=bool)
        for info in kg_slices:
            mask[info.start : info.end] = True
        assert np.abs(grad[:, ~mask]).sum() == 0.0
        assert np.abs(grad[:, mask]).sum() > 0.0

    def test_disabled_head_returns_zero_gradient(self, lab_setup, rng):
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, learned_head=False, rng=rng)
        fake = rng.uniform(0, 1, size=(4, transformer.output_dim))
        loss, grad = dkg.generator_loss_and_grad(fake)
        assert loss == 0.0
        assert np.all(grad == 0.0)
        np.testing.assert_allclose(dkg.combined_scores(transformer.transform(table.head(5))), 1.0)
