"""Tests for the valid-set knowledge penalty of ``D_KG``.

The valid-set loss is the direct reading of section III-B-1: the knowledge
graph is queried with the condition values and the generator is penalised
for probability mass outside the returned valid sets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kg_discriminator import KnowledgeGuidedDiscriminator
from repro.knowledge.builder import build_network_kg
from repro.knowledge.reasoner import KGReasoner
from repro.tabular.transformer import DataTransformer


@pytest.fixture
def lab_setup(lab_bundle_small):
    table = lab_bundle_small.table.head(300)
    transformer = DataTransformer(max_modes=4, seed=0).fit(table)
    reasoner = KGReasoner(
        build_network_kg(lab_bundle_small.catalog),
        field_map=lab_bundle_small.catalog.field_map,
    )
    return table, transformer, reasoner


def _soft_matrix(transformer: DataTransformer, n: int, rng: np.random.Generator) -> np.ndarray:
    """A random matrix whose softmax blocks are proper distributions."""
    raw = rng.normal(size=(n, transformer.output_dim))
    return transformer.apply_output_activations(raw, rng=rng)


class TestValidMask:
    def test_mask_matches_reasoner_valid_values(self, lab_setup, rng):
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, rng=rng)
        mask = dkg._valid_mask("protocol", "ntp_sync")
        categories = list(transformer.encoder("protocol").categories)
        assert mask is not None
        valid = reasoner.valid_values("protocol", "ntp_sync")
        for category, flag in zip(categories, mask):
            assert flag == (category in valid)

    def test_unknown_event_gives_no_mask(self, lab_setup, rng):
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, rng=rng)
        assert dkg._valid_mask("protocol", "nonexistent_event") is None

    def test_mask_is_cached(self, lab_setup, rng):
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, rng=rng)
        first = dkg._valid_mask("dst_ip", "motion_detected")
        second = dkg._valid_mask("dst_ip", "motion_detected")
        assert first is second

    def test_destination_port_mask_honours_cve_range(self, lab_setup, rng):
        """The paper's running example: CVE-1999-0003 ports lie in 32771..34000."""
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, rng=rng)
        mask = dkg._valid_mask("dst_port", "cve_1999_0003")
        categories = list(transformer.encoder("dst_port").categories)
        assert mask is not None
        for category, flag in zip(categories, mask):
            port = int(category)
            assert flag == (32771 <= port <= 34000)


class TestValidSetLoss:
    def test_zero_terms_without_event_in_condition(self, lab_setup, rng):
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, rng=rng)
        fake = _soft_matrix(transformer, 8, rng)
        loss, grad = dkg.valid_set_loss_and_grad(fake, [{} for _ in range(8)])
        assert loss == 0.0
        assert np.all(grad == 0.0)

    def test_batch_size_mismatch_rejected(self, lab_setup, rng):
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, rng=rng)
        fake = _soft_matrix(transformer, 8, rng)
        with pytest.raises(ValueError):
            dkg.valid_set_loss_and_grad(fake, [{"event_type": "ntp_sync"}])

    def test_valid_mass_gives_lower_loss_than_invalid_mass(self, lab_setup, rng):
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, rng=rng)
        conditions = [{"event_type": "ntp_sync"}] * 4

        # Build one batch whose protocol block is all mass on the valid value
        # and one with all mass on an invalid value.
        info = transformer.column_info("protocol")
        categories = list(transformer.encoder("protocol").categories)
        valid_protocols = reasoner.valid_values("protocol", "ntp_sync")
        valid_index = next(i for i, c in enumerate(categories) if c in valid_protocols)
        invalid_index = next(i for i, c in enumerate(categories) if c not in valid_protocols)

        base = _soft_matrix(transformer, 4, rng)
        good = base.copy()
        good[:, info.start : info.end] = 0.0
        good[:, info.start + valid_index] = 1.0
        bad = base.copy()
        bad[:, info.start : info.end] = 0.0
        bad[:, info.start + invalid_index] = 1.0

        loss_good, _ = dkg.valid_set_loss_and_grad(good, conditions)
        loss_bad, _ = dkg.valid_set_loss_and_grad(bad, conditions)
        assert loss_bad > loss_good

    def test_gradient_pushes_mass_toward_valid_categories(self, lab_setup, rng):
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, rng=rng)
        conditions = [{"event_type": "motion_detected"}] * 6
        fake = _soft_matrix(transformer, 6, rng)
        loss, grad = dkg.valid_set_loss_and_grad(fake, conditions)
        assert loss > 0.0

        info = transformer.column_info("src_ip")
        categories = list(transformer.encoder("src_ip").categories)
        valid = reasoner.valid_values("source_ip", "motion_detected")
        block = grad[:, info.start : info.end]
        for j, category in enumerate(categories):
            if category in valid:
                # Descending the loss raises the probability of valid values.
                assert np.all(block[:, j] <= 0.0)
            else:
                assert np.all(block[:, j] == 0.0)

    def test_gradient_zero_outside_kg_columns(self, lab_setup, rng):
        table, transformer, reasoner = lab_setup
        dkg = KnowledgeGuidedDiscriminator(reasoner, transformer, rng=rng)
        conditions = [{"event_type": "dns_lookup"}] * 5
        fake = _soft_matrix(transformer, 5, rng)
        _, grad = dkg.valid_set_loss_and_grad(fake, conditions)
        mask = np.zeros(transformer.output_dim, dtype=bool)
        for name in dkg.kg_columns:
            info = transformer.column_info(name)
            mask[info.start : info.end] = True
        assert np.abs(grad[:, ~mask]).sum() == 0.0

    def test_trainer_with_valid_set_loss_reaches_high_validity(self, lab_bundle_small):
        """End-to-end: a briefly trained KiNETGAN with the valid-set loss produces
        mostly KG-valid records while the identically trained model without D_KG
        does not reach the same level (the core claim of the paper)."""
        from repro.core import KiNETGAN, KiNETGANConfig
        from repro.knowledge.validator import BatchValidator

        table = lab_bundle_small.table
        config = KiNETGANConfig(
            embedding_dim=16,
            generator_dims=(32, 32),
            discriminator_dims=(32,),
            epochs=12,
            batch_size=64,
            lambda_knowledge=2.0,
            knowledge_negatives_per_batch=16,
            seed=3,
        )
        with_kg = KiNETGAN(config).fit(
            table,
            catalog=lab_bundle_small.catalog,
            condition_columns=lab_bundle_small.condition_columns,
        )
        without_kg = KiNETGAN(
            config.with_overrides(use_knowledge_discriminator=False, lambda_knowledge=0.0)
        ).fit(table, condition_columns=lab_bundle_small.condition_columns)

        reasoner = KGReasoner(
            build_network_kg(lab_bundle_small.catalog),
            field_map=lab_bundle_small.catalog.field_map,
        )
        validator = BatchValidator(reasoner)
        rng = np.random.default_rng(0)
        validity_with = validator.report(with_kg.sample(400, rng=rng)).validity_rate
        validity_without = validator.report(without_kg.sample(400, rng=rng)).validity_rate
        assert validity_with >= validity_without
        assert validity_with > 0.5
