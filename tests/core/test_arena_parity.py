"""Seeded-fit bit-parity: consolidated arenas vs per-tensor storage.

Consolidation is on by default for every network in the repository, so these
tests pin the load-bearing invariant: a seeded fit on the arena/workspace
fast path must produce *bit-identical* weights, loss history, and samples to
the same fit with consolidation disabled (the reference per-tensor path the
seed repository shipped with).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import TVAE
from repro.core import KiNETGAN
from repro.neural.arena import disable_consolidation


def _fit_kinetgan(fast_config, table, bundle=None):
    model = KiNETGAN(fast_config)
    if bundle is not None:
        model.fit(
            table,
            catalog=bundle.catalog,
            condition_columns=bundle.condition_columns,
        )
    else:
        model.fit(table, condition_columns=["label"])
    return model


def _assert_states_bitwise_equal(state_a, state_b):
    assert sorted(state_a) == sorted(state_b)
    for key, value in state_a.items():
        assert np.array_equal(value, state_b[key]), key


class TestKiNETGANParity:
    def test_fit_and_samples_bit_identical(self, fast_config, tiny_table):
        arena_model = _fit_kinetgan(fast_config, tiny_table)
        with disable_consolidation():
            plain_model = _fit_kinetgan(fast_config, tiny_table)

        assert arena_model.trainer.generator.network.arena is not None
        assert plain_model.trainer.generator.network.arena is None

        for attr in ("generator", "discriminator"):
            _assert_states_bitwise_equal(
                getattr(arena_model.trainer, attr).network.state_dict(),
                getattr(plain_model.trainer, attr).network.state_dict(),
            )
        assert (
            arena_model.trainer.history.generator_loss
            == plain_model.trainer.history.generator_loss
        )
        assert (
            arena_model.trainer.history.discriminator_loss
            == plain_model.trainer.history.discriminator_loss
        )

        sample_arena = arena_model.sample(64, rng=np.random.default_rng(5))
        sample_plain = plain_model.sample(64, rng=np.random.default_rng(5))
        assert sample_arena.to_records() == sample_plain.to_records()

    def test_fit_with_knowledge_graph_bit_identical(self, fast_config, lab_bundle_small):
        table = lab_bundle_small.table.head(300)
        arena_model = _fit_kinetgan(fast_config, table, bundle=lab_bundle_small)
        with disable_consolidation():
            plain_model = _fit_kinetgan(fast_config, table, bundle=lab_bundle_small)

        for attr in ("generator", "discriminator"):
            _assert_states_bitwise_equal(
                getattr(arena_model.trainer, attr).network.state_dict(),
                getattr(plain_model.trainer, attr).network.state_dict(),
            )
        assert (
            arena_model.trainer.history.knowledge_loss
            == plain_model.trainer.history.knowledge_loss
        )


class TestBaselineParity:
    def test_tvae_fit_and_samples_bit_identical(self, tiny_table):
        def fit():
            model = TVAE()
            model.config.epochs = 2
            model.config.batch_size = 64
            model.config.seed = 11
            return model.fit(tiny_table)

        arena_model = fit()
        with disable_consolidation():
            plain_model = fit()

        assert arena_model.decoder.arena is not None
        assert plain_model.decoder.arena is None
        _assert_states_bitwise_equal(
            arena_model.decoder.state_dict(), plain_model.decoder.state_dict()
        )
        _assert_states_bitwise_equal(
            arena_model.encoder.state_dict(), plain_model.encoder.state_dict()
        )
        assert arena_model.loss_history == plain_model.loss_history

        sample_arena = arena_model.sample(64, rng=np.random.default_rng(6))
        sample_plain = plain_model.sample(64, rng=np.random.default_rng(6))
        assert sample_arena.to_records() == sample_plain.to_records()
