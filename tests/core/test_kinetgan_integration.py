"""Integration tests: KiNETGAN end-to-end fit / sample / conditioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import KiNETGAN, KiNETGANConfig


@pytest.fixture(scope="module")
def trained_kinetgan(lab_bundle_small):
    """A KiNETGAN trained briefly on a small lab capture (shared by tests)."""
    config = KiNETGANConfig(
        embedding_dim=16,
        generator_dims=(48,),
        discriminator_dims=(48,),
        epochs=6,
        batch_size=64,
        knowledge_negatives_per_batch=32,
        seed=1,
    )
    model = KiNETGAN(config)
    model.fit(
        lab_bundle_small.table,
        catalog=lab_bundle_small.catalog,
        condition_columns=lab_bundle_small.condition_columns,
    )
    return model


class TestFitSample:
    def test_sample_shape_and_schema(self, trained_kinetgan, lab_bundle_small):
        synthetic = trained_kinetgan.sample(200)
        assert synthetic.n_rows == 200
        assert synthetic.schema.names == lab_bundle_small.schema.names

    def test_sampled_values_respect_schema_domains(self, trained_kinetgan, lab_bundle_small):
        synthetic = trained_kinetgan.sample(150)
        for spec in lab_bundle_small.schema:
            values = synthetic.column(spec.name)
            if spec.is_categorical:
                assert set(values).issubset(set(spec.categories))
            else:
                numeric = values.astype(float)
                if spec.minimum is not None:
                    assert numeric.min() >= spec.minimum - 1e-6
                if spec.maximum is not None:
                    assert numeric.max() <= spec.maximum + 1e-6

    def test_label_distribution_roughly_preserved(self, trained_kinetgan, lab_bundle_small):
        synthetic = trained_kinetgan.sample(600)
        real = lab_bundle_small.table.class_distribution("label")
        synth = synthetic.class_distribution("label")
        assert abs(real["normal"] - synth.get("normal", 0.0)) < 0.2

    def test_conditional_sampling_honours_condition(self, trained_kinetgan):
        synthetic = trained_kinetgan.sample(120, conditions={"event_type": "traffic_flooding"})
        share = synthetic.class_distribution("event_type").get("traffic_flooding", 0.0)
        assert share > 0.7

    def test_sampling_is_reproducible_with_same_rng(self, trained_kinetgan):
        a = trained_kinetgan.sample(50, rng=np.random.default_rng(9))
        b = trained_kinetgan.sample(50, rng=np.random.default_rng(9))
        assert a.to_records() == b.to_records()

    def test_history_recorded(self, trained_kinetgan):
        history = trained_kinetgan.history
        assert history.epochs == 6
        assert len(history.discriminator_loss) == 6
        assert np.isfinite(history.last()["generator_loss"])

    def test_validity_report_available(self, trained_kinetgan):
        report = trained_kinetgan.validity_report(n=150, rng=np.random.default_rng(0))
        assert 0.0 <= report.validity_rate <= 1.0

    def test_save_and_reload_weights(self, trained_kinetgan, tmp_path):
        before = trained_kinetgan.sample(30, rng=np.random.default_rng(4))
        trained_kinetgan.save(tmp_path)
        # Perturb, then reload.
        for param, _ in trained_kinetgan.trainer.generator.parameters():
            param += 0.3
        trained_kinetgan.load_weights(tmp_path)
        after = trained_kinetgan.sample(30, rng=np.random.default_rng(4))
        assert before.to_records() == after.to_records()


class TestErrorHandling:
    def test_sample_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KiNETGAN().sample(10)

    def test_invalid_sample_size_rejected(self, trained_kinetgan):
        with pytest.raises(ValueError):
            trained_kinetgan.sample(0)

    def test_validity_report_without_knowledge_raises(self, lab_bundle_small, fast_config):
        model = KiNETGAN(fast_config)
        model.fit(lab_bundle_small.table.head(200), condition_columns=["label"])
        with pytest.raises(RuntimeError):
            model.validity_report(10)

    def test_unknown_condition_value_rejected(self, trained_kinetgan):
        with pytest.raises(ValueError):
            trained_kinetgan.sample(10, conditions={"event_type": "not_real"})


class TestKnowledgeAblation:
    def test_knowledge_guidance_improves_validity(self, lab_bundle_small):
        """The core claim: D_KG pushes generated records towards KG validity."""
        common = dict(
            embedding_dim=16,
            generator_dims=(48,),
            discriminator_dims=(48,),
            epochs=8,
            batch_size=64,
            knowledge_negatives_per_batch=32,
            seed=3,
        )
        with_kg = KiNETGAN(KiNETGANConfig(**common, lambda_knowledge=2.0))
        with_kg.fit(
            lab_bundle_small.table,
            catalog=lab_bundle_small.catalog,
            condition_columns=lab_bundle_small.condition_columns,
        )
        without_kg = KiNETGAN(
            KiNETGANConfig(**common, use_knowledge_discriminator=False, lambda_knowledge=0.0)
        )
        without_kg.fit(
            lab_bundle_small.table,
            condition_columns=lab_bundle_small.condition_columns,
        )
        from repro.knowledge import BatchValidator, KGReasoner, build_network_kg

        reasoner = KGReasoner(
            build_network_kg(lab_bundle_small.catalog),
            field_map=lab_bundle_small.catalog.field_map,
        )
        validator = BatchValidator(reasoner)
        rng = np.random.default_rng(0)
        validity_with = validator.report(with_kg.sample(300, rng=rng)).validity_rate
        validity_without = validator.report(without_kg.sample(300, rng=rng)).validity_rate
        assert validity_with > validity_without
