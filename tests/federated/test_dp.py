"""Tests for the client-level DP-FedAvg mechanism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federated.dp import DPFedAvgConfig, DPFedAvgMechanism
from repro.federated.parameters import state_l2_norm


def make_update(seed: int = 0, scale: float = 1.0) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "layers.0.weight": scale * rng.normal(size=(5, 4)),
        "layers.0.bias": scale * rng.normal(size=(4,)),
    }


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = DPFedAvgConfig()
        assert config.clip_norm > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clip_norm": 0.0},
            {"clip_norm": -1.0},
            {"noise_multiplier": -0.1},
            {"delta": 0.0},
            {"delta": 1.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DPFedAvgConfig(**kwargs)


class TestMechanism:
    def test_clip_bounds_update_norm(self):
        mechanism = DPFedAvgMechanism(DPFedAvgConfig(clip_norm=1.0), rng=np.random.default_rng(0))
        clipped = mechanism.clip_update(make_update(scale=10.0))
        assert state_l2_norm(clipped) <= 1.0 + 1e-9
        assert mechanism.clipped_fraction == 1.0

    def test_small_update_not_clipped(self):
        mechanism = DPFedAvgMechanism(DPFedAvgConfig(clip_norm=100.0), rng=np.random.default_rng(0))
        update = make_update(scale=0.01)
        clipped = mechanism.clip_update(update)
        for key in update:
            np.testing.assert_allclose(clipped[key], update[key])
        assert mechanism.clipped_fraction == 0.0

    def test_noise_average_changes_values_when_enabled(self):
        mechanism = DPFedAvgMechanism(
            DPFedAvgConfig(clip_norm=1.0, noise_multiplier=1.0), rng=np.random.default_rng(0)
        )
        average = make_update(scale=0.1)
        noised = mechanism.noise_average(average, n_clients=4)
        different = any(
            not np.allclose(noised[key], average[key]) for key in average
        )
        assert different

    def test_zero_noise_multiplier_is_identity_and_infinite_epsilon(self):
        mechanism = DPFedAvgMechanism(
            DPFedAvgConfig(clip_norm=1.0, noise_multiplier=0.0), rng=np.random.default_rng(0)
        )
        average = make_update(scale=0.1)
        noised = mechanism.noise_average(average, n_clients=4)
        for key in average:
            np.testing.assert_allclose(noised[key], average[key])
        assert mechanism.epsilon() == float("inf")

    def test_noise_scales_inversely_with_cohort_size(self):
        config = DPFedAvgConfig(clip_norm=1.0, noise_multiplier=1.0)
        zeros = {"w": np.zeros(20_000)}
        small_cohort = DPFedAvgMechanism(config, rng=np.random.default_rng(1)).noise_average(
            zeros, n_clients=2
        )
        large_cohort = DPFedAvgMechanism(config, rng=np.random.default_rng(1)).noise_average(
            zeros, n_clients=200
        )
        assert np.std(small_cohort["w"]) > 10 * np.std(large_cohort["w"])

    def test_epsilon_grows_with_rounds(self):
        mechanism = DPFedAvgMechanism(
            DPFedAvgConfig(clip_norm=1.0, noise_multiplier=1.2, delta=1e-5),
            rng=np.random.default_rng(0),
        )
        epsilons = []
        for _ in range(3):
            mechanism.record_round(sample_rate=0.5)
            epsilons.append(mechanism.epsilon())
        assert epsilons[0] < epsilons[1] < epsilons[2]

    def test_invalid_cohort_size_rejected(self):
        mechanism = DPFedAvgMechanism(DPFedAvgConfig(), rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            mechanism.noise_average(make_update(), n_clients=0)
