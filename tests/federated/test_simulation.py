"""Tests for the end-to-end federated NIDS simulation."""

from __future__ import annotations

import pytest

from repro.federated.dp import DPFedAvgConfig
from repro.federated.simulation import FederatedNIDSSimulation


@pytest.fixture(scope="module")
def quick_result(lab_bundle_small):
    simulation = FederatedNIDSSimulation(
        lab_bundle_small,
        num_clients=3,
        skew=0.6,
        hidden_dims=(16,),
        num_rounds=4,
        local_epochs=1,
        learning_rate=0.1,
        batch_size=64,
        seed=0,
    )
    return simulation.run()


class TestFederatedNIDSSimulation:
    def test_accuracies_are_probabilities(self, quick_result):
        for value in (
            quick_result.local_only,
            quick_result.federated,
            quick_result.centralised,
        ):
            assert 0.0 <= value <= 1.0

    def test_federated_not_worse_than_local_only_f1(self, quick_result):
        """Sharing weights should close (part of) the non-IID macro-F1 gap."""
        assert quick_result.federated_f1 >= quick_result.local_only_f1 - 0.05

    def test_round_accuracies_recorded(self, quick_result):
        assert len(quick_result.round_accuracies) == 4

    def test_per_client_metrics_present(self, quick_result):
        assert len(quick_result.per_client_local) == 3

    def test_dp_variant_populates_epsilon(self, lab_bundle_small):
        simulation = FederatedNIDSSimulation(
            lab_bundle_small,
            num_clients=2,
            skew=0.4,
            hidden_dims=(8,),
            num_rounds=2,
            local_epochs=1,
            dp_config=DPFedAvgConfig(clip_norm=1.0, noise_multiplier=1.0, delta=1e-5),
            seed=1,
        )
        result = simulation.run()
        assert result.federated_dp is not None
        assert result.epsilon is not None and result.epsilon > 0.0

    def test_invalid_parameters_rejected(self, lab_bundle_small):
        with pytest.raises(ValueError):
            FederatedNIDSSimulation(lab_bundle_small, num_rounds=0)
        with pytest.raises(ValueError):
            FederatedNIDSSimulation(lab_bundle_small, local_epochs=0)

    def test_str_summary_mentions_strategies(self, quick_result):
        text = str(quick_result)
        assert "federated" in text and "centralised" in text
