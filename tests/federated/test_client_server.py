"""Integration tests for the federated client / server loop.

The toy problem is a linearly separable two-class Gaussian mixture so that a
handful of FedAvg rounds is enough for the global model to become clearly
better than chance.
"""

from __future__ import annotations

import math
import warnings

import numpy as np
import pytest

from repro.federated.client import ClientUpdate, FederatedClient
from repro.federated.dp import DPFedAvgConfig
from repro.federated.server import FederatedServer
from repro.neural.layers import Dense, ReLU
from repro.neural.network import Sequential


def make_blobs(n: int, seed: int, shift: float = 2.5) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    half = n // 2
    class0 = rng.normal(loc=-shift, scale=1.0, size=(half, 4))
    class1 = rng.normal(loc=+shift, scale=1.0, size=(n - half, 4))
    X = np.concatenate([class0, class1])
    y = np.concatenate([np.zeros(half, dtype=int), np.ones(n - half, dtype=int)])
    order = rng.permutation(n)
    return X[order], y[order]


def model_fn() -> Sequential:
    rng = np.random.default_rng(0)
    return Sequential(
        [Dense(4, 16, rng=rng, init="he"), ReLU(), Dense(16, 2, rng=rng, init="glorot")]
    )


def make_clients(num_clients: int = 3, n_per_client: int = 120, **kwargs) -> list[FederatedClient]:
    clients = []
    for i in range(num_clients):
        X, y = make_blobs(n_per_client, seed=10 + i)
        clients.append(
            FederatedClient(
                client_id=f"c{i}",
                features=X,
                labels=y,
                model_fn=model_fn,
                learning_rate=0.05,
                batch_size=32,
                local_epochs=2,
                seed=i,
                **kwargs,
            )
        )
    return clients


class TestFederatedClient:
    def test_client_validation(self):
        X, y = make_blobs(20, seed=0)
        with pytest.raises(ValueError):
            FederatedClient("c", X[:0], y[:0], model_fn)
        with pytest.raises(ValueError):
            FederatedClient("c", X, y[:-1], model_fn)
        with pytest.raises(ValueError):
            FederatedClient("c", X, y, model_fn, learning_rate=0.0)
        with pytest.raises(ValueError):
            FederatedClient("c", X, y, model_fn, proximal_mu=-1.0)

    def test_local_update_reduces_loss_direction(self):
        client = make_clients(1)[0]
        global_state = model_fn().state_dict()
        update = client.local_update(global_state)
        assert update.n_examples == client.n_examples
        assert update.client_id == client.client_id
        assert set(update.update) == set(global_state)
        assert update.metrics["local_accuracy"] > 0.5

    def test_update_is_delta_not_absolute(self):
        client = make_clients(1)[0]
        global_state = model_fn().state_dict()
        update = client.local_update(global_state)
        # Applying the delta to the global state must differ from the global state.
        assert any(np.abs(update.update[key]).sum() > 0 for key in update.update)

    def test_label_distribution_sums_to_one(self):
        client = make_clients(1)[0]
        distribution = client.label_distribution()
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_fedprox_update_stays_closer_to_global(self):
        X, y = make_blobs(200, seed=3)
        plain = FederatedClient("p", X, y, model_fn, local_epochs=4, seed=0)
        prox = FederatedClient("q", X, y, model_fn, local_epochs=4, proximal_mu=5.0, seed=0)
        global_state = model_fn().state_dict()
        from repro.federated.parameters import state_l2_norm

        plain_norm = state_l2_norm(plain.local_update(global_state).update)
        prox_norm = state_l2_norm(prox.local_update(global_state).update)
        assert prox_norm < plain_norm


class TestFederatedServer:
    def test_validation(self):
        clients = make_clients(2)
        with pytest.raises(ValueError):
            FederatedServer(model_fn, [])
        with pytest.raises(ValueError):
            FederatedServer(model_fn, clients, aggregator="mystery")
        with pytest.raises(ValueError):
            FederatedServer(model_fn, clients, client_fraction=0.0)
        with pytest.raises(ValueError):
            FederatedServer(model_fn, clients, server_lr=0.0)

    def test_fedavg_learns_the_toy_problem(self):
        clients = make_clients(3)
        X_test, y_test = make_blobs(300, seed=99)
        server = FederatedServer(model_fn, clients, seed=0)
        history = server.run(6, eval_features=X_test, eval_labels=y_test)
        assert history.n_rounds == 6
        assert history.final_accuracy is not None
        assert history.final_accuracy > 0.9

    def test_client_sampling_selects_subset(self):
        clients = make_clients(4)
        server = FederatedServer(model_fn, clients, client_fraction=0.5, seed=1)
        round_info = server.run_round()
        assert len(round_info.participants) == 2

    def test_robust_aggregators_run(self):
        clients = make_clients(4)
        for aggregator in ("median", "trimmed_mean"):
            server = FederatedServer(model_fn, clients, aggregator=aggregator, seed=0)
            server.run(2)
            X_test, y_test = make_blobs(200, seed=42)
            assert server.evaluate(X_test, y_test) > 0.6

    def test_secure_aggregation_matches_plain_fedavg(self):
        clients_a = make_clients(3)
        clients_b = make_clients(3)
        X_test, y_test = make_blobs(200, seed=7)
        plain = FederatedServer(model_fn, clients_a, seed=0)
        masked = FederatedServer(model_fn, clients_b, secure_aggregation=True, seed=0)
        plain.run(3)
        masked.run(3)
        # The protocols compute the same average (up to mask-cancellation
        # round-off), so the resulting detectors agree on almost all points.
        agreement = (plain.predict(X_test) == masked.predict(X_test)).mean()
        assert agreement > 0.95

    def test_dp_training_runs_and_reports_epsilon(self):
        clients = make_clients(3)
        server = FederatedServer(
            model_fn,
            clients,
            dp_config=DPFedAvgConfig(clip_norm=1.0, noise_multiplier=0.8, delta=1e-5),
            seed=0,
        )
        server.run(3)
        epsilon = server.epsilon()
        assert epsilon is not None and epsilon > 0.0
        assert server.history.rounds[-1].epsilon == pytest.approx(epsilon)

    def test_history_records_losses_and_participants(self):
        clients = make_clients(2)
        server = FederatedServer(model_fn, clients, seed=0)
        round_info = server.run_round()
        assert round_info.participants == ["c0", "c1"]
        assert np.isfinite(round_info.mean_client_loss)
        assert 0.0 <= round_info.mean_client_accuracy <= 1.0

    def test_run_rejects_nonpositive_rounds(self):
        server = FederatedServer(model_fn, make_clients(2), seed=0)
        with pytest.raises(ValueError):
            server.run(0)


class TestRoundMetricGuards:
    def test_round_with_no_usable_metrics_stays_quiet(self):
        """A round whose clients report no usable metrics must not emit a
        RuntimeWarning through np.mean -- it degrades to NaN silently."""

        class MetriclessClient(FederatedClient):
            def local_update(self, global_state, rng=None):
                update = super().local_update(global_state, rng=rng)
                return ClientUpdate(
                    client_id=update.client_id,
                    update=update.update,
                    n_examples=update.n_examples,
                    local_loss=float("nan"),
                    metrics={},
                )

        X, y = make_blobs(40, seed=0)
        clients = [
            MetriclessClient(f"m{i}", X, y, model_fn, local_epochs=1, seed=i)
            for i in range(2)
        ]
        server = FederatedServer(model_fn, clients, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            round_info = server.run_round()
        assert math.isnan(round_info.mean_client_loss)
        assert math.isnan(round_info.mean_client_accuracy)
        assert round_info.participants == ["m0", "m1"]

    def test_partial_metrics_average_only_the_usable_ones(self):
        """Finite metrics from some clients are averaged; NaNs are ignored."""

        class HalfReportingClient(FederatedClient):
            def local_update(self, global_state, rng=None):
                update = super().local_update(global_state, rng=rng)
                if self.client_id == "h0":
                    update.metrics = {"local_accuracy": 0.75}
                    update.local_loss = 0.5
                else:
                    update.metrics = {}
                    update.local_loss = float("nan")
                return update

        X, y = make_blobs(40, seed=1)
        clients = [
            HalfReportingClient(f"h{i}", X, y, model_fn, local_epochs=1, seed=i)
            for i in range(2)
        ]
        server = FederatedServer(model_fn, clients, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            round_info = server.run_round()
        assert round_info.mean_client_accuracy == pytest.approx(0.75)
        assert round_info.mean_client_loss == pytest.approx(0.5)
