"""Tests for the aggregation rules and the simulated secure aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federated.aggregation import (
    SecureAggregationSession,
    fedavg_aggregate,
    median_aggregate,
    safe_mean,
    trimmed_mean_aggregate,
)
from repro.federated.parameters import flatten_state, state_add, state_scale


def make_state(seed: int = 0, scale: float = 1.0) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "layers.0.weight": scale * rng.normal(size=(3, 2)),
        "layers.0.bias": scale * rng.normal(size=(2,)),
    }


class TestAggregationRules:
    def test_fedavg_matches_weighted_average(self):
        updates = [make_state(i) for i in range(3)]
        weights = [10.0, 20.0, 70.0]
        aggregated = fedavg_aggregate(updates, weights)
        expected = state_add(
            state_add(state_scale(updates[0], 0.1), state_scale(updates[1], 0.2)),
            state_scale(updates[2], 0.7),
        )
        for key in aggregated:
            np.testing.assert_allclose(aggregated[key], expected[key])

    def test_median_resists_an_extreme_client(self):
        honest = [make_state(i, scale=0.1) for i in range(4)]
        byzantine = make_state(99, scale=1000.0)
        aggregated = median_aggregate(honest + [byzantine])
        flat, _ = flatten_state(aggregated)
        assert np.abs(flat).max() < 10.0

    def test_trimmed_mean_resists_an_extreme_client(self):
        honest = [make_state(i, scale=0.1) for i in range(4)]
        byzantine = make_state(99, scale=1000.0)
        aggregated = trimmed_mean_aggregate(honest + [byzantine], trim_fraction=0.25)
        flat, _ = flatten_state(aggregated)
        assert np.abs(flat).max() < 10.0

    def test_trimmed_mean_zero_trim_is_plain_mean(self):
        updates = [make_state(i) for i in range(3)]
        trimmed = trimmed_mean_aggregate(updates, trim_fraction=0.0)
        mean = fedavg_aggregate(updates)
        for key in trimmed:
            np.testing.assert_allclose(trimmed[key], mean[key])

    def test_trim_fraction_validation(self):
        with pytest.raises(ValueError):
            trimmed_mean_aggregate([make_state()], trim_fraction=0.5)

    def test_incompatible_layouts_rejected(self):
        good = make_state()
        bad = {"other": np.zeros(3)}
        with pytest.raises(ValueError):
            median_aggregate([good, bad])


class TestSecureAggregation:
    def test_sum_matches_plain_sum(self):
        updates = {f"c{i}": make_state(i) for i in range(4)}
        session = SecureAggregationSession(list(updates), template=updates["c0"], seed=3)
        for client_id, update in updates.items():
            session.submit(client_id, update)
        aggregated = session.aggregate()
        expected = None
        for update in updates.values():
            expected = update if expected is None else state_add(expected, update)
        for key in aggregated:
            np.testing.assert_allclose(aggregated[key], expected[key], atol=1e-9)

    def test_mean_matches_plain_mean(self):
        updates = {f"c{i}": make_state(i) for i in range(3)}
        session = SecureAggregationSession(list(updates), template=updates["c0"], seed=1)
        for client_id, update in updates.items():
            session.submit(client_id, update)
        mean = session.aggregate_mean()
        expected = fedavg_aggregate(list(updates.values()))
        for key in mean:
            np.testing.assert_allclose(mean[key], expected[key], atol=1e-9)

    def test_masked_update_hides_the_raw_update(self):
        updates = {f"c{i}": make_state(i, scale=0.01) for i in range(3)}
        session = SecureAggregationSession(list(updates), template=updates["c0"], seed=5)
        masked = session.mask_update("c0", updates["c0"])
        raw, _ = flatten_state(updates["c0"])
        # The pairwise masks are O(1) noise on top of an O(0.01) signal, so
        # the masked vector must be very far from the raw one.
        assert np.linalg.norm(masked - raw) > 10 * np.linalg.norm(raw)

    def test_missing_submission_blocks_aggregation(self):
        updates = {f"c{i}": make_state(i) for i in range(3)}
        session = SecureAggregationSession(list(updates), template=updates["c0"], seed=2)
        session.submit("c0", updates["c0"])
        session.submit("c1", updates["c1"])
        with pytest.raises(RuntimeError):
            session.aggregate()

    def test_unknown_client_and_bad_layout_rejected(self):
        updates = {f"c{i}": make_state(i) for i in range(2)}
        session = SecureAggregationSession(list(updates), template=updates["c0"], seed=2)
        with pytest.raises(KeyError):
            session.mask_update("stranger", updates["c0"])
        with pytest.raises(ValueError):
            session.mask_update("c0", {"different": np.zeros(4)})

    def test_needs_at_least_two_clients(self):
        with pytest.raises(ValueError):
            SecureAggregationSession(["solo"], template=make_state())

    def test_duplicate_client_ids_rejected(self):
        with pytest.raises(ValueError):
            SecureAggregationSession(["a", "a"], template=make_state())


class TestSafeMean:
    def test_mean_of_finite_values(self):
        assert safe_mean([1.0, 3.0]) == pytest.approx(2.0)

    def test_nans_are_ignored(self):
        assert safe_mean([float("nan"), 4.0]) == pytest.approx(4.0)

    def test_all_nan_or_empty_degrade_quietly_to_nan(self):
        import math
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            assert math.isnan(safe_mean([]))
            assert math.isnan(safe_mean([float("nan"), float("nan")]))
            assert math.isnan(safe_mean([float("inf")]))
