"""Quorum degradation: rounds that lose participants but not correctness.

The contract under test (see ROADMAP, execution-plane fault tolerance):

* a participant whose work unit still fails after its retries is *dropped* --
  recorded in the round summary, excluded from aggregation, and re-weighted
  away exactly like a ``client_fraction`` non-participant;
* fewer survivors than the quorum (``min_clients`` / ``min_sites`` /
  ``min_nodes``) raise a typed :class:`~repro.runtime.QuorumError` carrying
  the survivor / required counts, before any global state is touched;
* dropped participants' authoritative local state is left uncorrupted, so
  later fault-free rounds proceed normally.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import IndependentSampler
from repro.core.config import KiNETGANConfig
from repro.distributed.simulation import DistributedNIDSSimulation
from repro.federated.client import FederatedClient
from repro.federated.kinetgan import FederatedKiNETGAN
from repro.federated.partition import label_skew_partition
from repro.federated.server import FederatedServer
from repro.federated.simulation import DetectorFactory
from repro.runtime import FaultInjector, QuorumError, SerialExecutor


def _failing(schedule: dict) -> SerialExecutor:
    """A serial executor whose listed ``(task_id, attempt)`` entries fail."""
    executor = SerialExecutor()
    executor.install_faults(FaultInjector(seed=0, schedule=schedule))
    return executor


def _always_failing() -> SerialExecutor:
    executor = SerialExecutor()
    executor.install_faults(FaultInjector(seed=0, error_rate=1.0))
    return executor


def _make_clients(ids: list[str]) -> tuple[DetectorFactory, list[FederatedClient]]:
    """Clients whose data and seeds depend only on their own id, so the same
    id yields bit-identical clients in differently sized federations."""
    model_fn = DetectorFactory(n_features=5, n_classes=2, hidden_dims=(8,), seed=0)
    clients = []
    for client_id in ids:
        index = int(client_id[1:])
        rng = np.random.default_rng(40 + index)
        clients.append(
            FederatedClient(
                client_id=client_id,
                features=rng.normal(size=(96, 5)),
                labels=rng.integers(0, 2, size=96),
                model_fn=model_fn,
                learning_rate=0.05,
                batch_size=32,
                local_epochs=1,
                seed=index,
            )
        )
    return model_fn, clients


class TestServerQuorum:
    def test_dropped_client_recorded_and_reweighted_like_a_non_participant(self):
        """A round that drops one of three clients must aggregate exactly as
        a fault-free round over the two survivors alone: dropped ids land in
        ``round.dropped``, survivors' fedavg weights are renormalised, and
        the resulting global state is bit-identical."""
        model_fn, clients = _make_clients(["c0", "c1", "c2"])
        with FederatedServer(
            model_fn, clients, seed=0, executor=_failing({(0, 0): "error"})
        ) as degraded:
            round_info = degraded.run_round()
            degraded_state = degraded.global_state
        assert round_info.dropped == ["c0"]
        assert round_info.participants == ["c1", "c2"]

        model_fn, survivors_only = _make_clients(["c1", "c2"])
        with FederatedServer(model_fn, survivors_only, seed=0) as reference:
            reference.run_round()
            reference_state = reference.global_state
        assert set(degraded_state) == set(reference_state)
        for key in reference_state:
            assert np.array_equal(reference_state[key], degraded_state[key]), key

    def test_quorum_error_is_typed_and_leaves_global_state_untouched(self):
        model_fn, clients = _make_clients(["c0", "c1", "c2"])
        with FederatedServer(
            model_fn,
            clients,
            seed=0,
            executor=_always_failing(),
            min_clients=2,
            task_retries=1,
        ) as server:
            with pytest.raises(QuorumError) as excinfo:
                server.run_round()
            assert excinfo.value.survivors == 0
            assert excinfo.value.required == 2
            assert server.history.n_rounds == 0
            initial = model_fn().state_dict()
            for key, value in initial.items():
                assert np.array_equal(value, server.global_state[key]), key

    def test_quorum_checked_even_on_the_fault_free_fast_path(self):
        model_fn, clients = _make_clients(["c0", "c1"])
        with FederatedServer(model_fn, clients, seed=0, min_clients=3) as server:
            with pytest.raises(QuorumError) as excinfo:
                server.run_round()
        assert excinfo.value.required == 3


class TestKiNETGANQuorum:
    CONFIG = KiNETGANConfig(
        embedding_dim=8,
        generator_dims=(16,),
        discriminator_dims=(16,),
        epochs=1,
        batch_size=32,
        knowledge_negatives_per_batch=8,
        max_modes=3,
        seed=0,
    )

    @classmethod
    def _build(cls, bundle, executor, **kwargs) -> FederatedKiNETGAN:
        table = bundle.table.head(300)
        rng = np.random.default_rng(0)
        parts = label_skew_partition(table, "label", 2, rng, skew=0.5, min_rows=20)
        fed = FederatedKiNETGAN(
            reference_table=table.head(150),
            config=cls.CONFIG,
            catalog=bundle.catalog,
            condition_columns=bundle.condition_columns,
            seed=0,
            executor=executor,
            **kwargs,
        )
        for i, part in enumerate(parts):
            fed.add_site(f"site-{i}", part)
        return fed

    def test_dropped_site_skipped_without_corrupting_parent_state(
        self, lab_bundle_small
    ):
        """Site 0 fails in round 1 (task id 0) and is dropped; its history
        must not be extended and the next, fault-free round trains both
        sites from a consistent state."""
        with self._build(
            lab_bundle_small, _failing({(0, 0): "error"})
        ) as fed:
            first = fed.run_round(local_epochs=1)
            assert first.dropped == ["site-0"]
            assert first.participants == ["site-1"]
            assert fed.sites[0].trainer.history.epochs == 0
            assert fed.sites[1].trainer.history.epochs == 1

            second = fed.run_round(local_epochs=1)
            assert second.dropped == []
            assert second.participants == ["site-0", "site-1"]
            assert fed.sites[0].trainer.history.epochs == 1
            assert fed.sites[1].trainer.history.epochs == 2
            # The degraded run still yields a usable global model.
            assert fed.sample(40).n_rows == 40

    def test_quorum_error_when_min_sites_unmet(self, lab_bundle_small):
        with self._build(
            lab_bundle_small, _failing({(0, 0): "error"}), min_sites=2
        ) as fed:
            with pytest.raises(QuorumError) as excinfo:
                fed.run_round(local_epochs=1)
            assert excinfo.value.survivors == 1
            assert excinfo.value.required == 2
            assert fed.rounds == []


class TestDistributedQuorum:
    @staticmethod
    def _simulation(bundle, executor, **kwargs) -> DistributedNIDSSimulation:
        return DistributedNIDSSimulation(
            bundle,
            num_nodes=3,
            non_iid_skew=0.5,
            synthesizer_factory=lambda seed: IndependentSampler(seed=seed),
            seed=5,
            executor=executor,
            **kwargs,
        )

    def test_dead_node_marked_and_run_continues(self, lab_bundle_small):
        with self._simulation(
            lab_bundle_small, _failing({(0, 0): "error"})
        ) as simulation:
            result = simulation.run(share_size=120)
        assert result.failed_nodes == ["node-0"]
        assert set(result.per_node_local) == {"node-1", "node-2"}
        assert set(result.share_validity) == {"node-1", "node-2"}
        assert 0.0 <= result.synthetic_sharing <= 1.0

    def test_quorum_error_when_min_nodes_unmet(self, lab_bundle_small):
        with self._simulation(
            lab_bundle_small, _always_failing(), min_nodes=1
        ) as simulation:
            with pytest.raises(QuorumError) as excinfo:
                simulation.run(share_size=120)
        assert excinfo.value.survivors == 0
        assert excinfo.value.required == 1
