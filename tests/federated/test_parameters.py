"""Tests for the state-dictionary arithmetic used by federated averaging."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated.parameters import (
    StateCodec,
    clip_state_norm,
    copy_state,
    flatten_state,
    state_add,
    state_l2_norm,
    state_scale,
    state_subtract,
    unflatten_state,
    weighted_average,
    zeros_like_state,
)


def make_state(seed: int = 0, scale: float = 1.0) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "layers.0.weight": scale * rng.normal(size=(4, 3)),
        "layers.0.bias": scale * rng.normal(size=(3,)),
        "layers.1.weight": scale * rng.normal(size=(3, 2)),
    }


class TestBasicArithmetic:
    def test_copy_is_deep(self):
        state = make_state()
        cloned = copy_state(state)
        cloned["layers.0.bias"][0] = 999.0
        assert state["layers.0.bias"][0] != 999.0

    def test_zeros_like_matches_shapes(self):
        state = make_state()
        zeros = zeros_like_state(state)
        assert set(zeros) == set(state)
        for key in state:
            assert zeros[key].shape == state[key].shape
            assert np.all(zeros[key] == 0.0)

    def test_add_subtract_roundtrip(self):
        a, b = make_state(1), make_state(2)
        roundtrip = state_subtract(state_add(a, b), b)
        for key in a:
            np.testing.assert_allclose(roundtrip[key], a[key])

    def test_scale(self):
        state = make_state(3)
        doubled = state_scale(state, 2.0)
        for key in state:
            np.testing.assert_allclose(doubled[key], 2.0 * state[key])

    def test_incompatible_keys_rejected(self):
        a = make_state()
        b = {key: value for key, value in make_state().items() if "bias" not in key}
        with pytest.raises(ValueError):
            state_add(a, b)

    def test_incompatible_shapes_rejected(self):
        a = make_state()
        b = copy_state(a)
        b["layers.0.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            state_subtract(a, b)


class TestNorms:
    def test_l2_norm_matches_flat_vector(self):
        state = make_state(4)
        flat, _ = flatten_state(state)
        assert state_l2_norm(state) == pytest.approx(float(np.linalg.norm(flat)))

    def test_clip_noop_when_under_limit(self):
        state = make_state(5, scale=1e-3)
        clipped, norm = clip_state_norm(state, max_norm=100.0)
        assert norm < 100.0
        for key in state:
            np.testing.assert_allclose(clipped[key], state[key])

    def test_clip_scales_to_limit(self):
        state = make_state(6, scale=10.0)
        clipped, norm = clip_state_norm(state, max_norm=1.0)
        assert norm > 1.0
        assert state_l2_norm(clipped) == pytest.approx(1.0, rel=1e-9)

    def test_clip_rejects_nonpositive_norm(self):
        with pytest.raises(ValueError):
            clip_state_norm(make_state(), max_norm=0.0)


class TestWeightedAverage:
    def test_uniform_average(self):
        a, b = make_state(1), make_state(2)
        average = weighted_average([a, b])
        for key in a:
            np.testing.assert_allclose(average[key], 0.5 * (a[key] + b[key]))

    def test_weighting_by_examples(self):
        a, b = make_state(1), make_state(2)
        average = weighted_average([a, b], weights=[3.0, 1.0])
        for key in a:
            np.testing.assert_allclose(average[key], 0.75 * a[key] + 0.25 * b[key])

    def test_rejects_empty_and_bad_weights(self):
        with pytest.raises(ValueError):
            weighted_average([])
        with pytest.raises(ValueError):
            weighted_average([make_state()], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_average([make_state(), make_state()], weights=[0.0, 0.0])
        with pytest.raises(ValueError):
            weighted_average([make_state(), make_state()], weights=[-1.0, 2.0])

    def test_average_of_identical_states_is_identity(self):
        state = make_state(7)
        average = weighted_average([state, copy_state(state), copy_state(state)])
        for key in state:
            np.testing.assert_allclose(average[key], state[key])


class TestFlattenUnflatten:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, seed):
        state = make_state(seed)
        flat, layout = flatten_state(state)
        restored = unflatten_state(flat, layout)
        assert set(restored) == set(state)
        for key in state:
            np.testing.assert_allclose(restored[key], state[key])

    def test_layout_is_sorted_and_stable(self):
        state = make_state()
        _, layout = flatten_state(state)
        keys = [key for key, _ in layout]
        assert keys == sorted(keys)

    def test_wrong_vector_length_rejected(self):
        state = make_state()
        flat, layout = flatten_state(state)
        with pytest.raises(ValueError):
            unflatten_state(flat[:-1], layout)
        with pytest.raises(ValueError):
            unflatten_state(np.concatenate([flat, [0.0]]), layout)

    @given(
        weights=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=5)
    )
    @settings(max_examples=25, deadline=None)
    def test_weighted_average_is_convex_combination(self, weights):
        """Every coordinate of the average lies within the per-state extremes."""
        states = [make_state(seed) for seed in range(len(weights))]
        average = weighted_average(states, weights)
        for key in states[0]:
            stacked = np.stack([state[key] for state in states])
            assert np.all(average[key] <= stacked.max(axis=0) + 1e-12)
            assert np.all(average[key] >= stacked.min(axis=0) - 1e-12)


class TestStateCodec:
    def test_roundtrip_preserves_values_shapes_dtypes(self):
        state = make_state(4)
        state["half"] = np.array([0.5, 1.5], dtype=np.float32)
        state["counter"] = np.array([3], dtype=np.int64)
        codec = StateCodec(state)
        restored = codec.decode(codec.encode(state))
        assert set(restored) == set(state)
        for key in state:
            assert restored[key].shape == state[key].shape
            np.testing.assert_allclose(
                np.asarray(restored[key], dtype=np.float64),
                np.asarray(state[key], dtype=np.float64),
            )
        # Floating dtypes are restored; integer entries stay float64 so that
        # decoding an *aggregate* (e.g. the mean of counters) cannot truncate.
        assert restored["half"].dtype == np.float32
        assert restored["layers.0.weight"].dtype == np.float64
        assert restored["counter"].dtype == np.float64

    def test_decoded_aggregate_of_int_entries_is_not_truncated(self):
        state_a = make_state(1)
        state_a["counter"] = np.array([1], dtype=np.int64)
        state_b = make_state(2)
        state_b["counter"] = np.array([2], dtype=np.int64)
        average = weighted_average([state_a, state_b])
        assert average["counter"][0] == pytest.approx(1.5)

    def test_dim_counts_every_parameter(self):
        state = make_state()
        codec = StateCodec(state)
        assert codec.dim == sum(value.size for value in state.values())

    def test_encode_many_stacks_clients_rows(self):
        states = [make_state(seed) for seed in range(3)]
        codec = StateCodec(states[0])
        matrix = codec.encode_many(states)
        assert matrix.shape == (3, codec.dim)
        for row, state in enumerate(states):
            np.testing.assert_allclose(matrix[row], codec.encode(state))

    def test_layout_matches_flatten_state(self):
        state = make_state()
        codec = StateCodec(state)
        flat, layout = flatten_state(state)
        assert codec.layout == layout
        np.testing.assert_allclose(codec.encode(state), flat)

    def test_incompatible_states_rejected(self):
        codec = StateCodec(make_state())
        with pytest.raises(ValueError):
            codec.encode({"other": np.zeros(3)})
        bad = make_state()
        bad["layers.0.bias"] = np.zeros((5,))
        with pytest.raises(ValueError):
            codec.encode(bad)
        with pytest.raises(ValueError):
            codec.decode(np.zeros(codec.dim + 1))
        with pytest.raises(ValueError):
            codec.encode_many([])

    @given(
        weights=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=5)
    )
    @settings(max_examples=25, deadline=None)
    def test_weighted_average_matches_per_tensor_loop(self, weights):
        """The stacked np.average equals the seed's per-tensor accumulation."""
        states = [make_state(seed) for seed in range(len(weights))]
        stacked = weighted_average(states, weights)
        normalised = np.asarray(weights) / np.sum(weights)
        for key in states[0]:
            expected = sum(w * state[key] for w, state in zip(normalised, states))
            np.testing.assert_allclose(stacked[key], expected, rtol=1e-12, atol=1e-12)


class TestArenaFlatFastPath:
    """Single-copy encode/decode against arena-consolidated networks."""

    def _network(self, seed: int = 0):
        from repro.neural.layers import BatchNorm, Dense, ReLU
        from repro.neural.network import Sequential

        rng = np.random.default_rng(seed)
        network = Sequential(
            [Dense(4, 6, rng=rng), BatchNorm(6), ReLU(), Dense(6, 2, rng=rng)]
        )
        network.consolidate()
        return network

    def test_arena_state_is_detected_as_one_flat_view(self):
        network = self._network()
        codec = StateCodec(network.state_dict())
        flat = codec._flat_view(network.state_dict())
        assert flat is not None
        assert flat.base is network.arena.data or flat is network.arena.data
        assert np.array_equal(flat, network.arena.data)

    def test_plain_state_takes_the_per_key_path(self):
        codec = StateCodec(make_state())
        assert codec._flat_view(make_state()) is None

    def test_encode_matches_per_key_encoding(self):
        network = self._network(seed=1)
        state = network.state_dict()
        codec = StateCodec(state)
        fast = codec.encode(state)
        per_key = codec.encode({key: value.copy() for key, value in state.items()})
        assert np.array_equal(fast, per_key)

    def test_decode_into_fills_live_arrays_in_place(self):
        network = self._network(seed=2)
        state = network.state_dict()
        codec = StateCodec(state)
        vector = np.arange(codec.dim, dtype=np.float64)
        result = codec.decode_into(vector, state)
        assert result is state
        assert network.arena.intact
        assert np.array_equal(network.arena.data, vector)
        # Round trip: encode reads back exactly what decode_into wrote.
        assert np.array_equal(codec.encode(network.state_dict()), vector)

    def test_decode_into_per_key_path_matches_decode(self):
        template = make_state(seed=3)
        codec = StateCodec(template)
        vector = np.random.default_rng(4).normal(size=codec.dim)
        target = make_state(seed=5)
        codec.decode_into(vector, target)
        expected = codec.decode(vector)
        for key, value in expected.items():
            assert np.array_equal(target[key], value)

    def test_decode_into_rejects_wrong_length(self):
        codec = StateCodec(make_state())
        with pytest.raises(ValueError):
            codec.decode_into(np.zeros(codec.dim + 1), make_state())

    def test_detached_views_fall_back_to_per_key(self):
        import pickle

        network = self._network(seed=6)
        clone = pickle.loads(pickle.dumps(network))
        codec = StateCodec(network.state_dict())
        state = clone.state_dict()
        assert codec._flat_view(state) is None  # unpickled views are standalone
        assert np.array_equal(codec.encode(state), codec.encode(network.state_dict()))

    def test_scrambled_key_order_is_not_mistaken_for_flat(self):
        flat = np.arange(10, dtype=np.float64)
        state = {"b": flat[4:10].reshape(2, 3), "a": flat[0:4].reshape(4,)}
        codec = StateCodec(state)
        assert codec._flat_view(state) is not None  # laid out in sorted order
        swapped = {"a": flat[6:10].reshape(4,), "b": flat[0:6].reshape(2, 3)}
        assert codec._flat_view(swapped) is None

    def test_gapped_views_are_rejected(self):
        flat = np.arange(12, dtype=np.float64)
        state = {"a": flat[0:4], "b": flat[6:12].reshape(2, 3)}
        codec = StateCodec(state)
        assert codec._flat_view(state) is None
