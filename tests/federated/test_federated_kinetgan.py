"""Tests for federated KiNETGAN weight averaging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import KiNETGANConfig
from repro.federated.dp import DPFedAvgConfig
from repro.federated.kinetgan import FederatedKiNETGAN
from repro.federated.partition import label_skew_partition


@pytest.fixture(scope="module")
def tiny_config() -> KiNETGANConfig:
    return KiNETGANConfig(
        embedding_dim=8,
        generator_dims=(16,),
        discriminator_dims=(16,),
        epochs=1,
        batch_size=32,
        knowledge_negatives_per_batch=8,
        max_modes=3,
        seed=0,
    )


@pytest.fixture(scope="module")
def fed_setup(lab_bundle_small, tiny_config):
    table = lab_bundle_small.table.head(400)
    rng = np.random.default_rng(0)
    parts = label_skew_partition(table, "label", 2, rng, skew=0.5, min_rows=20)
    fed = FederatedKiNETGAN(
        reference_table=table.head(200),
        config=tiny_config,
        catalog=lab_bundle_small.catalog,
        condition_columns=lab_bundle_small.condition_columns,
        seed=0,
    )
    for i, part in enumerate(parts):
        fed.add_site(f"site-{i}", part)
    return fed, table


class TestSetup:
    def test_sites_registered(self, fed_setup):
        fed, _ = fed_setup
        assert fed.n_sites == 2

    def test_duplicate_site_rejected(self, fed_setup, lab_bundle_small):
        fed, table = fed_setup
        with pytest.raises(ValueError):
            fed.add_site("site-0", table.head(30))

    def test_needs_two_sites(self, lab_bundle_small, tiny_config):
        fed = FederatedKiNETGAN(
            reference_table=lab_bundle_small.table.head(100), config=tiny_config
        )
        fed.add_site("only", lab_bundle_small.table.head(50))
        with pytest.raises(RuntimeError):
            fed.run_round()

    def test_sampling_before_training_rejected(self, lab_bundle_small, tiny_config):
        fed = FederatedKiNETGAN(
            reference_table=lab_bundle_small.table.head(100), config=tiny_config
        )
        fed.add_site("a", lab_bundle_small.table.head(50))
        fed.add_site("b", lab_bundle_small.table.head(50))
        with pytest.raises(RuntimeError):
            fed.sample(10)


class TestTraining:
    def test_rounds_average_weights_and_record_history(self, fed_setup):
        fed, _ = fed_setup
        rounds = fed.run(num_rounds=2, local_epochs=1)
        assert len(rounds) >= 2
        generator_state, discriminator_state = fed.global_states()
        assert all(np.isfinite(value).all() for value in generator_state.values())
        assert all(np.isfinite(value).all() for value in discriminator_state.values())

        # After a round, every site carries the same broadcast weights once
        # set_state is applied (as sample() does).
        fed.sites[0].set_state(generator_state, discriminator_state)
        fed.sites[1].set_state(generator_state, discriminator_state)
        state_a = fed.sites[0].get_state()[0]
        state_b = fed.sites[1].get_state()[0]
        for key in state_a:
            np.testing.assert_allclose(state_a[key], state_b[key])

    def test_sample_returns_schema_conformant_table(self, fed_setup):
        fed, table = fed_setup
        if not fed.rounds:
            fed.run(num_rounds=1, local_epochs=1)
        synthetic = fed.sample(120, rng=np.random.default_rng(1))
        assert synthetic.n_rows == 120
        assert synthetic.schema.names == table.schema.names
        # Generated categories must come from the schema's category lists.
        protocols = set(synthetic.column("protocol"))
        assert protocols <= set(table.schema.column("protocol").categories)

    def test_invalid_round_and_epoch_counts_rejected(self, fed_setup):
        fed, _ = fed_setup
        with pytest.raises(ValueError):
            fed.run(num_rounds=0)
        with pytest.raises(ValueError):
            fed.sites[0].train_local(epochs=0)

    def test_client_fraction_validated(self, lab_bundle_small, tiny_config):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                FederatedKiNETGAN(
                    reference_table=lab_bundle_small.table.head(100),
                    config=tiny_config,
                    client_fraction=bad,
                )

    def _fraction_fed(self, lab_bundle_small, tiny_config, fraction, seed=5):
        table = lab_bundle_small.table.head(400)
        rng = np.random.default_rng(2)
        parts = label_skew_partition(table, "label", 3, rng, skew=0.3, min_rows=20)
        fed = FederatedKiNETGAN(
            reference_table=table.head(150),
            config=tiny_config,
            catalog=lab_bundle_small.catalog,
            condition_columns=lab_bundle_small.condition_columns,
            seed=seed,
            client_fraction=fraction,
        )
        for i, part in enumerate(parts):
            fed.add_site(f"site-{i}", part)
        return fed

    def test_client_fraction_subsamples_sites_per_round(self, lab_bundle_small, tiny_config):
        fed = self._fraction_fed(lab_bundle_small, tiny_config, fraction=0.5)
        rounds = fed.run(num_rounds=3, local_epochs=1)
        all_ids = {site.site_id for site in fed.sites}
        for round_info in rounds:
            assert len(round_info.participants) == 2  # round(0.5 * 3) sites
            assert set(round_info.participants) <= all_ids

    def test_client_fraction_selection_is_seeded(self, lab_bundle_small, tiny_config):
        fed_a = self._fraction_fed(lab_bundle_small, tiny_config, fraction=0.5, seed=5)
        fed_b = self._fraction_fed(lab_bundle_small, tiny_config, fraction=0.5, seed=5)
        rounds_a = fed_a.run(num_rounds=2, local_epochs=1)
        rounds_b = fed_b.run(num_rounds=2, local_epochs=1)
        assert [r.participants for r in rounds_a] == [r.participants for r in rounds_b]
        state_a, _ = fed_a.global_states()
        state_b, _ = fed_b.global_states()
        for key in state_a:
            np.testing.assert_array_equal(state_a[key], state_b[key])

    def test_full_participation_consumes_no_selection_draws(
        self, lab_bundle_small, tiny_config
    ):
        """At the default fraction the coordinator RNG stream is untouched,
        so seeded runs recorded before the knob existed replay exactly."""
        fed = self._fraction_fed(lab_bundle_small, tiny_config, fraction=1.0)
        before = fed.rng.bit_generator.state
        selected = fed._select_sites()
        assert selected == [0, 1, 2]
        assert fed.rng.bit_generator.state == before

    def test_dp_variant_reports_epsilon(self, lab_bundle_small, tiny_config):
        table = lab_bundle_small.table.head(300)
        rng = np.random.default_rng(3)
        parts = label_skew_partition(table, "label", 2, rng, skew=0.3, min_rows=20)
        fed = FederatedKiNETGAN(
            reference_table=table.head(150),
            config=tiny_config,
            catalog=lab_bundle_small.catalog,
            condition_columns=lab_bundle_small.condition_columns,
            dp_config=DPFedAvgConfig(clip_norm=5.0, noise_multiplier=0.5, delta=1e-5),
            seed=1,
        )
        for i, part in enumerate(parts):
            fed.add_site(f"s{i}", part)
        round_info = fed.run_round(local_epochs=1)
        assert round_info.epsilon is not None and round_info.epsilon > 0.0
