"""Tests for the federated data partitioners."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated.partition import dirichlet_partition, iid_partition, label_skew_partition


@pytest.fixture(scope="module")
def lab_table(lab_bundle_small):
    return lab_bundle_small.table


def total_rows(partitions) -> int:
    return sum(part.n_rows for part in partitions)


class TestIIDPartition:
    def test_preserves_all_rows(self, lab_table):
        partitions = iid_partition(lab_table, 4, np.random.default_rng(0))
        assert total_rows(partitions) == lab_table.n_rows

    def test_every_client_meets_minimum(self, lab_table):
        partitions = iid_partition(lab_table, 5, np.random.default_rng(1), min_rows=20)
        assert all(part.n_rows >= 20 for part in partitions)

    def test_roughly_balanced(self, lab_table):
        partitions = iid_partition(lab_table, 3, np.random.default_rng(2))
        sizes = np.array([part.n_rows for part in partitions])
        assert sizes.max() < 2 * sizes.min()

    def test_validation(self, lab_table):
        with pytest.raises(ValueError):
            iid_partition(lab_table, 1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            iid_partition(lab_table, 2, np.random.default_rng(0), min_rows=0)
        with pytest.raises(ValueError):
            iid_partition(lab_table.head(5), 4, np.random.default_rng(0), min_rows=10)


class TestLabelSkewPartition:
    def test_preserves_all_rows(self, lab_table):
        partitions = label_skew_partition(
            lab_table, "label", 3, np.random.default_rng(0), skew=0.7
        )
        assert total_rows(partitions) == lab_table.n_rows

    def test_high_skew_concentrates_labels(self, lab_table):
        partitions = label_skew_partition(
            lab_table, "label", 4, np.random.default_rng(1), skew=0.9
        )
        # The "normal" label's home client should hold the clear majority of
        # normal rows.
        normal_counts = [
            int((part.column("label") == "normal").sum()) for part in partitions
        ]
        assert max(normal_counts) > 0.6 * sum(normal_counts)

    def test_zero_skew_close_to_iid(self, lab_table):
        partitions = label_skew_partition(
            lab_table, "label", 3, np.random.default_rng(3), skew=0.0
        )
        sizes = np.array([part.n_rows for part in partitions])
        assert sizes.max() < 2 * sizes.min()

    def test_skew_validation(self, lab_table):
        with pytest.raises(ValueError):
            label_skew_partition(lab_table, "label", 3, np.random.default_rng(0), skew=1.0)


class TestDirichletPartition:
    def test_preserves_all_rows(self, lab_table):
        partitions = dirichlet_partition(
            lab_table, "label", 3, np.random.default_rng(0), alpha=0.5
        )
        assert total_rows(partitions) == lab_table.n_rows

    def test_minimum_rows_guaranteed(self, lab_table):
        partitions = dirichlet_partition(
            lab_table, "label", 4, np.random.default_rng(5), alpha=0.1, min_rows=10
        )
        assert all(part.n_rows >= 10 for part in partitions)

    def test_small_alpha_is_more_skewed_than_large_alpha(self, lab_table):
        rng = np.random.default_rng(7)
        skewed = dirichlet_partition(lab_table, "label", 3, rng, alpha=0.05)
        rng = np.random.default_rng(7)
        balanced = dirichlet_partition(lab_table, "label", 3, rng, alpha=100.0)

        def size_spread(partitions):
            sizes = np.array([part.n_rows for part in partitions], dtype=float)
            return sizes.std() / sizes.mean()

        assert size_spread(skewed) > size_spread(balanced)

    def test_alpha_validation(self, lab_table):
        with pytest.raises(ValueError):
            dirichlet_partition(lab_table, "label", 3, np.random.default_rng(0), alpha=0.0)

    @given(num_clients=st.integers(min_value=2, max_value=6), seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_property_rows_conserved_and_schema_kept(self, lab_bundle_small, num_clients, seed):
        table = lab_bundle_small.table
        partitions = iid_partition(table, num_clients, np.random.default_rng(seed))
        assert total_rows(partitions) == table.n_rows
        for part in partitions:
            assert part.schema.names == table.schema.names
