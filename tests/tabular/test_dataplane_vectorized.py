"""Vectorized data-plane regression tests.

Three layers of protection for the batched sampler / encoder paths:

* **Golden legacy test** -- ``legacy_sampling=True`` must reproduce the
  pre-vectorization sampler outputs *bit for bit* (the golden values below
  were captured from the seed implementation before the batched sampler
  landed, with the exact table construction in ``_golden_table``).
* **Distributional equivalence** -- the vectorized sampler draws from the
  same distribution as the legacy path: same pivot-value marginals, rows
  always drawn from the matching bucket, identical empirical-condition
  streams for the same seed.
* **Exact equivalence** -- for fixed codes (no randomness) the vectorized
  vector/values construction agrees element-wise with the per-row path, and
  the batched encoder transforms agree with per-value reference loops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tabular.encoders import ModeSpecificNormalizer, OneHotEncoder, OrdinalEncoder
from repro.tabular.sampler import ConditionSampler
from repro.tabular.schema import ColumnSpec, TableSchema
from repro.tabular.segments import BlockLayout
from repro.tabular.table import Table
from repro.tabular.transformer import DataTransformer


def _golden_table() -> Table:
    """The exact table the golden values were captured against."""
    schema = TableSchema(
        [
            ColumnSpec("proto", "categorical", categories=("tcp", "udp")),
            ColumnSpec("service", "categorical", categories=("http", "dns", "ssh")),
            ColumnSpec("bytes", "continuous", minimum=0.0, maximum=10_000.0),
            ColumnSpec("label", "categorical", categories=("normal", "attack")),
        ]
    )
    generator = np.random.default_rng(7)
    records = []
    for _ in range(40):
        is_attack = generator.uniform() < 0.2
        service = "ssh" if is_attack else ["http", "dns"][generator.integers(0, 2)]
        records.append(
            {
                "proto": "udp" if service == "dns" else "tcp",
                "service": service,
                "bytes": float(generator.lognormal(4, 0.5)),
                "label": "attack" if is_attack else "normal",
            }
        )
    return Table.from_records(schema, records)


#: Captured from the seed (pre-PR-2) ConditionSampler with
#: uniform_probability=0.3, rng seed 123, batch 8 / empirical seed 77, n=5.
_GOLDEN_ROW_INDICES = [30, 29, 33, 32, 26, 31, 8, 5]
_GOLDEN_PIVOTS = ["proto", "label", "service", "proto", "label", "proto", "proto", "proto"]
_GOLDEN_VECTOR = [
    [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0],
    [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
    [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
    [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0],
    [1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0],
    [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
    [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
    [1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0],
]
_GOLDEN_VALUES = [
    {"proto": "tcp", "service": "ssh", "label": "attack"},
    {"proto": "udp", "service": "dns", "label": "normal"},
    {"proto": "udp", "service": "dns", "label": "normal"},
    {"proto": "tcp", "service": "ssh", "label": "attack"},
    {"proto": "tcp", "service": "http", "label": "normal"},
    {"proto": "udp", "service": "dns", "label": "normal"},
    {"proto": "udp", "service": "dns", "label": "normal"},
    {"proto": "tcp", "service": "http", "label": "normal"},
]
_GOLDEN_EMPIRICAL = [
    [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
    [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
    [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
    [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0],
    [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
]


class TestLegacyGolden:
    """``legacy_sampling=True`` replays pre-PR seeds bit for bit."""

    def _sampler(self, **kwargs) -> ConditionSampler:
        table = _golden_table()
        transformer = DataTransformer(max_modes=3, seed=0).fit(table)
        return ConditionSampler(table, transformer, uniform_probability=0.3, **kwargs)

    def test_legacy_batch_matches_golden_bit_for_bit(self):
        batch = self._sampler(legacy_sampling=True).sample(8, np.random.default_rng(123))
        np.testing.assert_array_equal(batch.vector, np.asarray(_GOLDEN_VECTOR))
        assert batch.row_indices.tolist() == _GOLDEN_ROW_INDICES
        assert batch.pivot_columns == _GOLDEN_PIVOTS
        assert batch.values == _GOLDEN_VALUES

    def test_empirical_conditions_stream_unchanged(self):
        # The vectorized empirical draw consumes the RNG exactly like the
        # seed loop did, so it matches the golden capture without any flag.
        conditions = self._sampler().empirical_conditions(5, np.random.default_rng(77))
        np.testing.assert_array_equal(conditions, np.asarray(_GOLDEN_EMPIRICAL))


class TestVectorizedEquivalence:
    """The batched sampler draws from the legacy distribution."""

    @pytest.fixture()
    def pair(self, tiny_table, fitted_transformer):
        fast = ConditionSampler(tiny_table, fitted_transformer)
        slow = ConditionSampler(tiny_table, fitted_transformer, legacy_sampling=True)
        return fast, slow

    def test_pivot_value_marginals_match(self, pair):
        fast, slow = pair
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(55)
        a = fast.sample(4000, rng_a)
        b = slow.sample(4000, rng_b)
        for column in fast.conditional_columns:
            block = fast.condition_slice(column)
            freq_a = a.vector[:, block].mean(axis=0)
            freq_b = b.vector[:, block].mean(axis=0)
            np.testing.assert_allclose(freq_a, freq_b, atol=0.04)

    def test_rows_come_from_matching_buckets(self, tiny_table, fitted_transformer):
        sampler = ConditionSampler(tiny_table, fitted_transformer)
        batch = sampler.sample(256, np.random.default_rng(3))
        real = sampler.real_batch(batch)
        for i, pivot in enumerate(batch.pivot_columns):
            # Every pivot value present in the table has a non-empty bucket,
            # so the drawn row must carry the sampled pivot value.
            assert real.row(i)[pivot] == batch.values[i][pivot]

    def test_vector_matches_codes_scatter(self, pair):
        fast, _ = pair
        batch = fast.sample(64, np.random.default_rng(11))
        np.testing.assert_array_equal(batch.vector, fast.vectors_from_codes(batch.codes))
        # And the lazily materialised dicts rebuild the same vectors through
        # the per-row compat path.
        rebuilt = np.stack([fast.vector_from_values(v) for v in batch.values])
        np.testing.assert_array_equal(batch.vector, rebuilt)

    def test_fixed_codes_round_trip(self, pair):
        fast, _ = pair
        codes = np.asarray([[0, 1, 0], [1, 2, 1], [0, 0, 1]])
        vectors = fast.vectors_from_codes(codes)
        for row, values in zip(vectors, fast.values_from_codes(codes)):
            assert fast.values_from_vector(row) == values

    def test_unknown_code_gives_zero_block_and_omitted_value(self, pair):
        fast, _ = pair
        codes = np.asarray([[-1, 0, 1]])
        vectors = fast.vectors_from_codes(codes)
        first = fast.conditional_columns[0]
        assert vectors[0, fast.condition_slice(first)].sum() == 0.0
        assert first not in fast.values_from_codes(codes)[0]

    def test_legacy_flag_round_trips_through_condition_batch(self, pair):
        _, slow = pair
        batch = slow.sample(16, np.random.default_rng(0))
        assert batch.codes is None and len(batch.values) == 16
        assert len(batch.pivot_columns) == 16


class TestEncoderEquivalence:
    """Batched encoder paths agree with per-value reference loops."""

    def test_onehot_transform_matches_reference(self):
        values = np.asarray(["a", "b", "c", "a", "b"] * 20, dtype=object)
        encoder = OneHotEncoder().fit(values)
        reference = np.zeros((len(values), 3))
        for row, value in enumerate(values):
            reference[row, encoder._index[value]] = 1.0
        np.testing.assert_array_equal(encoder.transform(values), reference)

    def test_onehot_decode_matches_listcomp(self):
        encoder = OneHotEncoder(categories=["x", "y", "z"])
        codes = np.asarray([2, 0, 1, 1, 2])
        expected = [encoder.categories[i] for i in codes]
        assert list(encoder.decode(codes)) == expected

    def test_ordinal_transform_matches_reference(self):
        values = np.asarray(["p", "q", "p", "r"], dtype=object)
        encoder = OrdinalEncoder().fit(values)
        np.testing.assert_allclose(encoder.transform(values), [0.0, 1.0, 0.0, 2.0])

    def test_mode_normalizer_distributionally_identical(self, rng):
        values = np.concatenate([rng.normal(-4, 0.4, 800), rng.normal(4, 0.4, 800)])
        normalizer = ModeSpecificNormalizer(max_modes=4, seed=3).fit(values)
        encoded = normalizer.transform(values, rng=np.random.default_rng(0))

        # Per-row reference draw (the seed loop) with its own stream.
        proba = normalizer.gmm.predict_proba(values)
        reference_rng = np.random.default_rng(1)
        reference_modes = np.asarray(
            [reference_rng.choice(normalizer.n_modes, p=p) for p in proba]
        )
        modes = np.argmax(encoded[:, 1:], axis=1)
        # Same mode-assignment marginals...
        counts_a = np.bincount(modes, minlength=normalizer.n_modes) / len(values)
        counts_b = np.bincount(reference_modes, minlength=normalizer.n_modes) / len(values)
        np.testing.assert_allclose(counts_a, counts_b, atol=0.05)
        # ...and identical alpha given the same modes.
        mu = normalizer.gmm.means[modes]
        sigma = normalizer.gmm.stds[modes]
        np.testing.assert_allclose(
            encoded[:, 0], np.clip((values - mu) / (4.0 * sigma), -1.0, 1.0)
        )

    def test_mode_transform_one_rng_draw_per_batch(self):
        values = np.random.default_rng(0).normal(size=200)
        normalizer = ModeSpecificNormalizer(max_modes=3, seed=0).fit(values)
        rng = np.random.default_rng(9)
        normalizer.transform(values, rng=rng)
        # Exactly one uniform batch was consumed: a fresh generator advanced
        # by one size-200 uniform call is now aligned with ``rng``.
        other = np.random.default_rng(9)
        other.uniform(size=200)
        assert rng.integers(0, 1 << 30) == other.integers(0, 1 << 30)


class TestBlockLayout:
    def test_argmax_matches_per_block(self, rng):
        layout = BlockLayout([(0, 3), (3, 5), (7, 13), (13, 16)])
        matrix = rng.normal(size=(50, 16))
        winners = layout.argmax_matrix(matrix)
        for b, (s, e) in enumerate(layout.bounds):
            np.testing.assert_array_equal(winners[:, b], matrix[:, s:e].argmax(axis=1))

    def test_winners_fast_path_matches_argmax_on_one_hot(self, rng):
        layout = BlockLayout([(0, 4), (4, 6), (6, 11)])
        codes = np.stack([rng.integers(0, 4, 40), rng.integers(0, 2, 40),
                          rng.integers(0, 5, 40)], axis=1)
        matrix = np.zeros((40, 11))
        for b, (s, _) in enumerate(layout.bounds):
            matrix[np.arange(40), s + codes[:, b]] = 1.0
        np.testing.assert_array_equal(layout.winners(matrix), codes)

    def test_winners_falls_back_on_soft_input(self, rng):
        layout = BlockLayout([(0, 4), (4, 9)])
        matrix = rng.uniform(size=(30, 9))
        np.testing.assert_array_equal(layout.winners(matrix), layout.argmax_matrix(matrix))

    def test_softmax_matches_per_block_reference(self, rng):
        layout = BlockLayout([(0, 3), (3, 8)])
        matrix = rng.normal(size=(20, 8))
        gathered = layout.gather(matrix)
        soft = layout.softmax(gathered, tau=0.5)
        for b, (s, e) in enumerate(layout.bounds):
            block = matrix[:, s:e] / 0.5
            shifted = np.exp(block - block.max(axis=1, keepdims=True))
            np.testing.assert_allclose(
                soft[:, layout.starts[b] : layout.starts[b] + layout.widths[b]],
                shifted / shifted.sum(axis=1, keepdims=True),
            )


class TestTransformerVectorized:
    def test_transform_matches_reference_blocks(self, fitted_transformer, tiny_table):
        # Same seed twice: the batched single-pass writer must equal the
        # concatenation of the per-encoder blocks.
        a = fitted_transformer.transform(tiny_table, rng=np.random.default_rng(4))
        blocks = []
        rng = np.random.default_rng(4)
        for info in fitted_transformer.output_info:
            encoder = fitted_transformer.encoder(info.name)
            values = tiny_table.column(info.name)
            if isinstance(encoder, ModeSpecificNormalizer):
                blocks.append(encoder.transform(values.astype(np.float64), rng=rng))
            elif isinstance(encoder, OneHotEncoder):
                blocks.append(encoder.transform(values))
            else:
                blocks.append(encoder.transform(values.astype(np.float64))[:, None])
        np.testing.assert_array_equal(a, np.concatenate(blocks, axis=1))

    def test_inverse_equals_per_encoder_decode(self, fitted_transformer, tiny_table, rng):
        matrix = fitted_transformer.transform(tiny_table, rng=rng)
        soft = rng.uniform(size=(64, fitted_transformer.output_dim))
        for candidate in (matrix, soft):
            restored = fitted_transformer.inverse_transform(candidate)
            for info in fitted_transformer.output_info:
                encoder = fitted_transformer.encoder(info.name)
                block = candidate[:, info.start : info.end]
                if isinstance(encoder, OneHotEncoder):
                    np.testing.assert_array_equal(
                        restored.column(info.name), encoder.inverse_transform(block)
                    )

    def test_table_codes_and_factorize(self, tiny_table):
        codes = tiny_table.column_codes("proto", {"tcp": 0, "udp": 1})
        np.testing.assert_array_equal(
            codes, [0 if v == "tcp" else 1 for v in tiny_table.column("proto")]
        )
        fcodes, uniques = tiny_table.factorize("service")
        assert [uniques[c] for c in fcodes] == list(tiny_table.column("service"))
