"""Encoder tests, including hypothesis round-trip properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tabular.encoders import (
    GaussianMixtureModel,
    MinMaxScaler,
    ModeSpecificNormalizer,
    OneHotEncoder,
    OrdinalEncoder,
    StandardScaler,
)


class TestOneHotEncoder:
    def test_round_trip(self):
        encoder = OneHotEncoder().fit(np.asarray(["a", "b", "a", "c"], dtype=object))
        encoded = encoder.transform(np.asarray(["c", "a"], dtype=object))
        assert encoded.shape == (2, 3)
        decoded = encoder.inverse_transform(encoded)
        assert list(decoded) == ["c", "a"]

    def test_fixed_categories_define_layout(self):
        encoder = OneHotEncoder(categories=["x", "y", "z"])
        encoded = encoder.transform(np.asarray(["z"], dtype=object))
        np.testing.assert_allclose(encoded, [[0, 0, 1]])

    def test_unknown_value_error_mode(self):
        encoder = OneHotEncoder(categories=["a"])
        with pytest.raises(ValueError):
            encoder.transform(np.asarray(["b"], dtype=object))

    def test_unknown_value_ignore_mode(self):
        encoder = OneHotEncoder(categories=["a"], handle_unknown="ignore")
        encoded = encoder.transform(np.asarray(["b"], dtype=object))
        np.testing.assert_allclose(encoded, [[0.0]])

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            OneHotEncoder().transform(np.asarray(["a"], dtype=object))

    def test_soft_vectors_decode_by_argmax(self):
        encoder = OneHotEncoder(categories=["a", "b"])
        decoded = encoder.inverse_transform(np.asarray([[0.4, 0.6]]))
        assert list(decoded) == ["b"]


class TestOrdinalEncoder:
    def test_round_trip(self):
        encoder = OrdinalEncoder().fit(np.asarray(["x", "y", "x"], dtype=object))
        codes = encoder.transform(np.asarray(["y", "x"], dtype=object))
        np.testing.assert_allclose(codes, [1.0, 0.0])
        assert list(encoder.inverse_transform(codes)) == ["y", "x"]

    def test_out_of_range_codes_clamped(self):
        encoder = OrdinalEncoder(categories=["a", "b"])
        assert list(encoder.inverse_transform(np.asarray([5.0, -2.0]))) == ["b", "a"]


class TestScalers:
    def test_minmax_range(self, rng):
        values = rng.uniform(10, 50, size=200)
        scaler = MinMaxScaler().fit(values)
        scaled = scaler.transform(values)
        assert scaled.min() >= -1.0 and scaled.max() <= 1.0
        np.testing.assert_allclose(scaler.inverse_transform(scaled), values, rtol=1e-9)

    def test_minmax_clips_out_of_range(self):
        scaler = MinMaxScaler().fit(np.asarray([0.0, 10.0]))
        restored = scaler.inverse_transform(np.asarray([2.0]))
        assert restored[0] == pytest.approx(10.0)

    def test_standard_scaler_round_trip(self, rng):
        values = rng.normal(5, 2, size=300)
        scaler = StandardScaler().fit(values)
        scaled = scaler.transform(values)
        assert abs(scaled.mean()) < 1e-9
        np.testing.assert_allclose(scaler.inverse_transform(scaled), values, rtol=1e-9)

    def test_constant_column_does_not_divide_by_zero(self):
        scaler = StandardScaler().fit(np.full(10, 3.0))
        assert np.isfinite(scaler.transform(np.asarray([3.0]))).all()

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.asarray([]))


class TestGaussianMixture:
    def test_recovers_two_modes(self, rng):
        values = np.concatenate([rng.normal(-5, 0.5, 500), rng.normal(5, 0.5, 500)])
        gmm = GaussianMixtureModel(max_components=5, seed=1).fit(values)
        assert gmm.n_components >= 2
        means = np.sort(gmm.means)
        assert means[0] < -3 and means[-1] > 3

    def test_likelihood_higher_for_in_distribution_data(self, rng):
        values = rng.normal(0, 1, 500)
        gmm = GaussianMixtureModel(max_components=3).fit(values)
        inside = gmm.log_likelihood(rng.normal(0, 1, 200))
        outside = gmm.log_likelihood(rng.normal(50, 1, 200))
        assert inside > outside

    def test_sampling_matches_support(self, rng):
        values = rng.normal(10, 2, 400)
        gmm = GaussianMixtureModel(max_components=3).fit(values)
        samples = gmm.sample(500, rng)
        assert 0 < samples.mean() < 20

    def test_predict_proba_rows_sum_to_one(self, rng):
        gmm = GaussianMixtureModel(max_components=4).fit(rng.normal(size=300))
        proba = gmm.predict_proba(rng.normal(size=50))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_single_unique_value(self):
        gmm = GaussianMixtureModel(max_components=5).fit(np.full(100, 7.0))
        assert gmm.n_components == 1
        assert gmm.means[0] == pytest.approx(7.0, abs=1e-3)


class TestModeSpecificNormalizer:
    def test_encoding_width(self, rng):
        values = np.concatenate([rng.normal(-3, 0.3, 300), rng.normal(3, 0.3, 300)])
        normalizer = ModeSpecificNormalizer(max_modes=5, seed=2).fit(values)
        encoded = normalizer.transform(values[:50], rng=rng)
        assert encoded.shape == (50, normalizer.dim)
        assert normalizer.dim == 1 + normalizer.n_modes

    def test_round_trip_accuracy(self, rng):
        values = np.concatenate([rng.normal(-3, 0.3, 400), rng.normal(3, 0.3, 400)])
        normalizer = ModeSpecificNormalizer(max_modes=5, seed=2).fit(values)
        encoded = normalizer.transform(values, rng=rng)
        decoded = normalizer.inverse_transform(encoded)
        assert np.abs(decoded - values).mean() < 0.5

    def test_alpha_bounded(self, rng):
        values = rng.lognormal(3, 1, 500)
        normalizer = ModeSpecificNormalizer(max_modes=4, seed=0).fit(values)
        encoded = normalizer.transform(values, rng=rng)
        assert np.all(encoded[:, 0] >= -1.0) and np.all(encoded[:, 0] <= 1.0)

    def test_wrong_width_rejected(self, rng):
        normalizer = ModeSpecificNormalizer(max_modes=3).fit(rng.normal(size=100))
        with pytest.raises(ValueError):
            normalizer.inverse_transform(np.zeros((2, normalizer.dim + 1)))


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.sampled_from(["tcp", "udp", "icmp", "arp"]), min_size=1, max_size=50
    )
)
def test_one_hot_round_trip_property(values):
    """Property: one-hot encoding followed by decoding is the identity."""
    array = np.asarray(values, dtype=object)
    encoder = OneHotEncoder().fit(array)
    decoded = encoder.inverse_transform(encoder.transform(array))
    assert list(decoded) == values


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
        min_size=2,
        max_size=60,
    )
)
def test_minmax_round_trip_property(values):
    """Property: min-max scaling round-trips within numerical tolerance."""
    array = np.asarray(values, dtype=np.float64)
    scaler = MinMaxScaler().fit(array)
    restored = scaler.inverse_transform(scaler.transform(array))
    np.testing.assert_allclose(restored, array, rtol=1e-6, atol=1e-6)
