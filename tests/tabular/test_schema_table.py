"""Schema and Table tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tabular.schema import ColumnSpec, TableSchema
from repro.tabular.table import Table


class TestColumnSpec:
    def test_categorical_requires_categories(self):
        with pytest.raises(ValueError):
            ColumnSpec("x", "categorical")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ColumnSpec("x", "text")

    def test_bounds_order_enforced(self):
        with pytest.raises(ValueError):
            ColumnSpec("x", "continuous", minimum=5, maximum=1)

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValueError):
            ColumnSpec("x", "categorical", categories=("a", "a"))

    def test_properties(self):
        spec = ColumnSpec("x", "categorical", categories=("a", "b"))
        assert spec.is_categorical and not spec.is_continuous
        assert spec.num_categories == 2


class TestTableSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TableSchema([
                ColumnSpec("x", "continuous"),
                ColumnSpec("x", "continuous"),
            ])

    def test_lookup_and_membership(self, tiny_schema):
        assert "proto" in tiny_schema
        assert tiny_schema.column("proto").is_categorical
        assert tiny_schema.index_of("bytes") == 2
        with pytest.raises(KeyError):
            tiny_schema.column("missing")

    def test_name_lists(self, tiny_schema):
        assert tiny_schema.categorical_names == ["proto", "service", "label"]
        assert tiny_schema.continuous_names == ["bytes", "duration"]
        assert tiny_schema.sensitive_names == ["label"]

    def test_subset_and_without(self, tiny_schema):
        subset = tiny_schema.subset(["label", "proto"])
        assert subset.names == ["label", "proto"]
        remaining = tiny_schema.without(["label"])
        assert "label" not in remaining

    def test_validate_value(self, tiny_schema):
        assert tiny_schema.validate_value("proto", "tcp")
        assert not tiny_schema.validate_value("proto", "icmp")
        assert tiny_schema.validate_value("bytes", 100.0)
        assert not tiny_schema.validate_value("bytes", -5.0)
        assert not tiny_schema.validate_value("bytes", "not-a-number")

    def test_dict_round_trip(self, tiny_schema):
        restored = TableSchema.from_dict(tiny_schema.to_dict())
        assert restored.names == tiny_schema.names
        assert restored.column("label").sensitive


class TestTable:
    def test_from_records_and_row_access(self, tiny_table):
        assert tiny_table.n_rows == 300
        row = tiny_table.row(0)
        assert set(row) == set(tiny_table.schema.names)

    def test_missing_column_in_record_rejected(self, tiny_schema):
        with pytest.raises(KeyError):
            Table.from_records(tiny_schema, [{"proto": "tcp"}])

    def test_from_rows_checks_width(self, tiny_schema):
        with pytest.raises(ValueError):
            Table.from_rows(tiny_schema, [("tcp", "http", 1.0)])

    def test_column_typing(self, tiny_table):
        assert tiny_table.column("bytes").dtype == np.float64
        assert tiny_table.column("proto").dtype == object

    def test_inconsistent_lengths_rejected(self, tiny_schema):
        columns = {name: np.asarray(["x"], dtype=object) for name in tiny_schema.names}
        columns["bytes"] = np.asarray([1.0, 2.0])
        with pytest.raises(ValueError):
            Table(tiny_schema, columns)

    def test_select_rows_allows_duplicates(self, tiny_table):
        selected = tiny_table.select_rows([0, 0, 1])
        assert selected.n_rows == 3

    def test_select_and_drop_columns(self, tiny_table):
        selected = tiny_table.select_columns(["label", "bytes"])
        assert selected.schema.names == ["label", "bytes"]
        dropped = tiny_table.drop_columns(["label"])
        assert "label" not in dropped.schema

    def test_filter_and_filter_equal_agree(self, tiny_table):
        a = tiny_table.filter(lambda row: row["label"] == "attack")
        b = tiny_table.filter_equal("label", "attack")
        assert a.n_rows == b.n_rows > 0

    def test_sample_without_replacement_bounds(self, tiny_table, rng):
        with pytest.raises(ValueError):
            tiny_table.sample(tiny_table.n_rows + 1, rng)
        assert tiny_table.sample(10, rng).n_rows == 10

    def test_shuffle_preserves_multiset(self, tiny_table, rng):
        shuffled = tiny_table.shuffle(rng)
        assert shuffled.value_counts("label") == tiny_table.value_counts("label")

    def test_concat_requires_same_schema(self, tiny_table):
        other = tiny_table.select_columns(["proto", "label"])
        with pytest.raises(ValueError):
            tiny_table.concat(other)
        combined = tiny_table.concat(tiny_table)
        assert combined.n_rows == 2 * tiny_table.n_rows

    def test_with_column(self, tiny_table):
        from repro.tabular.schema import ColumnSpec

        flags = np.asarray(["yes"] * tiny_table.n_rows, dtype=object)
        extended = tiny_table.with_column(
            ColumnSpec("flag", "categorical", categories=("yes", "no")), flags
        )
        assert "flag" in extended.schema
        assert extended.n_rows == tiny_table.n_rows

    def test_value_counts_and_distribution(self, tiny_table):
        counts = tiny_table.value_counts("label")
        assert sum(counts.values()) == tiny_table.n_rows
        distribution = tiny_table.class_distribution("label")
        assert pytest.approx(sum(distribution.values())) == 1.0

    def test_describe_covers_all_columns(self, tiny_table):
        summary = tiny_table.describe()
        assert set(summary) == set(tiny_table.schema.names)
        assert summary["bytes"]["kind"] == "continuous"
        assert summary["label"]["kind"] == "categorical"

    def test_csv_round_trip(self, tiny_table, tmp_path):
        path = tmp_path / "table.csv"
        tiny_table.to_csv(path)
        restored = Table.from_csv(tiny_table.schema, path)
        assert restored.n_rows == tiny_table.n_rows
        assert restored.value_counts("label") == tiny_table.value_counts("label")
        np.testing.assert_allclose(
            restored.column("bytes"), tiny_table.column("bytes"), rtol=1e-9
        )

    def test_head_and_len(self, tiny_table):
        assert len(tiny_table) == 300
        assert tiny_table.head(7).n_rows == 7

    def test_row_index_out_of_range(self, tiny_table):
        with pytest.raises(IndexError):
            tiny_table.row(10_000)
