"""DataTransformer, ConditionSampler and splitting tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tabular.sampler import ConditionSampler
from repro.tabular.split import kfold_indices, train_test_split
from repro.tabular.transformer import DataTransformer


class TestDataTransformer:
    def test_output_dim_matches_info(self, fitted_transformer):
        assert fitted_transformer.output_dim == sum(
            info.dim for info in fitted_transformer.output_info
        )

    def test_transform_shape_and_range(self, fitted_transformer, tiny_table, rng):
        matrix = fitted_transformer.transform(tiny_table, rng=rng)
        assert matrix.shape == (tiny_table.n_rows, fitted_transformer.output_dim)
        # One-hot and mode blocks are in [0, 1]; alpha scalars in [-1, 1].
        assert matrix.min() >= -1.0 and matrix.max() <= 1.0

    def test_inverse_transform_recovers_categoricals_exactly(
        self, fitted_transformer, tiny_table, rng
    ):
        matrix = fitted_transformer.transform(tiny_table, rng=rng)
        restored = fitted_transformer.inverse_transform(matrix)
        for column in ("proto", "service", "label"):
            assert list(restored.column(column)) == list(tiny_table.column(column))

    def test_inverse_transform_continuous_close(self, fitted_transformer, tiny_table, rng):
        matrix = fitted_transformer.transform(tiny_table, rng=rng)
        restored = fitted_transformer.inverse_transform(matrix)
        original = tiny_table.column("bytes").astype(float)
        recovered = restored.column("bytes").astype(float)
        relative_error = np.abs(recovered - original) / (np.abs(original) + 1.0)
        assert np.median(relative_error) < 0.2

    def test_minmax_encoding_variant(self, tiny_table, rng):
        transformer = DataTransformer(continuous_encoding="minmax").fit(tiny_table)
        info = transformer.column_info("bytes")
        assert info.dim == 1
        restored = transformer.inverse_transform(transformer.transform(tiny_table, rng=rng))
        assert restored.n_rows == tiny_table.n_rows

    def test_activation_spans_cover_output(self, fitted_transformer):
        spans = fitted_transformer.activation_spans()
        covered = sum(end - start for start, end, _ in spans)
        assert covered == fitted_transformer.output_dim

    def test_schema_bounds_clamped_on_inverse(self, fitted_transformer, tiny_table, rng):
        matrix = fitted_transformer.transform(tiny_table, rng=rng)
        # Push an alpha far negative to try to force an out-of-bounds value.
        info = fitted_transformer.column_info("bytes")
        matrix[:, info.start] = -1.0
        restored = fitted_transformer.inverse_transform(matrix)
        assert restored.column("bytes").astype(float).min() >= 0.0

    def test_wrong_width_rejected(self, fitted_transformer):
        with pytest.raises(ValueError):
            fitted_transformer.inverse_transform(np.zeros((3, fitted_transformer.output_dim + 1)))

    def test_use_before_fit_rejected(self, tiny_table):
        with pytest.raises(RuntimeError):
            DataTransformer().transform(tiny_table)

    def test_mismatched_schema_rejected(self, fitted_transformer, tiny_table):
        with pytest.raises(ValueError):
            fitted_transformer.transform(tiny_table.select_columns(["proto", "label"]))

    def test_apply_output_activations_hard_one_hot(self, fitted_transformer, rng):
        raw = rng.normal(size=(10, fitted_transformer.output_dim))
        activated = fitted_transformer.apply_output_activations(raw, hard=True, rng=rng)
        for start, end, activation in fitted_transformer.activation_spans():
            block = activated[:, start:end]
            if activation == "softmax":
                np.testing.assert_allclose(block.sum(axis=1), 1.0)
                assert set(np.unique(block)).issubset({0.0, 1.0})
            else:
                assert np.all(np.abs(block) <= 1.0)


def _naive_harden(transformer: DataTransformer, matrix: np.ndarray) -> np.ndarray:
    """The pre-engine per-block hardening loop, kept as the reference."""
    hardened = matrix.copy()
    for start, end, activation in transformer.activation_spans():
        if activation != "softmax":
            continue
        block = hardened[:, start:end]
        one_hot = np.zeros_like(block)
        one_hot[np.arange(len(block)), block.argmax(axis=1)] = 1.0
        hardened[:, start:end] = one_hot
    return hardened


class TestHarden:
    def test_matches_reference_implementation(self, fitted_transformer, rng):
        soft = rng.uniform(0.0, 1.0, size=(64, fitted_transformer.output_dim))
        np.testing.assert_array_equal(
            fitted_transformer.harden(soft), _naive_harden(fitted_transformer, soft)
        )

    def test_softmax_blocks_become_exact_one_hot(self, fitted_transformer, rng):
        soft = rng.uniform(0.0, 1.0, size=(32, fitted_transformer.output_dim))
        hard = fitted_transformer.harden(soft)
        for start, end in fitted_transformer.softmax_spans():
            block = hard[:, start:end]
            assert set(np.unique(block)) <= {0.0, 1.0}
            np.testing.assert_array_equal(block.sum(axis=1), np.ones(len(block)))

    def test_tanh_spans_untouched(self, fitted_transformer, rng):
        soft = rng.uniform(-1.0, 1.0, size=(16, fitted_transformer.output_dim))
        hard = fitted_transformer.harden(soft)
        for start, end, activation in fitted_transformer.activation_spans():
            if activation == "tanh":
                np.testing.assert_array_equal(hard[:, start:end], soft[:, start:end])

    def test_inplace_avoids_copy(self, fitted_transformer, rng):
        soft = rng.uniform(0.0, 1.0, size=(8, fitted_transformer.output_dim))
        result = fitted_transformer.harden(soft, inplace=True)
        assert result is soft

    def test_copy_by_default(self, fitted_transformer, rng):
        soft = rng.uniform(0.0, 1.0, size=(8, fitted_transformer.output_dim))
        original = soft.copy()
        fitted_transformer.harden(soft)
        np.testing.assert_array_equal(soft, original)

    def test_empty_batch(self, fitted_transformer):
        empty = np.zeros((0, fitted_transformer.output_dim))
        assert fitted_transformer.harden(empty).shape == empty.shape

    def test_wrong_width_rejected(self, fitted_transformer):
        with pytest.raises(ValueError):
            fitted_transformer.harden(np.zeros((4, fitted_transformer.output_dim + 1)))

    def test_unfitted_rejected(self, tiny_table):
        with pytest.raises(RuntimeError):
            DataTransformer().harden(np.zeros((2, 3)))


class TestConditionSampler:
    def test_condition_dim_is_sum_of_categories(self, tiny_table, fitted_transformer):
        sampler = ConditionSampler(tiny_table, fitted_transformer,
                                   conditional_columns=["proto", "label"])
        assert sampler.condition_dim == 2 + 2

    def test_sample_shapes_and_one_hot_structure(self, tiny_table, fitted_transformer, rng):
        sampler = ConditionSampler(tiny_table, fitted_transformer)
        batch = sampler.sample(32, rng)
        assert batch.vector.shape == (32, sampler.condition_dim)
        # Every conditional column block is exactly one-hot.
        for column in sampler.conditional_columns:
            block = batch.vector[:, sampler.condition_slice(column)]
            np.testing.assert_allclose(block.sum(axis=1), 1.0)

    def test_vector_round_trip(self, tiny_table, fitted_transformer):
        sampler = ConditionSampler(tiny_table, fitted_transformer)
        values = {"proto": "udp", "label": "attack"}
        vector = sampler.vector_from_values(values)
        decoded = sampler.values_from_vector(vector)
        assert decoded["proto"] == "udp" and decoded["label"] == "attack"

    def test_unknown_value_rejected(self, tiny_table, fitted_transformer):
        sampler = ConditionSampler(tiny_table, fitted_transformer)
        with pytest.raises(ValueError):
            sampler.vector_from_values({"proto": "icmp"})
        with pytest.raises(KeyError):
            sampler.vector_from_values({"bytes": 4.0})

    def test_real_batch_matches_pivot_condition(self, tiny_table, fitted_transformer, rng):
        sampler = ConditionSampler(tiny_table, fitted_transformer, uniform_probability=0.0)
        batch = sampler.sample(64, rng)
        real = sampler.real_batch(batch)
        matches = 0
        for i, pivot in enumerate(batch.pivot_columns):
            if real.row(i)[pivot] == batch.values[i][pivot]:
                matches += 1
        assert matches / 64 > 0.95

    def test_uniform_boosting_overrepresents_minority(self, tiny_table, fitted_transformer, rng):
        boosted = ConditionSampler(
            tiny_table, fitted_transformer, conditional_columns=["label"], uniform_probability=1.0
        )
        batch = boosted.sample(400, rng)
        attack_fraction = np.mean([v["label"] == "attack" for v in batch.values])
        real_fraction = tiny_table.class_distribution("label").get("attack", 0.0)
        assert attack_fraction > real_fraction + 0.1

    def test_empirical_conditions_match_real_distribution(
        self, tiny_table, fitted_transformer, rng
    ):
        sampler = ConditionSampler(tiny_table, fitted_transformer, conditional_columns=["label"])
        conditions = sampler.empirical_conditions(600, rng)
        attack_index = sampler.categories("label").index("attack")
        fraction = conditions[:, sampler.condition_offset("label") + attack_index].mean()
        real_fraction = tiny_table.class_distribution("label").get("attack", 0.0)
        assert abs(fraction - real_fraction) < 0.1

    def test_non_categorical_conditional_column_rejected(self, tiny_table, fitted_transformer):
        with pytest.raises(ValueError):
            ConditionSampler(tiny_table, fitted_transformer, conditional_columns=["bytes"])


class TestSplit:
    def test_sizes(self, tiny_table, rng):
        train, test = train_test_split(tiny_table, 0.25, rng)
        assert train.n_rows + test.n_rows == tiny_table.n_rows
        assert abs(test.n_rows - 75) <= 2

    def test_stratified_split_preserves_minority(self, tiny_table, rng):
        train, test = train_test_split(tiny_table, 0.25, rng, stratify_column="label")
        assert "attack" in test.value_counts("label")
        assert "attack" in train.value_counts("label")

    def test_invalid_fraction_rejected(self, tiny_table, rng):
        with pytest.raises(ValueError):
            train_test_split(tiny_table, 1.5, rng)

    def test_kfold_partitions_everything_once(self, rng):
        folds = kfold_indices(50, 5, rng)
        assert len(folds) == 5
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(50))

    def test_kfold_train_test_disjoint(self, rng):
        for train, test in kfold_indices(30, 3, rng):
            assert not set(train) & set(test)

    def test_kfold_invalid_k(self, rng):
        with pytest.raises(ValueError):
            kfold_indices(10, 1, rng)
        with pytest.raises(ValueError):
            kfold_indices(3, 5, rng)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=1000))
def test_split_property_partition(n, seed):
    """Property: train/test split is a partition of the rows."""
    from repro.tabular.schema import ColumnSpec, TableSchema
    from repro.tabular.table import Table

    schema = TableSchema([ColumnSpec("x", "continuous")])
    table = Table(schema, {"x": np.arange(n, dtype=float)})
    generator = np.random.default_rng(seed)
    train, test = train_test_split(table, 0.3, generator)
    combined = sorted(list(train.column("x")) + list(test.column("x")))
    np.testing.assert_allclose(combined, np.arange(n, dtype=float))
