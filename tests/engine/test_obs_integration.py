"""Engine-side observability: MetricsCallback, the log sink, RNG neutrality."""

import contextlib
import io

import numpy as np
import pytest

from repro.core import KiNETGAN, KiNETGANConfig
from repro.engine import MetricsCallback, PeriodicLogger, TrainingEngine, standard_callbacks
from repro.obs import CaptureSink, MemorySink, MetricsRegistry, set_log_sink, span, tracing


class CountingStep:
    """Deterministic TrainStep: loss decreases, one rng draw per step."""

    def __init__(self):
        self.calls = 0

    def begin_epoch(self, rng, epoch):
        return 2

    def step(self, rng, batch_index):
        self.calls += 1
        rng.random()
        return {"loss": 1.0 / self.calls, "aux": float(self.calls)}

    def checkpoint_targets(self):
        return {}


class TestMetricsCallback:
    def test_publishes_epochs_durations_and_gauges(self):
        registry = MetricsRegistry()
        engine = TrainingEngine(
            CountingStep(),
            epochs=3,
            callbacks=[MetricsCallback(registry=registry, prefix="unit")],
        )
        engine.run()
        labels = {"loop": "unit"}
        assert registry.value("repro_engine_epochs_total", labels) == 3
        histogram = registry.histogram("repro_engine_epoch_seconds", labels=labels)
        assert histogram.count == 3
        # Gauges hold the *last* epoch's averaged metrics.
        last_loss = engine.history.metrics["loss"][-1]
        assert registry.value("repro_engine_metric", {**labels, "metric": "loss"}) == pytest.approx(
            last_loss
        )
        assert registry.value("repro_engine_metric", {**labels, "metric": "aux"}) == pytest.approx(
            engine.history.metrics["aux"][-1]
        )

    def test_standard_callbacks_metrics_knob(self):
        stack = standard_callbacks(metrics=True, metrics_prefix="cfg")
        assert any(isinstance(cb, MetricsCallback) for cb in stack)
        assert not any(isinstance(cb, MetricsCallback) for cb in standard_callbacks())

    def test_non_finite_metrics_are_skipped(self):
        registry = MetricsRegistry()

        class NanStep(CountingStep):
            def step(self, rng, batch_index):
                super().step(rng, batch_index)
                return {"loss": float("nan")}

        TrainingEngine(
            NanStep(), epochs=1, callbacks=[MetricsCallback(registry=registry)]
        ).run()
        assert registry.value("repro_engine_metric", {"loop": "engine", "metric": "loss"}) is None


class TestPeriodicLoggerSink:
    def test_default_printer_routes_through_log_sink(self):
        sink = CaptureSink()
        previous = set_log_sink(sink)
        try:
            TrainingEngine(
                CountingStep(), epochs=2, callbacks=[PeriodicLogger(prefix="[x]")]
            ).run()
        finally:
            set_log_sink(previous)
        assert len(sink.lines) == 2
        assert sink.lines[0].startswith("[x] epoch 1/2 loss=")

    def test_stdout_format_is_byte_identical_to_print(self):
        # The sink default (StreamSink -> sys.stdout) must produce exactly
        # what `printer=print` produced before the migration.
        def run(logger: PeriodicLogger) -> str:
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                TrainingEngine(CountingStep(), epochs=2, callbacks=[logger]).run()
            return buffer.getvalue()

        via_sink = run(PeriodicLogger(prefix="[fmt]"))
        via_print = run(PeriodicLogger(prefix="[fmt]", printer=print))
        assert via_sink == via_print
        assert via_sink.startswith("[fmt] epoch 1/2 loss=")

    def test_explicit_printer_still_bypasses_the_sink(self):
        lines: list[str] = []
        sink = CaptureSink()
        previous = set_log_sink(sink)
        try:
            TrainingEngine(
                CountingStep(), epochs=1, callbacks=[PeriodicLogger(printer=lines.append)]
            ).run()
        finally:
            set_log_sink(previous)
        assert len(lines) == 1
        assert sink.lines == []


class TestRngNeutrality:
    """Observability must never consume a random draw."""

    def test_engine_history_bit_identical_with_instrumentation(self):
        def run(instrumented: bool):
            callbacks = [MetricsCallback(registry=MetricsRegistry())] if instrumented else []
            engine = TrainingEngine(CountingStep(), epochs=3, seed=7, callbacks=callbacks)
            if instrumented:
                with tracing(MemorySink()):
                    with span("outer"):
                        engine.run()
            else:
                engine.run()
            return engine.history.metrics

        plain = run(False)
        instrumented = run(True)
        assert plain == instrumented

    def test_kinetgan_history_bit_identical_with_tracing(self, lab_bundle_small):
        config = KiNETGANConfig(
            embedding_dim=8,
            generator_dims=(16,),
            discriminator_dims=(16,),
            epochs=2,
            batch_size=32,
            knowledge_negatives_per_batch=8,
            max_modes=3,
            seed=0,
        )
        table = lab_bundle_small.table.head(300)

        def fit():
            model = KiNETGAN(config)
            model.fit(
                table,
                catalog=lab_bundle_small.catalog,
                condition_columns=lab_bundle_small.condition_columns,
            )
            return model.history

        plain = fit()
        with tracing(MemorySink()):
            with span("outer"):
                traced = fit()
        np.testing.assert_array_equal(plain.generator_loss, traced.generator_loss)
        np.testing.assert_array_equal(plain.discriminator_loss, traced.discriminator_loss)
        np.testing.assert_array_equal(plain.knowledge_loss, traced.knowledge_loss)
