"""Checkpoint manifest: version + network inventory, clear failure modes."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import CheckpointError, load_networks, save_checkpoint, save_networks
from repro.engine.checkpoint import CHECKPOINT_FORMAT_VERSION, CHECKPOINT_MANIFEST
from repro.engine.steps import TrainStep
from repro.neural.layers import Dense
from repro.neural.network import Sequential


def make_network(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential([Dense(3, 2, rng=rng)])


class _Step(TrainStep):
    def __init__(self, targets):
        self.targets = targets

    def step(self, rng, batch_index):
        return {"loss": 0.0}

    def checkpoint_targets(self):
        return self.targets


class TestManifest:
    def test_save_writes_versioned_manifest(self, tmp_path):
        save_checkpoint(_Step({"generator": make_network(), "head": make_network(1)}), tmp_path)
        manifest = json.loads((tmp_path / CHECKPOINT_MANIFEST).read_text())
        assert manifest["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert manifest["networks"] == ["generator", "head"]

    def test_legacy_directory_without_manifest_loads(self, tmp_path):
        network = make_network()
        network.save(tmp_path / "model.npz")
        restored = make_network(9)
        load_networks({"model": restored}, tmp_path)
        x = np.zeros((2, 3))
        np.testing.assert_array_equal(
            restored.forward(x, training=False), network.forward(x, training=False)
        )


class TestClearErrors:
    def test_version_mismatch_reported(self, tmp_path):
        network = make_network()
        save_networks({"model": network}, tmp_path)
        manifest = json.loads((tmp_path / CHECKPOINT_MANIFEST).read_text())
        manifest["format_version"] = 99
        (tmp_path / CHECKPOINT_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="format version"):
            load_networks({"model": network}, tmp_path)

    def test_mismatched_network_sets_all_named(self, tmp_path):
        save_networks({"generator": make_network()}, tmp_path)
        with pytest.raises(CheckpointError) as error:
            load_networks({"generator": make_network(), "discriminator": make_network()},
                          tmp_path)
        message = str(error.value)
        assert "discriminator" in message and "expected by the model" in message

    def test_unexpected_network_named(self, tmp_path):
        save_networks({"generator": make_network(), "extra": make_network(1)}, tmp_path)
        with pytest.raises(CheckpointError, match="'extra'"):
            load_networks({"generator": make_network()}, tmp_path)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_networks({"model": make_network()}, tmp_path / "nope")

    def test_error_is_a_file_not_found_error(self, tmp_path):
        """Backwards compatibility: callers catching FileNotFoundError still work."""
        with pytest.raises(FileNotFoundError):
            load_networks({"model": make_network()}, tmp_path)

    def test_empty_targets_allowed_for_networkless_models(self, tmp_path):
        save_networks({}, tmp_path)
        load_networks({}, tmp_path)  # no error: artifact with no networks
