"""Seeded-reproducibility regression tests.

Every synthesizer routes its RNG construction through
:mod:`repro.engine.seeding` and its loop through the engine, so a seeded
``fit()`` must be bit-reproducible: two fresh fits with the same config,
sampled with the same generator, must produce identical records.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import PATEGAN, TVAE, TableGAN
from repro.core import KiNETGAN, KiNETGANConfig
from repro.engine import sampling_rng, seeded_rng


def _tiny_config(**overrides) -> KiNETGANConfig:
    return KiNETGANConfig(
        embedding_dim=12,
        generator_dims=(24,),
        discriminator_dims=(24,),
        epochs=2,
        batch_size=64,
        seed=5,
    ).with_overrides(**overrides)


def _fit_and_sample(factory, table):
    model = factory()
    if isinstance(model, KiNETGAN):
        model.fit(table, condition_columns=["label"])
    else:
        model.fit(table)
    return model.sample(60, rng=np.random.default_rng(11)).to_records()


@pytest.mark.parametrize(
    "factory",
    [
        lambda: KiNETGAN(_tiny_config()),
        lambda: TVAE(_tiny_config()),
        lambda: PATEGAN(_tiny_config(), num_teachers=3),
        lambda: TableGAN(_tiny_config()),
    ],
    ids=["kinetgan", "tvae", "pategan", "tablegan"],
)
def test_seeded_refit_is_bit_reproducible(factory, tiny_table):
    first = _fit_and_sample(factory, tiny_table)
    second = _fit_and_sample(factory, tiny_table)
    assert first == second


def test_seeding_helpers_are_deterministic_and_disjoint():
    assert seeded_rng(7).integers(0, 1 << 30) == seeded_rng(7).integers(0, 1 << 30)
    assert sampling_rng(7).integers(0, 1 << 30) == sampling_rng(7).integers(0, 1 << 30)
    # The sampling stream differs from the training stream for the same seed.
    assert seeded_rng(7).integers(0, 1 << 30) != sampling_rng(7).integers(0, 1 << 30)


def test_default_sample_rng_matches_across_models(tiny_table):
    """Two same-seed fits also agree on the *default* sampling stream."""
    a = TVAE(_tiny_config()).fit(tiny_table).sample(40).to_records()
    b = TVAE(_tiny_config()).fit(tiny_table).sample(40).to_records()
    assert a == b


class TestEngineIntegration:
    def test_early_stopping_via_config_shortens_training(self, tiny_table):
        # min_delta so large no epoch ever counts as an improvement: training
        # stops after `patience` epochs.
        config = _tiny_config(epochs=8, patience=1, min_delta=1e9)
        model = TVAE(config).fit(tiny_table)
        assert len(model.loss_history) == 2

    def test_checkpoint_dir_round_trip_restores_samples(self, tiny_table, tmp_path):
        config = _tiny_config(checkpoint_dir=str(tmp_path / "ckpt"))
        model = KiNETGAN(config)
        model.fit(tiny_table, condition_columns=["label"])
        before = model.sample(40, rng=np.random.default_rng(3)).to_records()

        # The engine checkpoint uses the same file layout as KiNETGAN.save,
        # so load_weights restores the exact trained networks.
        for param, _ in model.trainer.generator.parameters():
            param += 0.25
        model.load_weights(tmp_path / "ckpt")
        after = model.sample(40, rng=np.random.default_rng(3)).to_records()
        assert before == after

    def test_trainer_runs_through_engine(self, tiny_table):
        model = KiNETGAN(_tiny_config())
        model.fit(tiny_table, condition_columns=["label"])
        assert model.trainer.engine is not None
        assert model.trainer.engine.epochs_run == 2
        assert model.trainer.engine.history.metrics["generator_loss"]
