"""Unit tests for the shared training engine: loop mechanics, callback
ordering, early stopping, checkpointing and the supervised step."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    Callback,
    Checkpointer,
    EarlyStopping,
    PeriodicLogger,
    RecordMetric,
    SupervisedStep,
    TrainingEngine,
    TrainStep,
    load_checkpoint,
    save_checkpoint,
    standard_callbacks,
)
from repro.neural.layers import Dense
from repro.neural.losses import CrossEntropy
from repro.neural.network import Sequential
from repro.neural.optimizers import SGD


class ScriptedStep(TrainStep):
    """Returns a pre-scripted loss per epoch and counts every call."""

    def __init__(self, losses_by_epoch, steps_override=None):
        self.losses = losses_by_epoch
        self.steps_override = steps_override
        self.epoch = 0
        self.begin_calls = 0
        self.step_calls = 0

    def begin_epoch(self, rng, epoch):
        self.epoch = epoch
        self.begin_calls += 1
        return self.steps_override

    def step(self, rng, batch_index):
        self.step_calls += 1
        return {"loss": float(self.losses[self.epoch])}


class EventRecorder(Callback):
    def __init__(self, log, name):
        self.log = log
        self.name = name

    def on_train_begin(self, engine):
        self.log.append((self.name, "train_begin"))

    def on_epoch_begin(self, engine, epoch):
        self.log.append((self.name, "epoch_begin", epoch))

    def on_epoch_end(self, engine, epoch, metrics):
        self.log.append((self.name, "epoch_end", epoch))

    def on_train_end(self, engine):
        self.log.append((self.name, "train_end"))


class TestLoopMechanics:
    def test_default_steps_per_epoch_from_rows(self):
        step = ScriptedStep([1.0] * 3)
        TrainingEngine(step, epochs=3, batch_size=4, n_rows=10).run()
        assert step.step_calls == 3 * (10 // 4)

    def test_begin_epoch_can_override_step_count(self):
        step = ScriptedStep([1.0] * 2, steps_override=5)
        TrainingEngine(step, epochs=2, batch_size=4, n_rows=100).run()
        assert step.step_calls == 10

    def test_minimum_one_step_per_epoch(self):
        step = ScriptedStep([1.0])
        TrainingEngine(step, epochs=1, batch_size=128, n_rows=10).run()
        assert step.step_calls == 1

    def test_metrics_averaged_over_steps(self):
        class VaryingStep(TrainStep):
            def __init__(self):
                self.values = iter([1.0, 3.0])

            def step(self, rng, batch_index):
                return {"loss": next(self.values)}

        engine = TrainingEngine(VaryingStep(), epochs=1, steps_per_epoch=2)
        history = engine.run()
        assert history.metrics["loss"] == [2.0]

    def test_history_records_every_epoch_and_last(self):
        step = ScriptedStep([3.0, 2.0, 1.0])
        history = TrainingEngine(step, epochs=3, steps_per_epoch=1).run()
        assert history.metrics["loss"] == [3.0, 2.0, 1.0]
        assert history.epochs == 3
        assert history.last() == {"loss": 1.0}

    def test_invalid_arguments_rejected(self):
        step = ScriptedStep([1.0])
        with pytest.raises(ValueError):
            TrainingEngine(step, epochs=0)
        with pytest.raises(ValueError):
            TrainingEngine(step, epochs=1, batch_size=0)
        with pytest.raises(ValueError):
            TrainingEngine(step, epochs=1, steps_per_epoch=0)


class TestCallbackOrdering:
    def test_hooks_fire_in_loop_order(self):
        log = []
        step = ScriptedStep([1.0, 1.0])
        TrainingEngine(
            step, epochs=2, steps_per_epoch=1, callbacks=[EventRecorder(log, "a")]
        ).run()
        assert [event[:2] for event in log] == [
            ("a", "train_begin"),
            ("a", "epoch_begin"),
            ("a", "epoch_end"),
            ("a", "epoch_begin"),
            ("a", "epoch_end"),
            ("a", "train_end"),
        ]

    def test_callbacks_dispatch_in_registration_order(self):
        log = []
        step = ScriptedStep([1.0])
        TrainingEngine(
            step,
            epochs=1,
            steps_per_epoch=1,
            callbacks=[EventRecorder(log, "first"), EventRecorder(log, "second")],
        ).run()
        epoch_end_order = [name for name, event, *_ in log if event == "epoch_end"]
        assert epoch_end_order == ["first", "second"]

    def test_record_metric_mirrors_external_list(self):
        trace: list[float] = []
        step = ScriptedStep([2.0, 4.0])
        TrainingEngine(
            step, epochs=2, steps_per_epoch=1, callbacks=[RecordMetric(trace, "loss")]
        ).run()
        assert trace == [2.0, 4.0]

    def test_periodic_logger_respects_log_every(self):
        lines = []
        step = ScriptedStep([1.0] * 4)
        TrainingEngine(
            step,
            epochs=4,
            steps_per_epoch=1,
            callbacks=[PeriodicLogger(log_every=2, prefix="[x]", printer=lines.append)],
        ).run()
        assert len(lines) == 2
        assert lines[0].startswith("[x] epoch 2/4")
        assert "loss=1.000" in lines[0]


class TestEarlyStopping:
    def test_stops_at_the_right_epoch(self):
        # best at epoch 1 (0.9); epochs 2 and 3 do not improve -> stop at 3.
        step = ScriptedStep([1.0, 0.9, 0.95, 0.96, 0.5, 0.4])
        stopper = EarlyStopping(monitor="loss", patience=2)
        engine = TrainingEngine(
            step, epochs=6, steps_per_epoch=1, callbacks=[stopper]
        )
        engine.run()
        assert stopper.stopped_epoch == 3
        assert engine.epochs_run == 4
        assert engine.stop_reason is not None

    def test_improvement_resets_patience(self):
        step = ScriptedStep([1.0, 0.99, 0.98, 0.97, 0.96, 0.95])
        stopper = EarlyStopping(monitor="loss", patience=2)
        engine = TrainingEngine(step, epochs=6, steps_per_epoch=1, callbacks=[stopper])
        engine.run()
        assert stopper.stopped_epoch is None
        assert engine.epochs_run == 6

    def test_min_delta_requires_material_improvement(self):
        step = ScriptedStep([1.0, 0.999, 0.998])
        stopper = EarlyStopping(monitor="loss", patience=1, min_delta=0.1)
        engine = TrainingEngine(step, epochs=3, steps_per_epoch=1, callbacks=[stopper])
        engine.run()
        assert engine.epochs_run == 2

    def test_missing_monitor_is_ignored(self):
        step = ScriptedStep([1.0, 1.0, 1.0])
        stopper = EarlyStopping(monitor="not_a_metric", patience=1)
        engine = TrainingEngine(step, epochs=3, steps_per_epoch=1, callbacks=[stopper])
        engine.run()
        assert engine.epochs_run == 3

    def test_request_stop_breaks_loop(self):
        class StopAtOne(Callback):
            def on_epoch_end(self, engine, epoch, metrics):
                if epoch == 1:
                    engine.request_stop("manual")

        step = ScriptedStep([1.0] * 5)
        engine = TrainingEngine(step, epochs=5, steps_per_epoch=1, callbacks=[StopAtOne()])
        engine.run()
        assert engine.epochs_run == 2
        assert engine.stop_reason == "manual"


class _NetworkStep(TrainStep):
    def __init__(self, network):
        self.network = network

    def step(self, rng, batch_index):
        return {"loss": 0.0}

    def checkpoint_targets(self):
        return {"model": self.network}


class TestCheckpointing:
    def test_save_load_round_trip_restores_outputs(self, tmp_path):
        rng = np.random.default_rng(0)
        network = Sequential([Dense(4, 3, rng=rng), Dense(3, 2, rng=rng)])
        step = _NetworkStep(network)
        x = rng.normal(size=(5, 4))
        before = network.forward(x, training=False)

        save_checkpoint(step, tmp_path)
        for param, _ in network.parameters():
            param += 1.0
        assert not np.allclose(network.forward(x, training=False), before)
        load_checkpoint(step, tmp_path)
        np.testing.assert_array_equal(network.forward(x, training=False), before)

    def test_checkpointer_writes_final_checkpoint(self, tmp_path):
        rng = np.random.default_rng(0)
        step = _NetworkStep(Sequential([Dense(2, 2, rng=rng)]))
        checkpointer = Checkpointer(tmp_path / "ckpt", every=2)
        TrainingEngine(
            step, epochs=3, steps_per_epoch=1, callbacks=[checkpointer]
        ).run()
        assert (tmp_path / "ckpt" / "model.npz").exists()

    def test_stepless_checkpoint_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(ScriptedStep([1.0]), tmp_path)

    def test_missing_file_rejected(self, tmp_path):
        rng = np.random.default_rng(0)
        step = _NetworkStep(Sequential([Dense(2, 2, rng=rng)]))
        with pytest.raises(FileNotFoundError):
            load_checkpoint(step, tmp_path)


class TestStandardCallbacks:
    def test_defaults_produce_no_callbacks(self):
        assert standard_callbacks() == []

    def test_knobs_attach_the_right_callbacks(self, tmp_path):
        callbacks = standard_callbacks(
            verbose=True, log_every=5, patience=2, checkpoint_dir=tmp_path
        )
        kinds = [type(callback) for callback in callbacks]
        assert kinds == [PeriodicLogger, EarlyStopping, Checkpointer]
        assert callbacks[0].log_every == 5
        assert callbacks[1].patience == 2


class TestSupervisedStep:
    def _toy_problem(self):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(120, 4))
        labels = (features[:, 0] + features[:, 1] > 0).astype(int)
        model = Sequential([Dense(4, 2, rng=rng)])
        return model, features, labels

    def test_full_shuffled_pass_reduces_loss(self):
        model, features, labels = self._toy_problem()
        step = SupervisedStep(
            model=model,
            loss_fn=CrossEntropy(),
            optimizer=SGD(model.parameters(), lr=0.5),
            features=features,
            labels=labels,
            batch_size=32,
        )
        history = TrainingEngine(step, epochs=10, batch_size=32, n_rows=120).run()
        assert history.metrics["loss"][-1] < history.metrics["loss"][0]
        # ceil(120 / 32) = 4 batches per epoch, declared by begin_epoch.
        assert step.begin_epoch(np.random.default_rng(0), 0) == 4

    def test_grad_hook_runs_every_step(self):
        model, features, labels = self._toy_problem()
        calls = []
        step = SupervisedStep(
            model=model,
            loss_fn=CrossEntropy(),
            optimizer=SGD(model.parameters(), lr=0.1),
            features=features,
            labels=labels,
            batch_size=64,
            grad_hook=lambda m: calls.append(m),
        )
        TrainingEngine(step, epochs=2, batch_size=64, n_rows=120).run()
        assert len(calls) == 2 * 2  # ceil(120/64) = 2 batches x 2 epochs
