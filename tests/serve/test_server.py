"""The HTTP serving front-end: parity, backpressure, deadlines, drain.

The headline acceptance: an HTTP client on localhost gets rows
bit-identical to in-process ``model.sample(n, seed)``; a full admission
queue answers 429 with ``Retry-After``; drain serves everything admitted
and 503s the rest.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.core import KiNETGAN, KiNETGANConfig
from repro.engine import sampling_rng
from repro.serve import (
    SamplingHTTPServer,
    ServingPool,
    fetch_json,
    request_samples,
    save_model,
)
from repro.serve.server import table_from_wire, table_to_wire


def small_config(seed: int = 0) -> KiNETGANConfig:
    return KiNETGANConfig(
        embedding_dim=16,
        generator_dims=(32,),
        discriminator_dims=(32,),
        epochs=2,
        batch_size=64,
        knowledge_negatives_per_batch=16,
        max_modes=4,
        seed=seed,
    )


@pytest.fixture(scope="module")
def fitted_kinetgan(lab_bundle_small):
    model = KiNETGAN(small_config())
    model.fit(
        lab_bundle_small.table.head(400),
        catalog=lab_bundle_small.catalog,
        condition_columns=lab_bundle_small.condition_columns,
    )
    return model


@pytest.fixture(scope="module")
def kinetgan_artifact(fitted_kinetgan, tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("served") / "kinetgan"
    save_model(fitted_kinetgan, directory, metadata={"dataset": "lab_iot"})
    return directory


@pytest.fixture(scope="module")
def served(kinetgan_artifact):
    """A running server over a thread pool; yields (url, pool, server)."""
    with ServingPool({"kinetgan": kinetgan_artifact}, executor="thread:2") as pool:
        with SamplingHTTPServer(pool, queue_depth=16) as server:
            yield server.url, pool, server


def assert_tables_identical(a, b) -> None:
    assert a.schema.names == b.schema.names
    assert a.n_rows == b.n_rows
    for name in a.schema.names:
        assert np.array_equal(a.column(name), b.column(name)), name


def raw_post(url: str, body: bytes, timeout: float = 30.0):
    """POST raw bytes to /sample; return (status, headers, parsed body)."""
    request = urllib.request.Request(url + "/sample", data=body, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read() or b"{}")


class TestWireFormat:
    def test_table_round_trips_bit_identically(self, fitted_kinetgan):
        table = fitted_kinetgan.sample(64, rng=sampling_rng(3))
        rebuilt = table_from_wire(json.loads(json.dumps(table_to_wire(table))))
        assert_tables_identical(table, rebuilt)
        for name in table.schema.names:
            assert rebuilt.column(name).dtype == table.column(name).dtype


class TestHTTPParity:
    def test_seeded_samples_bit_identical_to_in_process(self, served, fitted_kinetgan):
        url, _pool, _server = served
        over_http = request_samples(url, "kinetgan", 120, seed=42)
        in_process = fitted_kinetgan.sample(120, rng=sampling_rng(42))
        assert_tables_identical(in_process, over_http)

    def test_conditional_request_parity(self, served, fitted_kinetgan):
        url, _pool, _server = served
        value = fitted_kinetgan.sampler.categories("event_type")[0]
        over_http = request_samples(
            url, "kinetgan", 48, conditions={"event_type": value}, seed=7
        )
        in_process = fitted_kinetgan.sample(
            48, conditions={"event_type": value}, rng=sampling_rng(7)
        )
        assert_tables_identical(in_process, over_http)

    def test_default_seed_matches_model_default(self, served, fitted_kinetgan):
        url, _pool, _server = served
        assert_tables_identical(fitted_kinetgan.sample(40), request_samples(url, "kinetgan", 40))

    def test_full_artifact_path_also_addresses_model(self, served, kinetgan_artifact):
        url, _pool, _server = served
        by_alias = request_samples(url, "kinetgan", 16, seed=1)
        by_path = request_samples(url, str(kinetgan_artifact), 16, seed=1)
        assert_tables_identical(by_alias, by_path)

    def test_repeated_request_is_deterministic(self, served):
        url, _pool, _server = served
        assert_tables_identical(
            request_samples(url, "kinetgan", 32, seed=9),
            request_samples(url, "kinetgan", 32, seed=9),
        )


class TestEndpoints:
    def test_health_document(self, served):
        url, _pool, server = served
        health = fetch_json(url, "/health")
        assert health["status"] == "ok"
        assert health["queue_capacity"] == server.queue_depth
        assert health["artifacts"] == ["kinetgan"]
        assert set(health["stats"]) >= {"served", "rejected", "timeouts"}

    def test_artifacts_document_carries_manifests(self, served):
        url, _pool, _server = served
        artifacts = fetch_json(url, "/artifacts")["artifacts"]
        assert artifacts["kinetgan"]["model_class"] == "KiNETGAN"
        assert artifacts["kinetgan"]["format_version"] == 2

    def test_unknown_route_404(self, served):
        url, _pool, _server = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch_json(url, "/nope")
        assert excinfo.value.code == 404


class TestRequestValidation:
    def test_unknown_artifact_404(self, served):
        url, _pool, _server = served
        status, _headers, body = raw_post(
            url, json.dumps({"artifact": "missing", "n": 10}).encode()
        )
        assert status == 404
        assert "missing" in body["error"]

    def test_malformed_json_body_400(self, served):
        url, _pool, _server = served
        status, _headers, body = raw_post(url, b"this is not json")
        assert status == 400
        assert "malformed" in body["error"]

    def test_empty_body_400(self, served):
        url, _pool, _server = served
        status, _headers, _body = raw_post(url, b"")
        assert status == 400

    @pytest.mark.parametrize(
        "payload",
        [
            {"artifact": "kinetgan"},
            {"artifact": "kinetgan", "n": 0},
            {"artifact": "kinetgan", "n": -5},
            {"artifact": "kinetgan", "n": "ten"},
            {"artifact": "kinetgan", "n": True},
            {"n": 10},
            {"artifact": "kinetgan", "n": 10, "conditions": "bad"},
            {"artifact": "kinetgan", "n": 10, "seed": "abc"},
        ],
    )
    def test_invalid_fields_400(self, served, payload):
        url, _pool, _server = served
        status, _headers, _body = raw_post(url, json.dumps(payload).encode())
        assert status == 400

    def test_oversized_n_400(self, served):
        url, _pool, server = served
        status, _headers, body = raw_post(
            url, json.dumps({"artifact": "kinetgan", "n": server.max_rows + 1}).encode()
        )
        assert status == 400
        assert "max_rows" in body["error"]

    def test_bad_conditions_answer_400(self, served):
        """A sampling-time error (unknown condition column) maps to 400."""
        url, _pool, _server = served
        status, _headers, body = raw_post(
            url,
            json.dumps(
                {"artifact": "kinetgan", "n": 8, "conditions": {"no_such_column": "x"}}
            ).encode(),
        )
        assert status == 400
        assert "sampling failed" in body["error"]


class TestBackpressure:
    def test_queue_full_429_with_retry_after(self, kinetgan_artifact):
        with ServingPool({"kinetgan": kinetgan_artifact}, executor="serial") as pool:
            in_dispatch = threading.Event()
            release = threading.Event()
            real = pool.sample_batch

            def gated(requests, timeout=None):
                in_dispatch.set()
                assert release.wait(20.0)
                return real(requests, timeout)

            pool.sample_batch = gated  # type: ignore[method-assign]
            with SamplingHTTPServer(pool, queue_depth=2, retry_after=2.5) as server:
                url = server.url
                results: list = []

                def client():
                    results.append(raw_post(url, json.dumps(
                        {"artifact": "kinetgan", "n": 8, "seed": 1}).encode()))

                # First request occupies the dispatcher ...
                threads = [threading.Thread(target=client)]
                threads[0].start()
                assert in_dispatch.wait(20.0)
                # ... the next two fill the bounded queue ...
                for _ in range(2):
                    thread = threading.Thread(target=client)
                    thread.start()
                    threads.append(thread)
                deadline = time.monotonic() + 10.0
                while server._queue.qsize() < 2 and time.monotonic() < deadline:
                    time.sleep(0.005)
                assert server._queue.qsize() == 2
                # ... and the fourth is rejected with backpressure.
                status, headers, body = raw_post(
                    url, json.dumps({"artifact": "kinetgan", "n": 8}).encode()
                )
                assert status == 429
                assert headers.get("Retry-After") == "2.5"
                assert "queue full" in body["error"]
                assert server.stats.snapshot()["rejected"] == 1
                release.set()
                for thread in threads:
                    thread.join(timeout=30.0)
                assert [status for status, _h, _b in results] == [200, 200, 200]

    def test_queue_wait_past_deadline_504(self, kinetgan_artifact):
        with ServingPool({"kinetgan": kinetgan_artifact}, executor="serial") as pool:
            first = threading.Event()

            real = pool.sample_batch

            def slow_once(requests, timeout=None):
                if not first.is_set():
                    first.set()
                    time.sleep(0.3)
                return real(requests, timeout)

            pool.sample_batch = slow_once  # type: ignore[method-assign]
            with SamplingHTTPServer(pool, queue_depth=8, request_deadline=0.05) as server:
                url = server.url
                results: list = []

                def client():
                    results.append(raw_post(url, json.dumps(
                        {"artifact": "kinetgan", "n": 8, "seed": 1}).encode()))

                blocker = threading.Thread(target=client)
                blocker.start()
                assert first.wait(10.0)
                # Queued while the dispatcher sleeps past the deadline.
                status, _headers, body = raw_post(
                    url, json.dumps({"artifact": "kinetgan", "n": 8}).encode()
                )
                assert status == 504
                assert "deadline" in body["error"]
                blocker.join(timeout=30.0)


class TestDrain:
    def test_drain_serves_admitted_then_503s_new(self, kinetgan_artifact):
        with ServingPool({"kinetgan": kinetgan_artifact}, executor="serial") as pool:
            in_dispatch = threading.Event()
            release = threading.Event()
            real = pool.sample_batch

            def gated(requests, timeout=None):
                in_dispatch.set()
                assert release.wait(20.0)
                return real(requests, timeout)

            pool.sample_batch = gated  # type: ignore[method-assign]
            server = SamplingHTTPServer(pool, queue_depth=8).start()
            url = server.url
            results: list = []

            def client():
                results.append(raw_post(url, json.dumps(
                    {"artifact": "kinetgan", "n": 8, "seed": 2}).encode()))

            admitted = [threading.Thread(target=client) for _ in range(2)]
            admitted[0].start()
            assert in_dispatch.wait(20.0)
            admitted[1].start()
            deadline = time.monotonic() + 10.0
            while server._queue.qsize() < 1 and time.monotonic() < deadline:
                time.sleep(0.005)

            stopper = threading.Thread(target=server.stop)
            stopper.start()
            deadline = time.monotonic() + 10.0
            while not server._draining.is_set() and time.monotonic() < deadline:
                time.sleep(0.005)
            # New work is refused the moment drain begins ...
            status, _headers, body = raw_post(
                url, json.dumps({"artifact": "kinetgan", "n": 8}).encode()
            )
            assert status == 503
            assert "draining" in body["error"]
            # ... while everything already admitted is still served.
            release.set()
            for thread in admitted:
                thread.join(timeout=30.0)
            stopper.join(timeout=30.0)
            assert [status for status, _h, _b in results] == [200, 200]


class TestServingPool:
    def test_requires_artifacts(self):
        with pytest.raises(ValueError, match="at least one artifact"):
            ServingPool({})

    def test_unknown_artifact_raises_keyerror(self, kinetgan_artifact):
        with ServingPool({"kinetgan": kinetgan_artifact}) as pool:
            with pytest.raises(KeyError):
                pool.sample_batch([("missing", 8, None, 1)])

    def test_closed_pool_rejects_requests(self, kinetgan_artifact):
        pool = ServingPool({"kinetgan": kinetgan_artifact})
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.sample_batch([("kinetgan", 8, None, 1)])

    def test_process_pool_parity(self, kinetgan_artifact, fitted_kinetgan):
        """Workers resolve one shared-memory copy; rows stay bit-identical."""
        with ServingPool({"kinetgan": kinetgan_artifact}, executor="process:2") as pool:
            results = pool.sample_batch(
                [("kinetgan", 60, None, 11), ("kinetgan", 60, None, 12)]
            )
        assert all(result.failure is None for result in results)
        assert_tables_identical(
            fitted_kinetgan.sample(60, rng=sampling_rng(11)), results[0].value
        )
        assert_tables_identical(
            fitted_kinetgan.sample(60, rng=sampling_rng(12)), results[1].value
        )

    def test_timeout_surfaces_as_task_failure(self, kinetgan_artifact):
        with ServingPool({"kinetgan": kinetgan_artifact}, executor="serial") as pool:
            results = pool.sample_batch([("kinetgan", 5000, None, 1)], timeout=1e-9)
        assert results[0].failure is not None
        assert results[0].failure.cause == "timeout"

    def test_resident_models_have_workspaces_unbound(self, kinetgan_artifact):
        """Installed models carry no step workspace: the recycled scratch
        buffers are single-stream, and thread-pool workers sample the same
        resident object concurrently."""
        from repro.neural.network import Sequential

        with ServingPool({"kinetgan": kinetgan_artifact}, executor="thread:2") as pool:
            model = pool._refs["kinetgan"].resolve()
            stack, seen, networks = [model], set(), 0
            while stack:
                node = stack.pop()
                if id(node) in seen:
                    continue
                seen.add(id(node))
                if isinstance(node, Sequential):
                    networks += 1
                    assert node.workspace is None
                    assert all(layer._ws is None for layer in node.layers)
                    for layer in node.layers:
                        # Output-activation scratch follows the same
                        # single-stream contract; unbound means disabled.
                        if hasattr(layer, "_scratch"):
                            assert layer._scratch is None
                    continue
                if isinstance(node, dict):
                    stack.extend(node.values())
                elif isinstance(node, (list, tuple)):
                    stack.extend(node)
                elif isinstance(getattr(node, "__dict__", None), dict):
                    stack.extend(vars(node).values())
        assert networks >= 2  # generator + discriminator at minimum

    def test_concurrent_thread_sampling_stays_bit_identical(
        self, kinetgan_artifact, fitted_kinetgan
    ):
        """A burst through two worker threads matches serial references.

        This is the regression test for shared step-workspace scratch: with
        a workspace still bound, two concurrent forwards through the same
        resident generator overwrite each other's buffers and the rows
        diverge (or sampling raises outright)."""
        requests = [("kinetgan", 48, None, 100 + i) for i in range(12)]
        with ServingPool({"kinetgan": kinetgan_artifact}, executor="thread:2") as pool:
            results = pool.sample_batch(requests)
        assert all(result.failure is None for result in results)
        for (_, n, _, seed), result in zip(requests, results):
            assert_tables_identical(
                fitted_kinetgan.sample(n, rng=sampling_rng(seed)), result.value
            )
