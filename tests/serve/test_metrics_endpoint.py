"""``GET /metrics``: exposition validity, monotonicity, layer coverage."""

import re
import threading
import urllib.request

import pytest

from repro.core import KiNETGAN, KiNETGANConfig
from repro.engine import MetricsCallback, TrainingEngine
from repro.obs import MetricsRegistry, default_registry
from repro.serve import SamplingHTTPServer, ServingPool, fetch_json, request_samples, save_model

# One exposition line: name{labels} value (labels optional); or HELP/TYPE.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" (-?[0-9][0-9.eE+-]*|[+-]Inf|NaN)$"
)
_META_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def assert_valid_exposition(text: str) -> None:
    assert text.endswith("\n")
    for line in text.rstrip("\n").splitlines():
        pattern = _META_RE if line.startswith("#") else _SAMPLE_RE
        assert pattern.match(line), line


@pytest.fixture(scope="module")
def artifact(tmp_path_factory, lab_bundle_small):
    config = KiNETGANConfig(
        embedding_dim=8,
        generator_dims=(16,),
        discriminator_dims=(16,),
        epochs=1,
        batch_size=32,
        knowledge_negatives_per_batch=8,
        max_modes=3,
        seed=0,
    )
    model = KiNETGAN(config)
    model.fit(
        lab_bundle_small.table.head(300),
        catalog=lab_bundle_small.catalog,
        condition_columns=lab_bundle_small.condition_columns,
    )
    path = tmp_path_factory.mktemp("obs-serve") / "model"
    save_model(model, path)
    return path


def _scrape(url: str) -> str:
    with urllib.request.urlopen(url + "/metrics") as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        return response.read().decode("utf-8")


def _counter_total(registry: MetricsRegistry, name: str, **fixed) -> float:
    total = 0.0
    for sample in registry.snapshot().get(name, {}).get("samples", []):
        if all(sample["labels"].get(k) == v for k, v in fixed.items()):
            total += sample["value"]
    return total


class TestMetricsEndpoint:
    def test_exposition_is_valid_and_covers_all_three_layers(self, artifact):
        # Train one tiny engine loop with a MetricsCallback so the engine
        # family exists in the default registry alongside the runtime and
        # serving families the request itself produces.
        class _Step:
            def begin_epoch(self, rng, epoch):
                return None

            def step(self, rng, batch_index):
                return {"loss": 1.0}

            def checkpoint_targets(self):
                return {}

        TrainingEngine(
            _Step(), epochs=2, callbacks=[MetricsCallback(prefix="obs-test")]
        ).run()

        with ServingPool({"m": artifact}, executor="thread:2") as pool:
            with SamplingHTTPServer(pool, port=0) as server:
                request_samples(server.url, "m", 8, seed=1)
                text = _scrape(server.url)
        assert_valid_exposition(text)
        # serving layer
        assert 'repro_http_requests_total{outcome="served"}' in text
        assert "repro_http_request_seconds_bucket" in text
        assert "repro_http_queue_depth" in text
        # runtime layer
        assert 'repro_tasks_dispatched_total{executor="thread"}' in text
        assert "repro_task_seconds_bucket" in text
        # engine layer
        assert 'repro_engine_epochs_total{loop="obs-test"} 2' in text
        assert 'repro_engine_metric{loop="obs-test",metric="loss"} 1' in text
        assert "repro_engine_epoch_seconds_bucket" in text

    def test_json_snapshot_matches_registry_shape(self, artifact):
        with ServingPool({"m": artifact}, executor=None) as pool:
            with SamplingHTTPServer(pool, port=0) as server:
                request_samples(server.url, "m", 4, seed=0)
                snapshot = fetch_json(server.url, "/metrics?format=json")
        family = snapshot["repro_http_requests_total"]
        assert family["kind"] == "counter"
        outcomes = {sample["labels"]["outcome"] for sample in family["samples"]}
        assert {"admitted", "served", "rejected"} <= outcomes

    def test_counters_are_monotonic_under_a_burst(self, artifact):
        registry = MetricsRegistry()
        with ServingPool({"m": artifact}, executor="thread:2") as pool:
            with SamplingHTTPServer(pool, port=0, registry=registry) as server:
                url = server.url
                seen = []

                def client(slot):
                    for i in range(6):
                        request_samples(url, "m", 4, seed=slot * 100 + i)

                threads = [threading.Thread(target=client, args=(slot,)) for slot in range(3)]
                for thread in threads:
                    thread.start()
                # Sample the served counter while the burst runs; it must
                # never move backwards.
                for _ in range(50):
                    seen.append(_counter_total(registry, "repro_http_requests_total",
                                               outcome="served"))
                for thread in threads:
                    thread.join()
                seen.append(_counter_total(registry, "repro_http_requests_total",
                                           outcome="served"))
        assert seen == sorted(seen)
        assert seen[-1] == 18.0
        assert _counter_total(registry, "repro_http_requests_total", outcome="admitted") == 18.0

    def test_private_registry_isolates_a_server(self, artifact):
        registry = MetricsRegistry()
        before = _counter_total(default_registry(), "repro_http_requests_total",
                                outcome="admitted")
        with ServingPool({"m": artifact}, executor=None) as pool:
            with SamplingHTTPServer(pool, port=0, registry=registry) as server:
                request_samples(server.url, "m", 4, seed=0)
                text = _scrape(server.url)
        assert 'repro_http_requests_total{outcome="served"} 1' in text
        after = _counter_total(default_registry(), "repro_http_requests_total",
                               outcome="admitted")
        assert after == before  # nothing leaked into the process registry


class TestHealthRuntimeSection:
    def test_health_surfaces_runtime_counters(self, artifact):
        with ServingPool({"m": artifact}, executor="thread:2") as pool:
            with SamplingHTTPServer(pool, port=0) as server:
                request_samples(server.url, "m", 4, seed=1)
                request_samples(server.url, "m", 4, seed=2)
                health = fetch_json(server.url, "/health")
        runtime = health["runtime"]
        assert runtime["executor"] == "thread"
        assert runtime["respawns"] == 0
        tasks = runtime["tasks"]
        # Process-wide totals for this executor kind: at least this
        # server's two dispatches, and internally consistent.
        assert tasks["dispatched"] >= 2
        assert tasks["completed"] >= 2
        assert tasks["completed"] <= tasks["dispatched"]
        for key in ("retries", "timeouts", "crashes", "errors"):
            assert tasks[key] >= 0

    def test_stats_snapshot_unchanged_by_registry_mirroring(self, artifact):
        with ServingPool({"m": artifact}, executor=None) as pool:
            with SamplingHTTPServer(pool, port=0) as server:
                request_samples(server.url, "m", 4, seed=1)
                snapshot = server.stats.snapshot()
        assert snapshot == {
            "admitted": 1,
            "served": 1,
            "rejected": 0,
            "timeouts": 0,
            "errors": 0,
            "invalid": 0,
        }
