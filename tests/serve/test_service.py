"""The batched sampling service: registry, micro-batching, streaming.

The determinism contract under test: a request's rows depend only on
(artifact, n, conditions, seed) -- never on which requests it was batched
with, the chunk size, or whether it went through the queue.
"""

from __future__ import annotations

import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.baselines import TVAE, IndependentSampler
from repro.core import KiNETGAN, KiNETGANConfig
from repro.engine import sampling_rng
from repro.runtime import SerialExecutor
from repro.serve import ModelRegistry, SampleRequest, SamplingService, load_model, save_model


def small_config(seed: int = 0) -> KiNETGANConfig:
    return KiNETGANConfig(
        embedding_dim=16,
        generator_dims=(32,),
        discriminator_dims=(32,),
        epochs=2,
        batch_size=64,
        knowledge_negatives_per_batch=16,
        max_modes=4,
        seed=seed,
    )


@pytest.fixture(scope="module")
def artifacts(lab_bundle_small, tmp_path_factory):
    """Two saved artifacts (a conditional GAN and a TVAE) plus the originals."""
    train = lab_bundle_small.table.head(400)
    kinetgan = KiNETGAN(small_config())
    kinetgan.fit(
        train,
        catalog=lab_bundle_small.catalog,
        condition_columns=lab_bundle_small.condition_columns,
    )
    tvae = TVAE(small_config(), latent_dim=8).fit(train)
    independent = IndependentSampler(seed=7).fit(train)
    root = tmp_path_factory.mktemp("service_artifacts")
    save_model(kinetgan, root / "kinetgan")
    save_model(tvae, root / "tvae")
    save_model(independent, root / "independent")
    return {
        "kinetgan_dir": root / "kinetgan",
        "tvae_dir": root / "tvae",
        "independent_dir": root / "independent",
        "kinetgan": kinetgan,
        "tvae": tvae,
        "independent": independent,
    }


def assert_tables_identical(a, b) -> None:
    assert a.schema.names == b.schema.names
    assert a.n_rows == b.n_rows
    for name in a.schema.names:
        assert np.array_equal(a.column(name), b.column(name)), name


class TestSingleRequests:
    def test_sample_matches_model_sample(self, artifacts):
        service = SamplingService()
        served = service.sample(artifacts["kinetgan_dir"], 128, seed=21)
        expected = artifacts["kinetgan"].sample(128, rng=sampling_rng(21))
        assert_tables_identical(expected, served)

    def test_non_gan_models_served_per_request(self, artifacts):
        service = SamplingService()
        served = service.sample(artifacts["tvae_dir"], 90, seed=4)
        expected = artifacts["tvae"].sample(90, rng=sampling_rng(4))
        assert_tables_identical(expected, served)

    def test_invalid_request_rejected(self):
        with pytest.raises(ValueError):
            SampleRequest(artifact="x", n=0)

    def test_default_seed_for_configless_model(self, artifacts):
        """Models without a config (IndependentSampler) fall back to their
        own seed when the request carries none, matching model.sample()."""
        service = SamplingService()
        served = service.sample(artifacts["independent_dir"], 60)
        assert_tables_identical(artifacts["independent"].sample(60), served)
        streamed = list(service.sample_stream(artifacts["independent_dir"], 60, chunk_rows=25))
        merged = streamed[0].concat(streamed[1]).concat(streamed[2])
        assert_tables_identical(artifacts["independent"].sample(60), merged)


class TestMicroBatching:
    def test_batched_requests_match_individual_sampling(self, artifacts):
        """Batching with other requests never changes a request's rows."""
        service = SamplingService(max_batch_rows=100)  # force multiple chunks
        conditions = {
            "event_type": artifacts["kinetgan"].sampler.categories("event_type")[0]
        }
        requests = [
            SampleRequest(str(artifacts["kinetgan_dir"]), n=70, seed=1),
            SampleRequest(str(artifacts["tvae_dir"]), n=40, seed=2),
            SampleRequest(str(artifacts["kinetgan_dir"]), n=55, seed=3, conditions=conditions),
            SampleRequest(str(artifacts["kinetgan_dir"]), n=101, seed=1),
        ]
        tables = service.sample_many(requests)
        assert [t.n_rows for t in tables] == [70, 40, 55, 101]
        model, tvae = artifacts["kinetgan"], artifacts["tvae"]
        assert_tables_identical(model.sample(70, rng=sampling_rng(1)), tables[0])
        assert_tables_identical(tvae.sample(40, rng=sampling_rng(2)), tables[1])
        assert_tables_identical(
            model.sample(55, conditions=conditions, rng=sampling_rng(3)), tables[2]
        )
        assert_tables_identical(model.sample(101, rng=sampling_rng(1)), tables[3])

    def test_same_artifact_requests_share_generator_passes(self, artifacts):
        service = SamplingService(max_batch_rows=10_000)
        requests = [
            SampleRequest(str(artifacts["kinetgan_dir"]), n=50, seed=i) for i in range(6)
        ]
        service.sample_many(requests)
        assert service.stats.requests == 6
        assert service.stats.generator_passes == 1

    def test_empty_burst(self):
        assert SamplingService().sample_many([]) == []


class TestStreaming:
    def test_chunks_concatenate_to_one_shot_sample(self, artifacts):
        service = SamplingService(chunk_rows=64)
        chunks = list(service.sample_stream(artifacts["kinetgan_dir"], 300, seed=11))
        assert [c.n_rows for c in chunks] == [64, 64, 64, 64, 44]
        merged = chunks[0]
        for chunk in chunks[1:]:
            merged = merged.concat(chunk)
        expected = artifacts["kinetgan"].sample(300, rng=sampling_rng(11))
        assert_tables_identical(expected, merged)

    def test_stream_for_non_gan_model(self, artifacts):
        service = SamplingService(chunk_rows=32)
        chunks = list(service.sample_stream(artifacts["tvae_dir"], 80, seed=6))
        merged = chunks[0].concat(chunks[1]).concat(chunks[2])
        assert_tables_identical(artifacts["tvae"].sample(80, rng=sampling_rng(6)), merged)


class TestRegistry:
    def test_lru_eviction_at_capacity(self, artifacts):
        registry = ModelRegistry(capacity=1)
        registry.get(artifacts["kinetgan_dir"])
        registry.get(artifacts["tvae_dir"])
        assert len(registry) == 1
        assert registry.evictions == 1
        # The evicted model reloads transparently and still serves correctly.
        service = SamplingService(registry=registry)
        served = service.sample(artifacts["kinetgan_dir"], 30, seed=8)
        assert_tables_identical(
            artifacts["kinetgan"].sample(30, rng=sampling_rng(8)), served
        )
        assert registry.misses == 3

    def test_hits_do_not_reload(self, artifacts):
        registry = ModelRegistry(capacity=2)
        first = registry.get(artifacts["kinetgan_dir"])
        second = registry.get(artifacts["kinetgan_dir"])
        assert first is second
        assert (registry.hits, registry.misses) == (1, 1)

    def test_preload_fans_out_over_executor(self, artifacts):
        registry = ModelRegistry(capacity=4)
        executor = SerialExecutor()
        registry.preload(
            [artifacts["kinetgan_dir"], artifacts["tvae_dir"]], executor=executor
        )
        assert len(registry) == 2
        assert registry.misses == 0  # preloaded, not lazily loaded

    def test_preload_accepts_worker_specs(self, artifacts):
        registry = ModelRegistry(capacity=4)
        registry.preload([artifacts["kinetgan_dir"]], executor="serial")
        assert len(registry) == 1

    def test_preload_uses_the_injected_loader(self, artifacts):
        loads: list[str] = []

        def spy_loader(key: str):
            loads.append(key)
            return load_model(key)

        registry = ModelRegistry(capacity=4, loader=spy_loader)
        registry.preload([artifacts["tvae_dir"]])
        registry.get(artifacts["kinetgan_dir"])
        assert len(loads) == 2


class TestConcurrentFrontend:
    def test_submitted_futures_resolve_with_parity(self, artifacts):
        with SamplingService() as service:
            futures = [
                service.submit(SampleRequest(str(artifacts["kinetgan_dir"]), n=40, seed=s))
                for s in range(5)
            ]
            tables = [future.result(timeout=60) for future in futures]
        for seed, table in enumerate(tables):
            assert_tables_identical(
                artifacts["kinetgan"].sample(40, rng=sampling_rng(seed)), table
            )

    def test_cancelled_future_does_not_kill_the_batcher(self, artifacts):
        """A future cancelled while queued is dropped; later requests and
        co-batched futures still resolve (regression: set_result on a
        cancelled future used to raise and kill the batcher thread)."""
        service = SamplingService()
        cancelled = Future()
        kept: "Future" = Future()
        request = SampleRequest(str(artifacts["tvae_dir"]), n=10, seed=0)
        cancelled.cancel()
        now = time.monotonic()
        service._serve_batch([(request, cancelled, now), (request, kept, now)])
        assert kept.result(timeout=60).n_rows == 10
        with service:
            follow_up = service.submit(SampleRequest(str(artifacts["tvae_dir"]), n=5, seed=1))
            assert follow_up.result(timeout=60).n_rows == 5

    def test_poisoned_request_fails_only_its_own_future(self, artifacts):
        """Regression: one bad request in a batch used to fail every
        co-batched future with its exception (and a batcher-thread death
        would hang all later submissions).  The poisoned future must carry
        the error alone; co-batched and follow-up requests are served."""
        with SamplingService() as service:
            poisoned = Future()
            good = Future()
            now = time.monotonic()
            service._serve_batch(
                [
                    (SampleRequest("missing/artifact", n=5, seed=0), poisoned, now),
                    (SampleRequest(str(artifacts["tvae_dir"]), n=10, seed=0), good, now),
                ]
            )
            assert isinstance(poisoned.exception(timeout=60), Exception)
            assert good.result(timeout=60).n_rows == 10
            # The batcher thread is still alive: a poisoned submission
            # followed by a good one resolves both appropriately.
            bad_future = service.submit(SampleRequest("missing/artifact", n=5, seed=0))
            good_future = service.submit(
                SampleRequest(str(artifacts["tvae_dir"]), n=7, seed=1)
            )
            assert isinstance(bad_future.exception(timeout=60), Exception)
            assert good_future.result(timeout=60).n_rows == 7

    def test_request_timeout_fails_only_the_stale_request(self, artifacts):
        """A request that overran ``request_timeout`` in the queue fails
        with TimeoutError on its own future; fresh requests are served."""
        service = SamplingService(request_timeout=0.05)
        stale = Future()
        fresh = Future()
        request = SampleRequest(str(artifacts["tvae_dir"]), n=10, seed=0)
        now = time.monotonic()
        service._serve_batch([(request, stale, now - 1.0), (request, fresh, now)])
        assert isinstance(stale.exception(timeout=60), TimeoutError)
        assert fresh.result(timeout=60).n_rows == 10

    def test_close_is_idempotent_and_restartable(self, artifacts):
        service = SamplingService()
        future = service.submit(SampleRequest(str(artifacts["tvae_dir"]), n=10, seed=0))
        future.result(timeout=60)
        service.close()
        service.close()
        # Submitting after close restarts the batcher.
        again = service.submit(SampleRequest(str(artifacts["tvae_dir"]), n=10, seed=0))
        assert again.result(timeout=60).n_rows == 10
        service.close()


class TestLoadModelRoundTripThroughService:
    def test_loaded_model_serves_like_original(self, artifacts):
        loaded = load_model(artifacts["kinetgan_dir"])
        assert_tables_identical(
            artifacts["kinetgan"].sample(60, rng=sampling_rng(31)),
            loaded.sample(60, rng=sampling_rng(31)),
        )
