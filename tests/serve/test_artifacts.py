"""Artifact round-trips: save -> load -> sample must be bit-identical.

Covers the headline ``repro.serve`` invariant for KiNETGAN and the
baselines (in-process and across a subprocess boundary), plus the
manifest validation failure modes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import TVAE, IndependentSampler, TableGAN
from repro.core import KiNETGAN, KiNETGANConfig
from repro.engine import sampling_rng
from repro.serve import ArtifactError, ModelArtifact, load_model, save_model

REPO_ROOT = Path(__file__).resolve().parents[2]


def small_config(seed: int = 0, dtype: str = "float64") -> KiNETGANConfig:
    return KiNETGANConfig(
        embedding_dim=16,
        generator_dims=(32,),
        discriminator_dims=(32,),
        epochs=2,
        batch_size=64,
        knowledge_negatives_per_batch=16,
        max_modes=4,
        seed=seed,
        dtype=dtype,
    )


@pytest.fixture(scope="module")
def train_table(lab_bundle_small):
    return lab_bundle_small.table.head(400)


@pytest.fixture(scope="module")
def fitted_kinetgan(lab_bundle_small, train_table):
    model = KiNETGAN(small_config())
    model.fit(
        train_table,
        catalog=lab_bundle_small.catalog,
        condition_columns=lab_bundle_small.condition_columns,
    )
    return model


@pytest.fixture(scope="module")
def fitted_tvae(train_table):
    return TVAE(small_config(), latent_dim=8).fit(train_table)


@pytest.fixture(scope="module")
def fitted_tablegan(lab_bundle_small, train_table):
    return TableGAN(small_config(), label_column=lab_bundle_small.label_column).fit(train_table)


@pytest.fixture(scope="module")
def kinetgan_artifact(fitted_kinetgan, tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("artifacts") / "kinetgan"
    save_model(fitted_kinetgan, directory, metadata={"dataset": "lab_iot"})
    return directory


def assert_tables_identical(a, b) -> None:
    assert a.schema.names == b.schema.names
    assert a.n_rows == b.n_rows
    for name in a.schema.names:
        assert np.array_equal(a.column(name), b.column(name)), name


class TestRoundTripParity:
    def test_kinetgan_bit_parity(self, fitted_kinetgan, kinetgan_artifact):
        loaded = load_model(kinetgan_artifact)
        expected = fitted_kinetgan.sample(300, rng=sampling_rng(42))
        actual = loaded.sample(300, rng=sampling_rng(42))
        assert_tables_identical(expected, actual)

    def test_kinetgan_conditional_parity(self, fitted_kinetgan, kinetgan_artifact):
        loaded = load_model(kinetgan_artifact)
        conditions = {"event_type": fitted_kinetgan.sampler.categories("event_type")[0]}
        expected = fitted_kinetgan.sample(64, conditions=conditions, rng=sampling_rng(5))
        actual = loaded.sample(64, conditions=conditions, rng=sampling_rng(5))
        assert_tables_identical(expected, actual)

    def test_tvae_bit_parity(self, fitted_tvae, tmp_path):
        save_model(fitted_tvae, tmp_path / "tvae")
        loaded = load_model(tmp_path / "tvae")
        assert_tables_identical(
            fitted_tvae.sample(200, rng=sampling_rng(7)),
            loaded.sample(200, rng=sampling_rng(7)),
        )

    def test_tablegan_bit_parity(self, fitted_tablegan, tmp_path):
        save_model(fitted_tablegan, tmp_path / "tablegan")
        loaded = load_model(tmp_path / "tablegan")
        assert_tables_identical(
            fitted_tablegan.sample(200, rng=sampling_rng(9)),
            loaded.sample(200, rng=sampling_rng(9)),
        )

    def test_independent_sampler_round_trip(self, train_table, tmp_path):
        model = IndependentSampler(seed=3).fit(train_table)
        artifact = save_model(model, tmp_path / "independent")
        assert artifact.networks == []
        loaded = load_model(tmp_path / "independent")
        assert_tables_identical(
            model.sample(150, rng=sampling_rng(1)),
            loaded.sample(150, rng=sampling_rng(1)),
        )

    def test_default_seed_sampling_matches(self, fitted_kinetgan, kinetgan_artifact):
        """With no explicit rng both sides fall back to the config seed."""
        loaded = load_model(kinetgan_artifact)
        assert_tables_identical(fitted_kinetgan.sample(50), loaded.sample(50))


class TestRestoredState:
    def test_restored_sampler_carries_no_real_rows(self, kinetgan_artifact):
        loaded = load_model(kinetgan_artifact)
        assert loaded.sampler.table is None
        batch = loaded.sampler.sample(16, np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="no real rows"):
            loaded.sampler.real_batch(batch)

    def test_manifest_records_model_and_networks(self, kinetgan_artifact):
        artifact = ModelArtifact.open(kinetgan_artifact)
        assert artifact.model_class == "KiNETGAN"
        assert artifact.format_version == 2
        assert set(artifact.networks) == {"generator", "discriminator", "kg_head"}
        assert artifact.metadata["dataset"] == "lab_iot"

    def test_unfitted_model_cannot_be_saved(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_model(KiNETGAN(small_config()), tmp_path / "nope")


class TestCrossProcess:
    def test_subprocess_load_samples_identically(self, fitted_kinetgan, kinetgan_artifact,
                                                 tmp_path):
        """A fresh interpreter loads the artifact and reproduces sample()."""
        out_csv = tmp_path / "subprocess.csv"
        script = (
            "import sys\n"
            "from repro.serve import load_model\n"
            "from repro.engine import sampling_rng\n"
            "model = load_model(sys.argv[1])\n"
            "model.sample(120, rng=sampling_rng(2024)).to_csv(sys.argv[2])\n"
        )
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run(
            [sys.executable, "-c", script, str(kinetgan_artifact), str(out_csv)],
            check=True,
            env=env,
            cwd=str(tmp_path),
        )
        expected = tmp_path / "expected.csv"
        fitted_kinetgan.sample(120, rng=sampling_rng(2024)).to_csv(expected)
        assert out_csv.read_text() == expected.read_text()


class TestRejection:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ArtifactError, match="manifest"):
            load_model(tmp_path)

    def test_future_format_version_rejected(self, kinetgan_artifact, tmp_path):
        corrupted = tmp_path / "future"
        corrupted.mkdir()
        for path in Path(kinetgan_artifact).iterdir():
            (corrupted / path.name).write_bytes(path.read_bytes())
        manifest = json.loads((corrupted / "manifest.json").read_text())
        manifest["format_version"] = 999
        (corrupted / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="format version"):
            load_model(corrupted)

    def test_unknown_model_class_rejected(self, kinetgan_artifact, tmp_path):
        corrupted = tmp_path / "unknown"
        corrupted.mkdir()
        for path in Path(kinetgan_artifact).iterdir():
            (corrupted / path.name).write_bytes(path.read_bytes())
        manifest = json.loads((corrupted / "manifest.json").read_text())
        manifest["model_class"] = "DiffusionModel"
        (corrupted / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="unknown model class"):
            load_model(corrupted)

    def test_missing_network_file_named_in_error(self, kinetgan_artifact, tmp_path):
        corrupted = tmp_path / "missing_net"
        corrupted.mkdir()
        for path in Path(kinetgan_artifact).iterdir():
            if path.name != "generator.npz":
                (corrupted / path.name).write_bytes(path.read_bytes())
        with pytest.raises(ArtifactError, match="generator"):
            load_model(corrupted)

    def test_corrupt_state_blob_rejected(self, kinetgan_artifact, tmp_path):
        corrupted = tmp_path / "bad_state"
        corrupted.mkdir()
        for path in Path(kinetgan_artifact).iterdir():
            (corrupted / path.name).write_bytes(path.read_bytes())
        (corrupted / "state.npz").write_bytes(b"not an npz archive")
        with pytest.raises(ArtifactError, match="state"):
            load_model(corrupted)

    def test_unwritable_format_version_rejected(self, fitted_kinetgan, tmp_path):
        with pytest.raises(ArtifactError, match="format version"):
            save_model(fitted_kinetgan, tmp_path / "v999", format_version=999)


class TestFormatV2:
    """The default format is pickle-free and safe to load untrusted."""

    def test_state_is_npz_not_pickle(self, kinetgan_artifact):
        directory = Path(kinetgan_artifact)
        assert (directory / "state.npz").exists()
        assert not (directory / "state.pkl").exists()
        artifact = ModelArtifact.open(directory)
        assert artifact.state_path.name == "state.npz"

    def test_state_npz_loads_without_pickle(self, kinetgan_artifact):
        """Every npz member is a plain-dtype array -- allow_pickle stays off."""
        with np.load(Path(kinetgan_artifact) / "state.npz", allow_pickle=False) as data:
            assert "__state_json__" in data.files
            for member in data.files:
                assert data[member].dtype != object

    def test_no_pickle_opcodes_in_state_file(self, kinetgan_artifact):
        """The state blob contains no pickled payloads at all."""
        import io
        import zipfile

        raw = (Path(kinetgan_artifact) / "state.npz").read_bytes()
        with zipfile.ZipFile(io.BytesIO(raw)) as archive:
            for name in archive.namelist():
                assert not archive.read(name).startswith(b"\x80"), name

    def test_all_baselines_round_trip_v2(self, train_table, tmp_path):
        from repro.baselines import PATEGAN

        model = PATEGAN(small_config(), num_teachers=2).fit(train_table)
        artifact = save_model(model, tmp_path / "pategan")
        assert artifact.format_version == 2
        loaded = load_model(tmp_path / "pategan")
        assert_tables_identical(
            model.sample(150, rng=sampling_rng(13)),
            loaded.sample(150, rng=sampling_rng(13)),
        )

    def test_malicious_state_document_cannot_name_arbitrary_class(self, tmp_path):
        """A hostile kind tag fails loudly instead of constructing objects."""
        from repro.serve.codec import StateDecodeError, load_state_npz, save_state_npz

        path = save_state_npz({"x": 1}, tmp_path / "state.npz")
        import io
        import json as json_module
        import zipfile

        raw = (tmp_path / "state.npz").read_bytes()
        with zipfile.ZipFile(io.BytesIO(raw)) as archive:
            doc = json_module.loads(archive.read("__state_json__.npy")[128:].rstrip(b"\x00"))
        doc["evil"] = {"__kind__": "subprocess_popen", "cmd": "true"}
        buffer = io.BytesIO()
        np.savez(
            buffer,
            __state_json__=np.frombuffer(
                json_module.dumps(doc).encode("utf-8"), dtype=np.uint8
            ),
        )
        (tmp_path / "evil.npz").write_bytes(buffer.getvalue())
        with pytest.raises(StateDecodeError, match="unsupported node kind"):
            load_state_npz(tmp_path / "evil.npz")
        assert path.exists()


class TestFormatV1Compat:
    """Artifacts written by older builds (pickled state.pkl) still load."""

    @pytest.fixture(scope="class")
    def v1_artifact(self, fitted_kinetgan, tmp_path_factory) -> Path:
        directory = tmp_path_factory.mktemp("v1") / "kinetgan"
        save_model(fitted_kinetgan, directory, format_version=1)
        return directory

    def test_v1_layout_on_disk(self, v1_artifact):
        assert (v1_artifact / "state.pkl").exists()
        assert not (v1_artifact / "state.npz").exists()
        artifact = ModelArtifact.open(v1_artifact)
        assert artifact.format_version == 1
        assert artifact.state_path.name == "state.pkl"

    def test_v1_bit_parity(self, fitted_kinetgan, v1_artifact):
        loaded = load_model(v1_artifact)
        assert_tables_identical(
            fitted_kinetgan.sample(200, rng=sampling_rng(21)),
            loaded.sample(200, rng=sampling_rng(21)),
        )

    def test_v1_and_v2_load_identically(self, v1_artifact, kinetgan_artifact):
        from_v1 = load_model(v1_artifact)
        from_v2 = load_model(kinetgan_artifact)
        assert_tables_identical(
            from_v1.sample(100, rng=sampling_rng(33)),
            from_v2.sample(100, rng=sampling_rng(33)),
        )

    def test_v1_independent_sampler_loads(self, train_table, tmp_path):
        model = IndependentSampler(seed=5).fit(train_table)
        save_model(model, tmp_path / "ind_v1", format_version=1)
        loaded = load_model(tmp_path / "ind_v1")
        assert_tables_identical(
            model.sample(120, rng=sampling_rng(2)),
            loaded.sample(120, rng=sampling_rng(2)),
        )


class TestArtifactDtype:
    """The mixed-precision artifact contract (``docs/precision.md``).

    A float32 model must round-trip through ``save_model`` / ``load_model``
    with its dtype recorded in the manifest, its networks restored in
    float32, and its samples bit-identical -- in-process, across a fresh
    interpreter, and on both state formats.  A manifest whose declared
    dtype disagrees with the restored networks must be rejected.
    """

    @pytest.fixture(scope="class")
    def fitted_float32(self, lab_bundle_small, train_table):
        model = KiNETGAN(small_config(dtype="float32"))
        model.fit(
            train_table,
            catalog=lab_bundle_small.catalog,
            condition_columns=lab_bundle_small.condition_columns,
        )
        return model

    @pytest.fixture(scope="class")
    def float32_artifact(self, fitted_float32, tmp_path_factory) -> Path:
        directory = tmp_path_factory.mktemp("artifacts-f32") / "kinetgan-f32"
        save_model(fitted_float32, directory, metadata={"dataset": "lab_iot"})
        return directory

    def test_manifest_records_float32(self, float32_artifact):
        artifact = ModelArtifact.open(float32_artifact)
        assert artifact.dtype == "float32"
        assert json.loads((float32_artifact / "manifest.json").read_text())["dtype"] == "float32"

    def test_manifest_records_float64_default(self, kinetgan_artifact):
        assert ModelArtifact.open(kinetgan_artifact).dtype == "float64"

    def test_float32_round_trip_bit_identical(self, fitted_float32, float32_artifact):
        loaded = load_model(float32_artifact)
        assert_tables_identical(
            fitted_float32.sample(300, rng=sampling_rng(42)),
            loaded.sample(300, rng=sampling_rng(42)),
        )

    def test_restored_networks_are_float32(self, float32_artifact):
        loaded = load_model(float32_artifact)
        for name, network in loaded.artifact_networks().items():
            assert np.dtype(network.dtype) == np.float32, name

    def test_weight_files_halve(self, kinetgan_artifact, float32_artifact):
        """Same architecture, half the parameter bytes on disk."""
        f64 = sum(p.stat().st_size for p in Path(kinetgan_artifact).glob("*.npz"))
        f32 = sum(p.stat().st_size for p in Path(float32_artifact).glob("*.npz"))
        assert f32 < 0.75 * f64

    def test_v1_format_preserves_float32(self, fitted_float32, tmp_path):
        save_model(fitted_float32, tmp_path / "f32_v1", format_version=1)
        loaded = load_model(tmp_path / "f32_v1")
        for name, network in loaded.artifact_networks().items():
            assert np.dtype(network.dtype) == np.float32, name
        assert_tables_identical(
            fitted_float32.sample(150, rng=sampling_rng(8)),
            loaded.sample(150, rng=sampling_rng(8)),
        )

    def test_missing_dtype_key_accepted(self, float32_artifact, tmp_path):
        """Artifacts from before the precision tier carry no dtype key."""
        legacy = tmp_path / "legacy"
        legacy.mkdir()
        for path in Path(float32_artifact).iterdir():
            (legacy / path.name).write_bytes(path.read_bytes())
        manifest = json.loads((legacy / "manifest.json").read_text())
        del manifest["dtype"]
        (legacy / "manifest.json").write_text(json.dumps(manifest))
        assert ModelArtifact.open(legacy).dtype is None
        load_model(legacy)  # loads fine; the config still restores float32

    def test_mismatched_manifest_dtype_rejected(self, float32_artifact, tmp_path):
        tampered = tmp_path / "tampered"
        tampered.mkdir()
        for path in Path(float32_artifact).iterdir():
            (tampered / path.name).write_bytes(path.read_bytes())
        manifest = json.loads((tampered / "manifest.json").read_text())
        manifest["dtype"] = "float64"
        (tampered / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="declares dtype"):
            load_model(tampered)

    def test_subprocess_load_samples_identically(
        self, fitted_float32, float32_artifact, tmp_path
    ):
        """A fresh interpreter reproduces the float32 artifact's samples."""
        out_csv = tmp_path / "subprocess_f32.csv"
        script = (
            "import sys\n"
            "from repro.serve import load_model\n"
            "from repro.engine import sampling_rng\n"
            "model = load_model(sys.argv[1])\n"
            "model.sample(120, rng=sampling_rng(2024)).to_csv(sys.argv[2])\n"
        )
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run(
            [sys.executable, "-c", script, str(float32_artifact), str(out_csv)],
            check=True,
            env=env,
            cwd=str(tmp_path),
        )
        expected = tmp_path / "expected_f32.csv"
        fitted_float32.sample(120, rng=sampling_rng(2024)).to_csv(expected)
        assert out_csv.read_text() == expected.read_text()
