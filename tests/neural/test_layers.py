"""Layer forward/backward tests, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural.layers import (
    BatchNorm,
    Dense,
    Dropout,
    GumbelSoftmax,
    LeakyReLU,
    ReLU,
    Residual,
    Sigmoid,
    Softmax,
    Tanh,
)


def numerical_gradient(forward_fn, x: np.ndarray, grad_output: np.ndarray, eps: float = 1e-6):
    """Central-difference gradient of ``sum(forward(x) * grad_output)`` w.r.t. x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float((forward_fn(x) * grad_output).sum())
        flat[i] = original - eps
        minus = float((forward_fn(x) * grad_output).sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(4, 7, rng=rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 7)

    def test_rejects_wrong_input_width(self, rng):
        layer = Dense(4, 7, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(5, 3)))

    def test_rejects_nonpositive_dims(self, rng):
        with pytest.raises(ValueError):
            Dense(0, 3, rng=rng)

    def test_backward_matches_numerical_gradient(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        grad_out = rng.normal(size=(4, 2))
        layer.forward(x)
        grad_in = layer.backward(grad_out)
        numeric = numerical_gradient(lambda v: v @ layer.weight + layer.bias, x, grad_out)
        np.testing.assert_allclose(grad_in, numeric, atol=1e-5)

    def test_weight_gradient_accumulates(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        first = layer.grad_weight.copy()
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        np.testing.assert_allclose(layer.grad_weight, 2 * first)

    def test_zero_grad_resets(self, rng):
        layer = Dense(3, 2, rng=rng)
        layer.forward(rng.normal(size=(4, 3)))
        layer.backward(np.ones((4, 2)))
        layer.zero_grad()
        assert np.all(layer.grad_weight == 0)
        assert np.all(layer.grad_bias == 0)

    def test_no_bias_variant(self, rng):
        layer = Dense(3, 2, rng=rng, bias=False)
        assert len(layer.params) == 1
        out = layer.forward(np.zeros((2, 3)))
        np.testing.assert_allclose(out, 0.0)

    def test_state_dict_round_trip(self, rng):
        layer = Dense(3, 2, rng=rng)
        state = {k: v.copy() for k, v in layer.state_dict().items()}
        layer.weight += 1.0
        layer.load_state_dict(state)
        np.testing.assert_allclose(layer.weight, state["weight"])

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_forward_bias_add_exact_and_input_untouched(self, rng):
        # The bias is added in place on the freshly-allocated matmul result;
        # the caller's input must never be mutated by that optimisation.
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        original = x.copy()
        out = layer.forward(x)
        np.testing.assert_array_equal(x, original)
        np.testing.assert_allclose(out, x @ layer.weight + layer.bias)
        assert out is not layer.bias


@pytest.mark.parametrize(
    "layer_factory",
    [
        lambda rng: ReLU(),
        lambda rng: LeakyReLU(0.1),
        lambda rng: Tanh(),
        lambda rng: Sigmoid(),
        lambda rng: Softmax(),
    ],
    ids=["relu", "leaky_relu", "tanh", "sigmoid", "softmax"],
)
def test_activation_gradients_match_numerical(layer_factory, rng):
    layer = layer_factory(rng)
    x = rng.normal(size=(5, 4))
    grad_out = rng.normal(size=(5, 4))

    def forward(v):
        return layer.forward(v.copy())

    layer.forward(x)
    grad_in = layer.backward(grad_out)
    numeric = numerical_gradient(forward, x.copy(), grad_out)
    np.testing.assert_allclose(grad_in, numeric, atol=1e-4)


class TestActivations:
    def test_relu_clips_negatives(self, rng):
        out = ReLU().forward(np.asarray([[-1.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 2.0]])

    def test_leaky_relu_keeps_scaled_negatives(self):
        out = LeakyReLU(0.2).forward(np.asarray([[-1.0, 2.0]]))
        np.testing.assert_allclose(out, [[-0.2, 2.0]])

    def test_leaky_relu_rejects_negative_slope(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.1)

    def test_sigmoid_range(self, rng):
        out = Sigmoid().forward(rng.normal(size=(10, 3)) * 100)
        assert np.all(out >= 0) and np.all(out <= 1)

    def test_softmax_rows_sum_to_one(self, rng):
        out = Softmax().forward(rng.normal(size=(6, 5)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_softmax_temperature_sharpens(self, rng):
        x = rng.normal(size=(4, 5))
        hot = Softmax(temperature=0.1).forward(x)
        cold = Softmax(temperature=10.0).forward(x)
        assert hot.max(axis=1).mean() > cold.max(axis=1).mean()

    def test_gumbel_softmax_rows_sum_to_one(self, rng):
        out = GumbelSoftmax(rng=rng).forward(rng.normal(size=(6, 4)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_gumbel_softmax_eval_mode_deterministic(self, rng):
        layer = GumbelSoftmax(rng=rng)
        x = rng.normal(size=(3, 4))
        a = layer.forward(x, training=False)
        b = layer.forward(x, training=False)
        np.testing.assert_allclose(a, b)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = rng.normal(size=(5, 5))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_training_mode_zeroes_some_entries(self, rng):
        layer = Dropout(0.5, rng=rng)
        out = layer.forward(np.ones((100, 10)), training=True)
        assert (out == 0).sum() > 0

    def test_preserves_expected_scale(self, rng):
        layer = Dropout(0.5, rng=rng)
        out = layer.forward(np.ones((2000, 10)), training=True)
        assert abs(out.mean() - 1.0) < 0.1

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_backward_applies_same_mask(self, rng):
        layer = Dropout(0.5, rng=rng)
        out = layer.forward(np.ones((50, 4)), training=True)
        grad = layer.backward(np.ones((50, 4)))
        np.testing.assert_allclose(grad, out)


class TestBatchNorm:
    def test_normalises_batch(self, rng):
        layer = BatchNorm(4)
        x = rng.normal(5.0, 3.0, size=(200, 4))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_eval_mode_uses_running_stats(self, rng):
        layer = BatchNorm(3, momentum=0.0)
        x = rng.normal(2.0, 1.0, size=(100, 3))
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        assert abs(out.mean()) < 0.2

    def test_gradient_matches_numerical(self, rng):
        layer = BatchNorm(3)
        x = rng.normal(size=(6, 3))
        grad_out = rng.normal(size=(6, 3))

        def forward(v):
            fresh = BatchNorm(3)
            fresh.gamma = layer.gamma
            fresh.beta = layer.beta
            return fresh.forward(v.copy(), training=True)

        layer.forward(x, training=True)
        grad_in = layer.backward(grad_out)
        numeric = numerical_gradient(forward, x.copy(), grad_out)
        np.testing.assert_allclose(grad_in, numeric, atol=1e-4)

    def test_rejects_wrong_width(self, rng):
        with pytest.raises(ValueError):
            BatchNorm(3).forward(rng.normal(size=(5, 4)))


class TestResidual:
    def test_concatenates_input_and_inner_output(self, rng):
        block = Residual([Dense(4, 6, rng=rng), ReLU()])
        out = block.forward(rng.normal(size=(3, 4)))
        assert out.shape == (3, 10)

    def test_backward_shape(self, rng):
        block = Residual([Dense(4, 6, rng=rng), ReLU()])
        block.forward(rng.normal(size=(3, 4)))
        grad = block.backward(np.ones((3, 10)))
        assert grad.shape == (3, 4)

    def test_params_include_inner_layers(self, rng):
        block = Residual([Dense(4, 6, rng=rng)])
        assert len(block.params) == 2  # weight + bias

    def test_empty_inner_rejected(self):
        with pytest.raises(ValueError):
            Residual([])
