"""Loss value and gradient tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural.losses import (
    BinaryCrossEntropy,
    CrossEntropy,
    GaussianKLDivergence,
    HingeGANLoss,
    MeanSquaredError,
    WassersteinLoss,
)


def numerical_loss_gradient(loss, prediction, target, eps=1e-6):
    grad = np.zeros_like(prediction)
    flat = prediction.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = loss.forward(prediction, target)
        flat[i] = original - eps
        minus = loss.forward(prediction, target)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestBinaryCrossEntropy:
    def test_perfect_logits_give_small_loss(self):
        loss = BinaryCrossEntropy()
        value = loss.forward(np.asarray([[20.0], [-20.0]]), np.asarray([[1.0], [0.0]]))
        assert value < 1e-6

    def test_wrong_logits_give_large_loss(self):
        loss = BinaryCrossEntropy()
        assert loss.forward(np.asarray([[-20.0]]), np.asarray([[1.0]])) > 10

    def test_gradient_matches_numerical_logits(self, rng):
        loss = BinaryCrossEntropy(from_logits=True)
        prediction = rng.normal(size=(5, 2))
        target = rng.integers(0, 2, size=(5, 2)).astype(float)
        loss.forward(prediction, target)
        np.testing.assert_allclose(
            loss.backward(), numerical_loss_gradient(loss, prediction, target), atol=1e-5
        )

    def test_gradient_matches_numerical_probabilities(self, rng):
        loss = BinaryCrossEntropy(from_logits=False)
        prediction = rng.uniform(0.1, 0.9, size=(4, 3))
        target = rng.integers(0, 2, size=(4, 3)).astype(float)
        loss.forward(prediction, target)
        np.testing.assert_allclose(
            loss.backward(), numerical_loss_gradient(loss, prediction, target), atol=1e-4
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BinaryCrossEntropy().forward(np.zeros((2, 1)), np.zeros((3, 1)))

    def test_extreme_logits_do_not_overflow(self):
        loss = BinaryCrossEntropy()
        value = loss.forward(np.asarray([[1000.0], [-1000.0]]), np.asarray([[0.0], [1.0]]))
        assert np.isfinite(value)


class TestCrossEntropy:
    def test_integer_and_one_hot_targets_agree(self, rng):
        loss = CrossEntropy()
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        one_hot = np.zeros((6, 4))
        one_hot[np.arange(6), labels] = 1.0
        assert loss.forward(logits, labels) == pytest.approx(loss.forward(logits, one_hot))

    def test_perfect_prediction_low_loss(self):
        logits = np.asarray([[10.0, -10.0], [-10.0, 10.0]])
        assert CrossEntropy().forward(logits, np.asarray([0, 1])) < 1e-6

    def test_gradient_matches_numerical(self, rng):
        loss = CrossEntropy()
        logits = rng.normal(size=(4, 3))
        labels = rng.integers(0, 3, size=4)
        loss.forward(logits, labels)
        np.testing.assert_allclose(
            loss.backward(), numerical_loss_gradient(loss, logits, labels), atol=1e-5
        )

    def test_rejects_1d_logits(self):
        with pytest.raises(ValueError):
            CrossEntropy().forward(np.zeros(3), np.zeros(3))


class TestMeanSquaredError:
    def test_zero_for_identical(self, rng):
        x = rng.normal(size=(3, 3))
        assert MeanSquaredError().forward(x, x.copy()) == 0.0

    def test_gradient_matches_numerical(self, rng):
        loss = MeanSquaredError()
        prediction = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        loss.forward(prediction, target)
        np.testing.assert_allclose(
            loss.backward(), numerical_loss_gradient(loss, prediction, target), atol=1e-6
        )


class TestGANLosses:
    def test_wasserstein_sign_convention(self):
        loss = WassersteinLoss()
        score = np.asarray([[2.0]])
        assert loss.forward(score, np.asarray([[1.0]])) == -2.0
        assert loss.forward(score, np.asarray([[-1.0]])) == 2.0

    def test_wasserstein_gradient(self, rng):
        loss = WassersteinLoss()
        prediction = rng.normal(size=(4, 1))
        target = np.ones((4, 1))
        loss.forward(prediction, target)
        np.testing.assert_allclose(loss.backward(), -np.ones((4, 1)) / 4)

    def test_hinge_zero_when_margin_satisfied(self):
        loss = HingeGANLoss()
        assert loss.forward(np.asarray([[2.0]]), np.asarray([[1.0]])) == 0.0

    def test_hinge_gradient_matches_numerical(self, rng):
        loss = HingeGANLoss()
        prediction = rng.normal(size=(5, 1))
        target = np.where(rng.uniform(size=(5, 1)) < 0.5, 1.0, -1.0)
        loss.forward(prediction, target)
        np.testing.assert_allclose(
            loss.backward(), numerical_loss_gradient(loss, prediction, target), atol=1e-5
        )


class TestGaussianKL:
    def test_standard_normal_has_zero_kl(self):
        loss = GaussianKLDivergence()
        mu_logvar = np.zeros((4, 6))
        assert loss.forward(mu_logvar) == pytest.approx(0.0)

    def test_positive_for_shifted_distribution(self):
        loss = GaussianKLDivergence()
        mu = np.ones((3, 2))
        log_var = np.zeros((3, 2))
        assert loss.forward(np.concatenate([mu, log_var], axis=1)) > 0

    def test_gradient_matches_numerical(self, rng):
        loss = GaussianKLDivergence()
        prediction = rng.normal(size=(3, 4)) * 0.5
        loss.forward(prediction)

        def wrapped_forward(p, _t):
            return loss.forward(p)

        class _Wrapper:
            def forward(self, p, t):
                return loss.forward(p)

        np.testing.assert_allclose(
            loss.backward(),
            numerical_loss_gradient(_Wrapper(), prediction, None),
            atol=1e-5,
        )

    def test_odd_width_rejected(self):
        with pytest.raises(ValueError):
            GaussianKLDivergence().forward(np.zeros((2, 3)))
