"""Optimizer behaviour tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural.optimizers import SGD, Adam, RMSprop


def _quadratic_problem():
    """Minimise ||w - 3||^2 starting from zero."""
    w = np.zeros(4)
    grad = np.zeros(4)
    target = np.full(4, 3.0)

    def compute_grad():
        grad[...] = 2 * (w - target)

    return w, grad, target, compute_grad


@pytest.mark.parametrize(
    "factory",
    [
        lambda params: SGD(params, lr=0.05),
        lambda params: SGD(params, lr=0.05, momentum=0.9),
        lambda params: RMSprop(params, lr=0.05),
        lambda params: Adam(params, lr=0.2),
    ],
    ids=["sgd", "sgd_momentum", "rmsprop", "adam"],
)
def test_optimizers_converge_on_quadratic(factory):
    w, grad, target, compute_grad = _quadratic_problem()
    optimizer = factory([(w, grad)])
    for _ in range(300):
        compute_grad()
        optimizer.step()
    np.testing.assert_allclose(w, target, atol=0.05)


def test_sgd_step_is_plain_gradient_descent():
    w = np.asarray([1.0])
    grad = np.asarray([2.0])
    SGD([(w, grad)], lr=0.1).step()
    np.testing.assert_allclose(w, [0.8])


def test_weight_decay_pulls_towards_zero():
    w = np.asarray([10.0])
    grad = np.asarray([0.0])
    optimizer = SGD([(w, grad)], lr=0.1, weight_decay=0.5)
    for _ in range(50):
        optimizer.step()
    assert abs(w[0]) < 1.0


def test_zero_grad_clears_buffers():
    w = np.asarray([1.0])
    grad = np.asarray([5.0])
    optimizer = Adam([(w, grad)], lr=0.1)
    optimizer.zero_grad()
    np.testing.assert_allclose(grad, [0.0])


def test_adam_bias_correction_first_step():
    w = np.asarray([0.0])
    grad = np.asarray([1.0])
    Adam([(w, grad)], lr=0.1).step()
    # With bias correction the first step is ~lr regardless of beta values.
    np.testing.assert_allclose(w, [-0.1], atol=1e-6)


def test_invalid_learning_rate_rejected():
    with pytest.raises(ValueError):
        SGD([(np.zeros(1), np.zeros(1))], lr=0.0)


def test_mismatched_shapes_rejected():
    with pytest.raises(ValueError):
        SGD([(np.zeros(2), np.zeros(3))], lr=0.1)


def test_invalid_momentum_rejected():
    with pytest.raises(ValueError):
        SGD([(np.zeros(1), np.zeros(1))], lr=0.1, momentum=1.5)


def test_invalid_betas_rejected():
    with pytest.raises(ValueError):
        Adam([(np.zeros(1), np.zeros(1))], lr=0.1, betas=(1.2, 0.9))


@pytest.mark.parametrize(
    "factory",
    [
        lambda params: SGD(params, lr=0.05, momentum=0.9),
        lambda params: RMSprop(params, lr=0.05),
        lambda params: Adam(params, lr=0.2, betas=(0.5, 0.9)),
    ],
    ids=["sgd-momentum", "rmsprop", "adam"],
)
def test_state_dict_round_trip_resumes_bit_identically(factory):
    """An optimizer restored from state_dict continues exactly where it was.

    This is the invariant the federated runtime's delta round-trips rely
    on: shipping (weights, optimizer state) to another process and back
    must not change the trajectory.
    """
    w, grad, _target, compute_grad = _quadratic_problem()
    optimizer = factory([(w, grad)])
    for _ in range(3):
        compute_grad()
        optimizer.step()
    snapshot_w = w.copy()
    state = optimizer.state_dict()

    # Reference: three more steps without interruption.
    for _ in range(3):
        compute_grad()
        optimizer.step()
    expected = w.copy()

    # Resume: fresh optimizer bound to a reset copy of the weights.
    w[...] = snapshot_w
    resumed = factory([(w, grad)])
    resumed.load_state_dict(state)
    for _ in range(3):
        compute_grad()
        resumed.step()
    assert np.array_equal(w, expected)


def test_state_dict_is_a_copy_not_a_view():
    w, grad, _target, compute_grad = _quadratic_problem()
    optimizer = Adam([(w, grad)], lr=0.1)
    compute_grad()
    optimizer.step()
    state = optimizer.state_dict()
    frozen = state["m"][0].copy()
    compute_grad()
    optimizer.step()
    assert np.array_equal(state["m"][0], frozen)


def test_load_state_dict_validates_keys_and_lengths():
    optimizer = Adam([(np.zeros(2), np.zeros(2))], lr=0.1)
    with pytest.raises(KeyError):
        optimizer.load_state_dict({"m": [np.zeros(2)], "v": [np.zeros(2)]})
    with pytest.raises(ValueError):
        optimizer.load_state_dict({"m": [], "v": [], "t": 1})


@pytest.mark.parametrize(
    "factory, key",
    [
        (lambda params: SGD(params, lr=0.1, momentum=0.9), "velocity"),
        (lambda params: RMSprop(params, lr=0.1), "square_avg"),
    ],
    ids=["sgd", "rmsprop"],
)
def test_sgd_rmsprop_state_errors(factory, key):
    optimizer = factory([(np.zeros(2), np.zeros(2))])
    with pytest.raises(KeyError):
        optimizer.load_state_dict({})
    with pytest.raises(ValueError):
        optimizer.load_state_dict({key: [np.zeros(2), np.zeros(2)]})  # too many
    with pytest.raises(ValueError):
        optimizer.load_state_dict({key: []})  # too few
    with pytest.raises(ValueError):
        optimizer.load_state_dict({key: [np.zeros(3)]})  # wrong shape


def test_adam_requires_step_counter():
    optimizer = Adam([(np.zeros(2), np.zeros(2))], lr=0.1)
    with pytest.raises(KeyError):
        optimizer.load_state_dict({"m": [np.zeros(2)], "v": [np.zeros(2)]})


def test_state_dict_snapshots_are_independent_of_optimizer_storage():
    """Mutating a snapshot must not leak into the (possibly flat) buffers."""
    w, grad = np.zeros(3), np.ones(3)
    optimizer = RMSprop([(w, grad)], lr=0.1)
    optimizer.step()
    state = optimizer.state_dict()
    state["square_avg"][0][...] = 123.0
    assert not np.array_equal(optimizer._state_buffers()["square_avg"][0], state["square_avg"][0])
