"""The neural tier's dtype contract (``docs/precision.md``).

Float64 is the default and must stay bit-for-bit what it always was; a
float32 network keeps *everything* -- parameters, grads, optimizer
moments, workspace buffers, layer caches -- in float32, initialises as
the float64 draw rounded exactly once, and trains deterministically
under a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural.layers import BatchNorm, Dense, Dropout, LeakyReLU, ReLU
from repro.neural.losses import BinaryCrossEntropy, CrossEntropy
from repro.neural.network import Sequential
from repro.neural.optimizers import Adam


def _make_network(seed: int, dtype, consolidate: bool = True) -> Sequential:
    rng = np.random.default_rng(seed)
    network = Sequential(
        [
            Dense(6, 8, rng=rng, init="he", dtype=dtype),
            BatchNorm(8, dtype=dtype),
            LeakyReLU(0.2),
            Dropout(0.25, rng=np.random.default_rng(seed + 1)),
            Dense(8, 1, rng=rng, init="glorot", dtype=dtype),
        ]
    )
    if consolidate:
        network.consolidate()
    return network


def _train(network: Sequential, seed: int, steps: int = 5) -> np.ndarray:
    dtype = network.dtype
    data_rng = np.random.default_rng(seed + 100)
    optimizer = Adam(network.parameters(), lr=0.01)
    loss = BinaryCrossEntropy()
    for _ in range(steps):
        x = data_rng.normal(size=(32, 6)).astype(dtype)
        y = (data_rng.random(size=(32, 1)) > 0.5).astype(dtype)
        out = network.forward(x, training=True)
        loss.forward(out, y)
        network.zero_grad()
        network.backward(loss.backward())
        optimizer.step()
    return np.concatenate([p.ravel().copy() for p, _ in network.parameters()])


class TestDtypePlumbing:
    def test_default_is_float64(self):
        network = _make_network(0, np.float64)
        assert np.dtype(network.dtype) == np.float64
        for param, grad in network.parameters():
            assert param.dtype == np.float64
            assert grad.dtype == np.float64

    def test_float32_network_holds_float32_everywhere(self):
        network = _make_network(0, np.float32)
        assert np.dtype(network.dtype) == np.float32
        for param, grad in network.parameters():
            assert param.dtype == np.float32
            assert grad.dtype == np.float32
        x = np.random.default_rng(1).normal(size=(16, 6)).astype(np.float32)
        out = network.forward(x, training=True)
        assert out.dtype == np.float32
        network.zero_grad()
        grad_in = network.backward(np.ones_like(out) / 16)
        assert grad_in.dtype == np.float32

    def test_state_dict_carries_dtype(self):
        state = _make_network(0, np.float32).state_dict()
        assert {value.dtype for value in state.values()} == {np.dtype(np.float32)}

    def test_initialisation_is_float64_rounded_once(self):
        f64 = _make_network(0, np.float64)
        f32 = _make_network(0, np.float32)
        for (p64, _), (p32, _) in zip(f64.parameters(), f32.parameters()):
            assert np.array_equal(p64.astype(np.float32), p32)

    def test_adam_moments_match_parameter_dtype(self):
        network = _make_network(0, np.float32)
        optimizer = Adam(network.parameters(), lr=0.01)
        x = np.random.default_rng(2).normal(size=(8, 6)).astype(np.float32)
        network.forward(x, training=True)
        network.zero_grad()
        network.backward(np.ones((8, 1), dtype=np.float32) / 8)
        optimizer.step()
        for param, _ in network.parameters():
            assert param.dtype == np.float32


class TestDtypeDeterminism:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_seeded_training_is_bit_identical(self, dtype):
        first = _train(_make_network(3, dtype), seed=3)
        second = _train(_make_network(3, dtype), seed=3)
        assert first.dtype == np.dtype(dtype)
        assert np.array_equal(first, second)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_consolidated_matches_unconsolidated(self, dtype):
        arena = _train(_make_network(4, dtype, consolidate=True), seed=4)
        loose = _train(_make_network(4, dtype, consolidate=False), seed=4)
        assert np.array_equal(arena, loose)

    def test_float32_stays_close_to_float64(self):
        """Not bit-identical across dtypes -- but the same trajectory.

        Measured on a dropout-free stack: Dropout's per-dtype uniform
        stream draws *different masks* (documented in docs/precision.md),
        which legitimately forks the trajectory, whereas here the only
        divergence left is float32 rounding.
        """

        def stochastic_free(seed: int, dtype) -> Sequential:
            rng = np.random.default_rng(seed)
            network = Sequential(
                [
                    Dense(6, 8, rng=rng, init="he", dtype=dtype),
                    LeakyReLU(0.2),
                    Dense(8, 1, rng=rng, init="glorot", dtype=dtype),
                ]
            )
            network.consolidate()
            return network

        f64 = _train(stochastic_free(5, np.float64), seed=5)
        f32 = _train(stochastic_free(5, np.float32), seed=5)
        assert not np.array_equal(f64.astype(np.float32), f32)  # rounding differs
        np.testing.assert_allclose(f64, f32, rtol=2e-2, atol=2e-2)


class TestLossDtype:
    def test_cross_entropy_grad_matches_logits_dtype(self):
        loss = CrossEntropy()
        logits = np.random.default_rng(0).normal(size=(8, 3)).astype(np.float32)
        loss.forward(logits, np.arange(8) % 3)
        assert loss.backward().dtype == np.float32

    def test_cross_entropy_float64_unchanged(self):
        loss = CrossEntropy()
        logits = np.random.default_rng(0).normal(size=(8, 3))
        loss.forward(logits, np.arange(8) % 3)
        assert loss.backward().dtype == np.float64

    def test_bce_grad_matches_prediction_dtype(self):
        loss = BinaryCrossEntropy()
        scores = np.random.default_rng(0).normal(size=(8, 1)).astype(np.float32)
        loss.forward(scores, np.ones((8, 1), dtype=np.float32))
        assert loss.backward().dtype == np.float32


class TestMixedInputs:
    def test_bare_sequential_rejects_mismatched_input(self):
        """Only model wrappers cast at the boundary; the bare engine does
        not silently convert (a silent upcast would hide the perf bug)."""
        network = Sequential(
            [Dense(4, 4, rng=np.random.default_rng(0), dtype=np.float32), ReLU()]
        )
        network.consolidate()
        x64 = np.random.default_rng(1).normal(size=(4, 4))
        with pytest.raises((TypeError, ValueError)):
            network.forward(x64, training=True)
