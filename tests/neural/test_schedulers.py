"""Tests for the learning-rate schedulers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neural.optimizers import SGD
from repro.neural.schedulers import CosineAnnealing, ExponentialDecay, LinearWarmup, StepDecay


def make_optimizer(lr: float = 0.1) -> SGD:
    param = np.zeros(3)
    grad = np.zeros(3)
    return SGD([(param, grad)], lr=lr)


class TestStepDecay:
    def test_rate_halves_at_each_boundary(self):
        optimizer = make_optimizer(0.1)
        scheduler = StepDecay(optimizer, step_size=2, gamma=0.5)
        rates = [scheduler.step() for _ in range(6)]
        assert rates[0] == pytest.approx(0.1)   # step 1
        assert rates[1] == pytest.approx(0.05)  # step 2 -> one decay
        assert rates[3] == pytest.approx(0.025)
        assert rates[5] == pytest.approx(0.0125)
        assert optimizer.lr == pytest.approx(rates[-1])

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecay(make_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepDecay(make_optimizer(), gamma=0.0)


class TestExponentialDecay:
    def test_geometric_sequence(self):
        scheduler = ExponentialDecay(make_optimizer(1.0), gamma=0.9)
        rates = [scheduler.step() for _ in range(3)]
        np.testing.assert_allclose(rates, [0.9, 0.81, 0.729])

    def test_gamma_one_keeps_rate_constant(self):
        scheduler = ExponentialDecay(make_optimizer(0.05), gamma=1.0)
        for _ in range(5):
            assert scheduler.step() == pytest.approx(0.05)


class TestCosineAnnealing:
    def test_decays_monotonically_to_min_lr(self):
        optimizer = make_optimizer(0.2)
        scheduler = CosineAnnealing(optimizer, total_steps=10, min_lr=1e-4)
        rates = [scheduler.step() for _ in range(10)]
        assert all(earlier >= later for earlier, later in zip(rates, rates[1:]))
        assert rates[-1] == pytest.approx(1e-4, rel=1e-6)

    def test_rate_stays_at_floor_after_schedule_ends(self):
        scheduler = CosineAnnealing(make_optimizer(0.2), total_steps=4, min_lr=1e-3)
        for _ in range(8):
            rate = scheduler.step()
        assert rate == pytest.approx(1e-3, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealing(make_optimizer(), total_steps=0)
        with pytest.raises(ValueError):
            CosineAnnealing(make_optimizer(0.01), total_steps=5, min_lr=0.1)


class TestLinearWarmup:
    def test_ramps_from_factor_to_full_rate(self):
        scheduler = LinearWarmup(make_optimizer(0.1), warmup_steps=5, warmup_factor=0.1)
        rates = [scheduler.step() for _ in range(5)]
        assert rates[0] < rates[-1]
        assert rates[-1] == pytest.approx(0.1)

    def test_holds_rate_after_warmup_without_inner_schedule(self):
        scheduler = LinearWarmup(make_optimizer(0.1), warmup_steps=3)
        for _ in range(6):
            rate = scheduler.step()
        assert rate == pytest.approx(0.1)

    def test_delegates_to_inner_schedule_after_warmup(self):
        optimizer = make_optimizer(0.1)
        inner = ExponentialDecay(optimizer, gamma=0.5)
        scheduler = LinearWarmup(optimizer, warmup_steps=2, warmup_factor=0.5, after=inner)
        rates = [scheduler.step() for _ in range(4)]
        assert rates[1] == pytest.approx(0.1)   # end of warm-up
        assert rates[2] == pytest.approx(0.05)  # first decayed step
        assert rates[3] == pytest.approx(0.025)

    def test_inner_scheduler_must_share_the_optimizer(self):
        with pytest.raises(ValueError):
            LinearWarmup(make_optimizer(), after=ExponentialDecay(make_optimizer()))


@given(
    lr=st.floats(min_value=1e-4, max_value=1.0),
    gamma=st.floats(min_value=0.5, max_value=1.0),
    steps=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_rates_remain_positive_and_bounded_by_initial(lr, gamma, steps):
    """Property: decaying schedulers never exceed the initial rate or reach zero."""
    scheduler = ExponentialDecay(make_optimizer(lr), gamma=gamma)
    for _ in range(steps):
        rate = scheduler.step()
        assert 0.0 < rate <= lr + 1e-12
