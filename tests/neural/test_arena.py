"""Arena / workspace fast-path tests.

The contract under test: consolidating a network (``Sequential.consolidate``)
must change *nothing* about its numerics -- seeded fits stay bit-identical to
the per-tensor path -- while removing the per-step allocation churn and
enabling the fused optimizer kernels.
"""

from __future__ import annotations

import pickle
import tracemalloc

import numpy as np
import pytest

from repro.neural.arena import ParamArena, disable_consolidation, find_arena
from repro.neural.layers import BatchNorm, Dense, Layer, LeakyReLU, ReLU, Residual, Tanh
from repro.neural.losses import BinaryCrossEntropy
from repro.neural.network import Sequential
from repro.neural.optimizers import SGD, Adam, RMSprop


def _make_network(seed: int = 0, consolidate: bool = True) -> Sequential:
    rng = np.random.default_rng(seed)
    network = Sequential(
        [
            Dense(6, 16, rng=rng, init="he"),
            BatchNorm(16),
            ReLU(),
            Residual([Dense(16, 8, rng=rng, init="he"), LeakyReLU(0.2)]),
            Dense(24, 4, rng=rng, init="glorot"),
            Tanh(),
            Dense(4, 1, rng=rng, init="glorot"),
        ]
    )
    if consolidate:
        network.consolidate()
    return network


def _inject_grads(network: Sequential, seed: int) -> None:
    rng = np.random.default_rng(seed)
    for _param, grad in network.parameters():
        grad[...] = rng.normal(size=grad.shape)


# --------------------------------------------------------------------------- #
# Arena construction invariants
# --------------------------------------------------------------------------- #
class TestConsolidation:
    def test_rebinds_params_as_views_preserving_values(self):
        reference = _make_network(seed=3, consolidate=False)
        expected = {key: value.copy() for key, value in reference.state_dict().items()}
        arena = reference.consolidate()
        assert arena is not None
        state = reference.state_dict()
        assert sorted(state) == list(arena.spans)
        for key, value in state.items():
            assert np.array_equal(value, expected[key])
            root = value
            while isinstance(root.base, np.ndarray):
                root = root.base
            assert root is arena.data

    def test_spans_follow_codec_sorted_key_order(self):
        network = _make_network(seed=1)
        arena = network.arena
        cursor = 0
        for key in sorted(network.state_dict()):
            start, end, shape, _trainable = arena.spans[key]
            assert start == cursor
            assert end - start == int(np.prod(shape))
            cursor = end
        assert cursor == arena.size

    def test_batchnorm_buffers_make_gaps(self):
        network = _make_network(seed=1)
        arena = network.arena
        assert not arena.exact_cover  # running_mean / running_var spans
        dense_only = Sequential([Dense(4, 3), ReLU(), Dense(3, 2)])
        assert dense_only.consolidate().exact_cover

    def test_zero_grad_single_fill(self):
        network = _make_network(seed=2)
        _inject_grads(network, seed=5)
        network.zero_grad()
        assert not network.arena.grads.any()

    def test_consolidate_is_idempotent(self):
        network = _make_network(seed=4)
        arena = network.arena
        assert network.consolidate() is arena

    def test_find_arena_requires_exact_pair_identity(self):
        network = _make_network(seed=6)
        pairs = network.parameters()
        assert find_arena(pairs) is network.arena
        assert find_arena(pairs[:-1]) is None
        other = _make_network(seed=7)
        assert find_arena(pairs + other.parameters()) is None
        assert find_arena([(p.copy(), g.copy()) for p, g in pairs]) is None

    def test_disable_consolidation_keeps_per_tensor_storage(self):
        with disable_consolidation():
            network = _make_network(seed=8)
        assert network.arena is None and network.workspace is None

    def test_opted_out_layer_disables_arena_but_not_workspace(self):
        class Opaque(Layer):
            def __init__(self):
                self.weight = np.zeros((2, 2))
                self.grad_weight = np.zeros((2, 2))

            def forward(self, x, training=True):
                return x

            def backward(self, grad_output):
                return grad_output

            @property
            def params(self):
                return [self.weight]

            @property
            def grads(self):
                return [self.grad_weight]

            def state_dict(self):
                return {"weight": self.weight}

            # No arena_entries override: the base implementation opts any
            # undescribed stateful layer out.

        network = Sequential([Dense(3, 2), Opaque()])
        assert network.consolidate() is None
        assert network.arena is None
        assert network.workspace is not None  # buffer reuse still applies

    def test_load_state_dict_keeps_arena_intact(self):
        network = _make_network(seed=9)
        arena = network.arena
        replacement = {
            key: np.full(value.shape, 0.5) for key, value in network.state_dict().items()
        }
        network.load_state_dict(replacement)
        assert arena.intact
        for key, value in network.state_dict().items():
            assert np.array_equal(value, replacement[key])

    def test_pickle_detaches_views_and_falls_back(self):
        network = _make_network(seed=10)
        clone = pickle.loads(pickle.dumps(network))
        assert clone.arena is not None and not clone.arena.intact
        for key, value in network.state_dict().items():
            assert np.array_equal(clone.state_dict()[key], value)
        # The detached network still trains on the per-tensor path.
        optimizer = Adam(clone.parameters(), lr=0.01)
        _inject_grads(clone, seed=11)
        optimizer.step()
        assert not np.array_equal(
            clone.state_dict()["layers.0.weight"], network.state_dict()["layers.0.weight"]
        )


# --------------------------------------------------------------------------- #
# Fused optimizer kernels vs the per-tensor reference
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "factory",
    [
        lambda params: SGD(params, lr=0.05),
        lambda params: SGD(params, lr=0.05, momentum=0.9),
        lambda params: SGD(params, lr=0.05, momentum=0.9, weight_decay=0.01),
        lambda params: RMSprop(params, lr=0.01),
        lambda params: Adam(params, lr=0.01, betas=(0.5, 0.9)),
        lambda params: Adam(params, lr=0.01, weight_decay=0.01),
    ],
    ids=["sgd", "sgd-momentum", "sgd-wd", "rmsprop", "adam", "adam-wd"],
)
def test_fused_step_bit_identical_to_per_tensor(factory):
    fused_net = _make_network(seed=21, consolidate=True)
    with disable_consolidation():
        plain_net = _make_network(seed=21, consolidate=False)
    fused_opt = factory(fused_net.parameters())
    plain_opt = factory(plain_net.parameters())
    for step in range(5):
        _inject_grads(fused_net, seed=100 + step)
        _inject_grads(plain_net, seed=100 + step)
        fused_opt.step()
        plain_opt.step()
        for (fp, _), (pp, _) in zip(fused_net.parameters(), plain_net.parameters()):
            assert np.array_equal(fp, pp)
        fused_opt.zero_grad()
        plain_opt.zero_grad()
    # The fused run must actually have taken the arena binding.
    assert fused_opt._arena is fused_net.arena


def test_fused_adam_leaves_batchnorm_buffers_bitwise_unchanged():
    network = _make_network(seed=22)
    bn = network.layers[1]
    bn.running_mean[...] = np.linspace(-1.0, 1.0, bn.num_features)
    bn.running_var[...] = np.linspace(0.5, 2.0, bn.num_features)
    frozen_mean, frozen_var = bn.running_mean.copy(), bn.running_var.copy()
    optimizer = Adam(network.parameters(), lr=0.1)
    for step in range(3):
        _inject_grads(network, seed=200 + step)
        optimizer.step()
    assert np.array_equal(bn.running_mean, frozen_mean)
    assert np.array_equal(bn.running_var, frozen_var)


def test_optimizer_state_dict_round_trip_on_arena_path():
    """Flat moment buffers must still round-trip positionally."""
    network = _make_network(seed=23)
    optimizer = Adam(network.parameters(), lr=0.01)
    _inject_grads(network, seed=24)
    optimizer.step()
    state = optimizer.state_dict()
    twin = _make_network(seed=23)
    twin_opt = Adam(twin.parameters(), lr=0.01)
    twin_opt.load_state_dict(state)
    for mine, theirs in zip(optimizer._m, twin_opt._m):
        assert np.array_equal(mine, theirs)
    assert twin_opt._t == optimizer._t


# --------------------------------------------------------------------------- #
# Workspace semantics
# --------------------------------------------------------------------------- #
class TestWorkspace:
    def test_forward_output_does_not_alias_scratch(self):
        """Outputs escape the step: a later forward must not clobber them.

        Regression test for the white-box membership-inference scorer, where
        scoring members and then non-members through the same discriminator
        produced two references to one recycled buffer (collapsing attack
        accuracy to exactly 0.5).
        """
        network = _make_network(seed=30)
        x1 = np.random.default_rng(0).normal(size=(32, 6))
        x2 = np.random.default_rng(1).normal(size=(32, 6))
        out1 = network.forward(x1, training=False)
        frozen = out1.copy()
        out2 = network.forward(x2, training=False)
        assert np.array_equal(out1, frozen)
        assert not np.shares_memory(out1, out2)
        assert not network.workspace.owns(out1)

    def test_forward_backward_bit_identical_to_plain_path(self):
        fused_net = _make_network(seed=31)
        with disable_consolidation():
            plain_net = _make_network(seed=31, consolidate=False)
        loss_fused = BinaryCrossEntropy(from_logits=True)
        loss_plain = BinaryCrossEntropy(from_logits=True)
        rng = np.random.default_rng(32)
        for step in range(4):
            x = rng.normal(size=(48, 6))
            target = (rng.uniform(size=(48, 1)) < 0.5).astype(np.float64)
            out_f = fused_net.forward(x, training=True)
            out_p = plain_net.forward(x, training=True)
            assert np.array_equal(out_f, out_p)
            lf = loss_fused.forward(out_f, target)
            lp = loss_plain.forward(out_p, target)
            assert lf == lp
            gf = fused_net.backward(loss_fused.backward())
            gp = plain_net.backward(loss_plain.backward())
            assert np.array_equal(gf, gp)
            for (_, fg), (_, pg) in zip(fused_net.parameters(), plain_net.parameters()):
                assert np.array_equal(fg, pg)
            fused_net.zero_grad()
            plain_net.zero_grad()

    def test_backward_releases_cached_activations(self):
        network = _make_network(seed=33)
        x = np.random.default_rng(34).normal(size=(16, 6))
        out = network.forward(x, training=True)
        network.backward(np.ones_like(out))
        for layer in network.layers:
            assert getattr(layer, "_cache_input", None) is None
            assert getattr(layer, "_mask", None) is None
            assert getattr(layer, "_out", None) is None
            assert getattr(layer, "_cache", None) is None

    def test_workspace_pickles_empty(self):
        network = _make_network(seed=35)
        network.forward(np.zeros((8, 6)), training=False)
        assert network.workspace.nbytes() > 0
        clone = pickle.loads(pickle.dumps(network))
        assert clone.workspace.nbytes() == 0


# --------------------------------------------------------------------------- #
# Allocation regression: the steady-state step must not churn
# --------------------------------------------------------------------------- #
def _measure_step_peak(network: Sequential, optimizer, loss, x, target) -> int:
    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    out = network.forward(x, training=True)
    loss.forward(out, target)
    network.backward(loss.backward())
    optimizer.step()
    optimizer.zero_grad()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak - baseline


def test_steady_state_step_allocations_drop_by_an_order_of_magnitude():
    """At training-realistic sizes the arena step stops allocating.

    The remaining transients are numpy's internal broadcast-ufunc buffers
    (capped at the ~64 KiB iterator buffer regardless of batch size) plus
    the owned copy of the (batch, 1) output logits, so the peak must sit at
    least an order of magnitude under the per-tensor path's full-batch
    allocations -- and stay flat as the batch grows.
    """
    batch = 1024

    def build() -> Sequential:
        rng = np.random.default_rng(40)
        return Sequential(
            [
                Dense(32, 128, rng=rng, init="he"),
                BatchNorm(128),
                ReLU(),
                Dense(128, 128, rng=rng, init="he"),
                Tanh(),
                Dense(128, 1, rng=rng, init="glorot"),
            ]
        )

    def run(consolidate: bool) -> int:
        if consolidate:
            network = build()
            network.consolidate()
        else:
            with disable_consolidation():
                network = build()
        optimizer = Adam(network.parameters(), lr=0.01)
        loss = BinaryCrossEntropy(from_logits=True)
        rng = np.random.default_rng(41)
        x = rng.normal(size=(batch, 32))
        target = (rng.uniform(size=(batch, 1)) < 0.5).astype(np.float64)
        for _ in range(3):  # warm the workspace / scratch buffers
            out = network.forward(x, training=True)
            loss.forward(out, target)
            network.backward(loss.backward())
            optimizer.step()
            optimizer.zero_grad()
        return _measure_step_peak(network, optimizer, loss, x, target)

    peak_plain = run(consolidate=False)
    peak_arena = run(consolidate=True)
    assert peak_arena * 10 <= peak_plain
    assert peak_arena < 256 * 1024
