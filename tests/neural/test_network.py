"""Sequential container tests: training, serialisation, parameter plumbing."""

from __future__ import annotations

import numpy as np

from repro.neural.layers import Dense, ReLU, Tanh
from repro.neural.losses import BinaryCrossEntropy, MeanSquaredError
from repro.neural.network import Sequential
from repro.neural.optimizers import Adam


def _make_network(rng, widths=(8,)):
    layers = []
    in_dim = 2
    for width in widths:
        layers.append(Dense(in_dim, width, rng=rng))
        layers.append(ReLU())
        in_dim = width
    layers.append(Dense(in_dim, 1, rng=rng))
    return Sequential(layers)


def test_forward_shape(rng):
    net = _make_network(rng)
    assert net(rng.normal(size=(5, 2))).shape == (5, 1)


def test_parameters_are_live_references(rng):
    net = _make_network(rng)
    params = net.parameters()
    params[0][0][...] = 7.0
    assert np.all(net.layers[0].weight == 7.0)


def test_num_parameters_counts_all(rng):
    net = Sequential([Dense(3, 4, rng=rng), Dense(4, 2, rng=rng)])
    assert net.num_parameters() == (3 * 4 + 4) + (4 * 2 + 2)


def test_training_learns_xor_like_function(rng):
    net = Sequential([Dense(2, 16, rng=rng), Tanh(), Dense(16, 1, rng=rng)])
    optimizer = Adam(net.parameters(), lr=0.02)
    loss = BinaryCrossEntropy()
    X = rng.uniform(-1, 1, size=(256, 2))
    y = ((X[:, 0] * X[:, 1]) > 0).astype(float)[:, None]
    for _ in range(400):
        logits = net(X)
        loss.forward(logits, y)
        net.zero_grad()
        net.backward(loss.backward())
        optimizer.step()
    predictions = (net(X, training=False) > 0).astype(float)
    assert (predictions == y).mean() > 0.9


def test_training_reduces_regression_loss(rng):
    net = _make_network(rng, widths=(16,))
    optimizer = Adam(net.parameters(), lr=0.01)
    loss = MeanSquaredError()
    X = rng.normal(size=(128, 2))
    y = (X[:, :1] * 2 - X[:, 1:] * 0.5)
    initial = loss.forward(net(X), y)
    for _ in range(200):
        prediction = net(X)
        loss.forward(prediction, y)
        net.zero_grad()
        net.backward(loss.backward())
        optimizer.step()
    assert loss.forward(net(X), y) < initial * 0.2


def test_save_and_load_round_trip(tmp_path, rng):
    net = _make_network(rng)
    X = rng.normal(size=(4, 2))
    expected = net(X, training=False)
    path = tmp_path / "weights.npz"
    net.save(path)

    other = _make_network(np.random.default_rng(999))
    assert not np.allclose(other(X, training=False), expected)
    other.load(path)
    np.testing.assert_allclose(other(X, training=False), expected)


def test_state_dict_keys_are_prefixed(rng):
    net = Sequential([Dense(2, 3, rng=rng), ReLU(), Dense(3, 1, rng=rng)])
    keys = set(net.state_dict())
    assert "layers.0.weight" in keys and "layers.2.bias" in keys


def test_summary_mentions_every_layer(rng):
    net = _make_network(rng)
    text = net.summary()
    assert "Dense" in text and "Total parameters" in text


def test_add_chaining(rng):
    net = Sequential().add(Dense(2, 2, rng=rng)).add(ReLU())
    assert len(net.layers) == 2
