"""Initializers, gradient clipping and the ODE block."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neural.clip import add_gaussian_noise, clip_gradient_norm, clip_gradient_value
from repro.neural.initializers import glorot_uniform, he_normal, normal_init, zeros_init
from repro.neural.layers import Dense
from repro.neural.network import Sequential
from repro.neural.ode import ODEBlock
from repro.neural.optimizers import Adam
from repro.neural.losses import MeanSquaredError


class TestInitializers:
    def test_shapes(self, rng):
        assert glorot_uniform(3, 5, rng).shape == (3, 5)
        assert he_normal(3, 5, rng).shape == (3, 5)
        assert normal_init(3, 5, rng).shape == (3, 5)
        assert zeros_init((4,)).shape == (4,)

    def test_glorot_respects_limit(self, rng):
        w = glorot_uniform(10, 10, rng)
        limit = np.sqrt(6.0 / 20)
        assert np.all(np.abs(w) <= limit)

    def test_he_std_scales_with_fan_in(self, rng):
        wide = he_normal(1000, 50, rng).std()
        narrow = he_normal(10, 50, rng).std()
        assert wide < narrow

    def test_invalid_fan_rejected(self, rng):
        with pytest.raises(ValueError):
            glorot_uniform(0, 3, rng)

    def test_reproducible_with_same_seed(self):
        a = glorot_uniform(4, 4, np.random.default_rng(5))
        b = glorot_uniform(4, 4, np.random.default_rng(5))
        np.testing.assert_allclose(a, b)


class TestClip:
    def test_norm_clipping_scales_down(self):
        grad = np.full(4, 10.0)
        norm = clip_gradient_norm([(np.zeros(4), grad)], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(grad) == pytest.approx(1.0)

    def test_norm_clipping_no_op_when_small(self):
        grad = np.full(4, 0.01)
        clip_gradient_norm([(np.zeros(4), grad)], max_norm=1.0)
        np.testing.assert_allclose(grad, 0.01)

    def test_value_clipping(self):
        grad = np.asarray([-5.0, 0.2, 5.0])
        clip_gradient_value([(np.zeros(3), grad)], clip_value=1.0)
        np.testing.assert_allclose(grad, [-1.0, 0.2, 1.0])

    def test_gaussian_noise_changes_gradients(self, rng):
        grad = np.zeros(100)
        add_gaussian_noise([(np.zeros(100), grad)], noise_multiplier=1.0,
                           sensitivity=1.0, rng=rng)
        assert grad.std() > 0.5

    def test_zero_noise_is_no_op(self, rng):
        grad = np.ones(5)
        add_gaussian_noise([(np.ones(5), grad)], noise_multiplier=0.0,
                           sensitivity=1.0, rng=rng)
        np.testing.assert_allclose(grad, 1.0)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            clip_gradient_norm([], max_norm=0.0)
        with pytest.raises(ValueError):
            clip_gradient_value([], clip_value=-1.0)


class TestODEBlock:
    def test_output_shape_preserved(self, rng):
        block = ODEBlock(6, hidden_dim=8, num_steps=3, rng=rng)
        assert block.forward(rng.normal(size=(4, 6))).shape == (4, 6)

    def test_backward_shape(self, rng):
        block = ODEBlock(6, hidden_dim=8, num_steps=3, rng=rng)
        block.forward(rng.normal(size=(4, 6)))
        assert block.backward(np.ones((4, 6))).shape == (4, 6)

    def test_gradient_matches_numerical(self, rng):
        block = ODEBlock(3, hidden_dim=4, num_steps=2, rng=rng)
        x = rng.normal(size=(2, 3))
        grad_out = rng.normal(size=(2, 3))
        block.forward(x)
        grad_in = block.backward(grad_out)

        eps = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                plus = x.copy()
                plus[i, j] += eps
                minus = x.copy()
                minus[i, j] -= eps
                numeric[i, j] = (
                    (block.forward(plus) * grad_out).sum()
                    - (block.forward(minus) * grad_out).sum()
                ) / (2 * eps)
        np.testing.assert_allclose(grad_in, numeric, atol=1e-4)

    def test_trainable_inside_sequential(self, rng):
        net = Sequential([Dense(2, 4, rng=rng), ODEBlock(4, 8, 2, rng=rng), Dense(4, 1, rng=rng)])
        optimizer = Adam(net.parameters(), lr=0.01)
        loss = MeanSquaredError()
        X = rng.normal(size=(64, 2))
        y = X[:, :1] * 0.5
        initial = loss.forward(net(X), y)
        for _ in range(150):
            loss.forward(net(X), y)
            net.zero_grad()
            net.backward(loss.backward())
            optimizer.step()
        assert loss.forward(net(X), y) < initial

    def test_invalid_steps_rejected(self, rng):
        with pytest.raises(ValueError):
            ODEBlock(4, num_steps=0, rng=rng)

    def test_wrong_width_rejected(self, rng):
        block = ODEBlock(4, rng=rng)
        with pytest.raises(ValueError):
            block.forward(rng.normal(size=(2, 5)))
