"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import MODEL_CHOICES, build_parser, main
from repro.datasets import available_datasets


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_choices_match_registry(self):
        parser = build_parser()
        args = parser.parse_args(["generate", "--dataset", "lab_iot"])
        assert args.dataset in available_datasets()
        with pytest.raises(SystemExit):
            parser.parse_args(["generate", "--dataset", "not_a_dataset"])

    def test_model_choices_validated(self):
        parser = build_parser()
        for model in MODEL_CHOICES:
            assert parser.parse_args(["evaluate", "--model", model]).model == model
        with pytest.raises(SystemExit):
            parser.parse_args(["evaluate", "--model", "diffusion"])

    def test_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.model == "kinetgan"
        assert args.epochs > 0
        assert args.output.endswith(".csv")


class TestCommands:
    def test_datasets_lists_every_registered_dataset(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in available_datasets():
            assert name in out

    def test_generate_writes_a_csv(self, tmp_path, capsys):
        output = tmp_path / "synthetic.csv"
        exit_code = main(
            [
                "generate",
                "--dataset",
                "lab_iot",
                "--model",
                "independent",
                "--records",
                "400",
                "--epochs",
                "1",
                "--samples",
                "120",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        assert output.exists()
        lines = output.read_text().strip().splitlines()
        assert len(lines) == 121  # header + 120 rows
        out = capsys.readouterr().out
        assert "EMD distance" in out and "knowledge-graph validity" in out

    def test_evaluate_reports_fidelity_validity_and_utility(self, capsys):
        exit_code = main(
            [
                "evaluate",
                "--dataset",
                "lab_iot",
                "--model",
                "independent",
                "--records",
                "400",
                "--epochs",
                "1",
                "--classifiers",
                "decision_tree",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Fidelity" in out
        assert "validity rate" in out
        assert "INDEPENDENT" in out and "REAL" in out


class TestServingCommands:
    def test_save_sample_serve_round_trip(self, tmp_path, capsys):
        artifact = tmp_path / "artifact"
        assert main(
            [
                "save",
                "--dataset",
                "lab_iot",
                "--model",
                "independent",
                "--records",
                "400",
                "--epochs",
                "1",
                "--artifact-dir",
                str(artifact),
            ]
        ) == 0
        assert (artifact / "manifest.json").exists()
        out = capsys.readouterr().out
        assert "Saved IndependentSampler artifact" in out

        output = tmp_path / "sampled.csv"
        assert main(
            [
                "sample",
                "--artifact",
                str(artifact),
                "--samples",
                "80",
                "--seed",
                "3",
                "--chunk-rows",
                "32",
                "--output",
                str(output),
            ]
        ) == 0
        lines = output.read_text().strip().splitlines()
        assert len(lines) == 81  # header + 80 rows
        assert "Wrote 80 synthetic rows" in capsys.readouterr().out

        assert main(
            [
                "serve",
                "--artifact",
                str(artifact),
                "--requests",
                "4",
                "--request-rows",
                "20",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Served 4 requests / 80 rows" in out

    def test_sample_with_condition_on_conditional_model(self, tmp_path, capsys):
        artifact = tmp_path / "kinetgan"
        assert main(
            [
                "save",
                "--dataset",
                "lab_iot",
                "--model",
                "kinetgan",
                "--records",
                "400",
                "--epochs",
                "1",
                "--artifact-dir",
                str(artifact),
            ]
        ) == 0
        capsys.readouterr()
        output = tmp_path / "attack.csv"
        assert main(
            [
                "sample",
                "--artifact",
                str(artifact),
                "--samples",
                "40",
                "--condition",
                "event_type=traffic_flooding",
                "--output",
                str(output),
            ]
        ) == 0
        rows = output.read_text().strip().splitlines()[1:]
        assert len(rows) == 40
        # Conditioning is soft (a 1-epoch generator need not obey it); the
        # exact conditioned-sampling parity is covered in tests/serve.  Here
        # we check the plumbing: an unknown condition value must fail loudly.
        capsys.readouterr()
        with pytest.raises(ValueError, match="not in categories"):
            main(
                [
                    "sample",
                    "--artifact",
                    str(artifact),
                    "--samples",
                    "5",
                    "--condition",
                    "event_type=not_a_real_event",
                    "--output",
                    str(tmp_path / "bad.csv"),
                ]
            )

    def test_serve_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--artifact", "a", "--artifact", "b"])
        assert args.artifact == ["a", "b"]
        assert args.workers == "serial"
        assert args.http is False
        assert args.host == "127.0.0.1"
        assert args.queue_depth == 64
        assert args.artifact_concurrency == 8
        assert args.request_deadline is None
        with pytest.raises(SystemExit):
            parser.parse_args(["serve"])  # --artifact is required

    def test_serve_http_knob_validation(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "serve",
                "--artifact",
                "a",
                "--http",
                "--port",
                "0",
                "--queue-depth",
                "4",
                "--artifact-concurrency",
                "2",
                "--request-deadline",
                "1.5",
                "--retry-after",
                "0.5",
                "--retries",
                "1",
            ]
        )
        assert args.http and args.port == 0
        assert (args.queue_depth, args.artifact_concurrency) == (4, 2)
        assert (args.request_deadline, args.retry_after, args.retries) == (1.5, 0.5, 1)
        for bad in (
            ["serve", "--artifact", "a", "--queue-depth", "0"],
            ["serve", "--artifact", "a", "--artifact-concurrency", "0"],
            ["serve", "--artifact", "a", "--request-deadline", "0"],
            ["serve", "--artifact", "a", "--port", "-1"],
            ["serve", "--artifact", "a", "--retries", "-1"],
            ["serve", "--artifact", "a", "--workers", "gpu"],
        ):
            with pytest.raises(SystemExit):
                parser.parse_args(bad)

    def test_serve_http_starts_answers_and_drains(self, tmp_path, capsys, monkeypatch):
        """--http binds, answers a live request, and drains on Ctrl-C."""
        artifact = tmp_path / "artifact"
        assert main(
            [
                "save",
                "--dataset",
                "lab_iot",
                "--model",
                "independent",
                "--records",
                "400",
                "--epochs",
                "1",
                "--artifact-dir",
                str(artifact),
            ]
        ) == 0
        capsys.readouterr()

        import re
        import time as time_module

        from repro.serve import request_samples

        served: dict = {}

        def probe_then_interrupt(seconds):
            out = capsys.readouterr().out
            served["banner"] = out
            url = re.search(r"on (http://[\d.]+:\d+)", out).group(1)
            served["table"] = request_samples(url, str(artifact), 25, seed=4)
            raise KeyboardInterrupt

        monkeypatch.setattr(time_module, "sleep", probe_then_interrupt)
        assert main(
            ["serve", "--artifact", str(artifact), "--http", "--port", "0"]
        ) == 0
        assert "Endpoints: POST /sample" in served["banner"]
        assert served["table"].n_rows == 25
        assert "Served 1 requests" in capsys.readouterr().out

    def test_serve_rejects_nonexistent_artifact_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot serve"):
            main(["serve", "--artifact", str(tmp_path / "missing")])

    def test_serve_names_every_broken_artifact(self, tmp_path):
        (tmp_path / "broken").mkdir()
        (tmp_path / "broken" / "manifest.json").write_text("not json")
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "serve",
                    "--artifact",
                    str(tmp_path / "missing"),
                    "--artifact",
                    str(tmp_path / "broken"),
                ]
            )
        message = str(excinfo.value)
        assert "missing" in message and "broken" in message


class TestRuntimeCommands:
    def test_workers_flag_accepts_executor_specs(self):
        parser = build_parser()
        assert parser.parse_args(["federated"]).workers == "serial"
        assert parser.parse_args(["federated", "--workers", "4"]).workers == "4"
        assert parser.parse_args(["distributed", "--workers", "2"]).workers == "2"
        assert parser.parse_args(["federated", "--workers", "thread"]).workers == "thread"
        assert parser.parse_args(["federated", "--workers", "thread:3"]).workers == "thread:3"
        assert parser.parse_args(["distributed", "--workers", "process:2"]).workers == "process:2"
        for bad in ("-1", "thread:0", "thread:x", "gpu"):
            with pytest.raises(SystemExit):
                parser.parse_args(["federated", "--workers", bad])

    def test_resilience_flags_parse_and_validate(self):
        parser = build_parser()
        args = parser.parse_args(
            ["federated", "--min-clients", "2", "--task-timeout", "1.5", "--retries", "3"]
        )
        assert (args.min_clients, args.task_timeout, args.retries) == (2, 1.5, 3)
        args = parser.parse_args(["distributed", "--task-timeout", "0.5", "--retries", "1"])
        assert (args.task_timeout, args.retries) == (0.5, 1)
        defaults = parser.parse_args(["federated"])
        assert (defaults.min_clients, defaults.task_timeout, defaults.retries) == (1, None, 0)
        for bad in (
            ["federated", "--min-clients", "0"],
            ["federated", "--task-timeout", "0"],
            ["distributed", "--retries", "-1"],
        ):
            with pytest.raises(SystemExit):
                parser.parse_args(bad)

    def test_federated_command_runs_serial(self, capsys):
        exit_code = main(
            [
                "federated",
                "--records",
                "400",
                "--clients",
                "2",
                "--rounds",
                "1",
                "--local-epochs",
                "1",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "federated accuracy" in out
        assert "centralised accuracy" in out

    def test_distributed_command_runs_serial(self, capsys):
        exit_code = main(
            [
                "distributed",
                "--records",
                "400",
                "--nodes",
                "2",
                "--epochs",
                "1",
                "--share-size",
                "80",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "local accuracy" in out
        assert "synthetic-sharing" in out


class TestObservabilityDumps:
    """--metrics-dump / --trace-dump write snapshots at command exit."""

    def test_generate_writes_metrics_and_trace_dumps(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "spans.jsonl"
        exit_code = main(
            [
                "generate",
                "--dataset", "lab_iot",
                "--model", "independent",
                "--records", "300",
                "--epochs", "1",
                "--samples", "50",
                "--output", str(tmp_path / "rows.csv"),
                "--metrics-dump", str(metrics_path),
                "--trace-dump", str(trace_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert f"Wrote metrics snapshot to {metrics_path}" in out
        assert f"Wrote trace spans to {trace_path}" in out
        snapshot = json.loads(metrics_path.read_text())
        assert isinstance(snapshot, dict)
        assert trace_path.exists()
        for line in trace_path.read_text().splitlines():
            json.loads(line)  # every span line is standalone JSON

    def test_metrics_dump_enables_engine_metrics(self, tmp_path, capsys):
        """--metrics-dump turns on the engine's MetricsCallback, so a fit
        through the training engine leaves its epoch counters behind."""
        metrics_path = tmp_path / "metrics.json"
        exit_code = main(
            [
                "generate",
                "--dataset", "lab_iot",
                "--model", "kinetgan",
                "--records", "300",
                "--epochs", "1",
                "--samples", "50",
                "--output", str(tmp_path / "rows.csv"),
                "--metrics-dump", str(metrics_path),
            ]
        )
        assert exit_code == 0
        capsys.readouterr()
        snapshot = json.loads(metrics_path.read_text())
        assert "repro_engine_epochs_total" in snapshot

    def test_dtype_knob_flows_to_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "artifact"
        exit_code = main(
            [
                "save",
                "--dataset", "lab_iot",
                "--model", "kinetgan",
                "--records", "300",
                "--epochs", "1",
                "--dtype", "float32",
                "--artifact", str(artifact),
            ]
        )
        assert exit_code == 0
        capsys.readouterr()
        manifest = json.loads((artifact / "manifest.json").read_text())
        assert manifest["dtype"] == "float32"

    def test_dtype_choices_validated(self):
        with pytest.raises(SystemExit):
            main(["generate", "--dataset", "lab_iot", "--dtype", "float16"])
