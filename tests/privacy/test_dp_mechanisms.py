"""Tests for the discrete / local DP mechanisms added alongside the classics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.privacy.dp import exponential_mechanism, randomized_response


class TestExponentialMechanism:
    def test_prefers_high_utility_candidates(self):
        rng = np.random.default_rng(0)
        candidates = ["low", "medium", "high"]
        scores = [0.0, 5.0, 10.0]
        picks = [
            exponential_mechanism(candidates, scores, sensitivity=1.0, epsilon=2.0, rng=rng)
            for _ in range(300)
        ]
        assert picks.count("high") > picks.count("low")
        assert picks.count("high") > 150

    def test_small_epsilon_is_close_to_uniform(self):
        rng = np.random.default_rng(1)
        candidates = [0, 1]
        scores = [0.0, 10.0]
        picks = [
            exponential_mechanism(candidates, scores, sensitivity=10.0, epsilon=0.01, rng=rng)
            for _ in range(2000)
        ]
        share = picks.count(1) / len(picks)
        assert 0.4 < share < 0.6

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            exponential_mechanism([], [], 1.0, 1.0, rng)
        with pytest.raises(ValueError):
            exponential_mechanism(["a"], [1.0, 2.0], 1.0, 1.0, rng)
        with pytest.raises(ValueError):
            exponential_mechanism(["a"], [1.0], 0.0, 1.0, rng)
        with pytest.raises(ValueError):
            exponential_mechanism(["a"], [1.0], 1.0, 0.0, rng)


class TestRandomizedResponse:
    def test_high_epsilon_is_almost_always_truthful(self):
        rng = np.random.default_rng(2)
        answers = [randomized_response(True, epsilon=8.0, rng=rng) for _ in range(500)]
        assert sum(answers) > 490

    def test_truth_probability_matches_theory(self):
        rng = np.random.default_rng(3)
        epsilon = 1.0
        expected = np.exp(epsilon) / (1.0 + np.exp(epsilon))
        answers = [randomized_response(True, epsilon=epsilon, rng=rng) for _ in range(20_000)]
        observed = np.mean(answers)
        assert observed == pytest.approx(expected, abs=0.02)

    def test_false_inputs_flip_symmetrically(self):
        rng = np.random.default_rng(4)
        answers = [randomized_response(False, epsilon=1.0, rng=rng) for _ in range(20_000)]
        observed_false = 1.0 - np.mean(answers)
        expected = np.exp(1.0) / (1.0 + np.exp(1.0))
        assert observed_false == pytest.approx(expected, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            randomized_response(True, epsilon=0.0, rng=np.random.default_rng(0))
