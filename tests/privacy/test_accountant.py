"""Tests for the Renyi-DP (moments) accountant."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.accountant import (
    DEFAULT_ORDERS,
    MomentsAccountant,
    RDPAccountant,
    dp_sgd_epsilon,
    rdp_gaussian,
    rdp_subsampled_gaussian,
    rdp_to_epsilon,
)


class TestRDPCurves:
    def test_gaussian_rdp_is_linear_in_order(self):
        curve = rdp_gaussian(noise_multiplier=2.0, orders=(2, 4, 8))
        np.testing.assert_allclose(curve, np.array([2, 4, 8]) / (2 * 4.0))

    def test_subsampled_matches_gaussian_at_full_sampling(self):
        full = rdp_subsampled_gaussian(1.5, sample_rate=1.0, steps=1)
        plain = rdp_gaussian(1.5)
        np.testing.assert_allclose(full, plain, rtol=1e-9)

    def test_zero_sampling_rate_costs_nothing(self):
        curve = rdp_subsampled_gaussian(1.0, sample_rate=0.0, steps=10)
        assert np.all(curve == 0.0)

    def test_subsampling_never_hurts(self):
        subsampled = rdp_subsampled_gaussian(1.2, sample_rate=0.05, steps=1)
        full = rdp_gaussian(1.2)
        assert np.all(subsampled <= full + 1e-12)

    def test_composition_is_linear_in_steps(self):
        one = rdp_subsampled_gaussian(1.1, 0.1, steps=1)
        ten = rdp_subsampled_gaussian(1.1, 0.1, steps=10)
        np.testing.assert_allclose(ten, 10 * one)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            rdp_gaussian(0.0)
        with pytest.raises(ValueError):
            rdp_subsampled_gaussian(1.0, sample_rate=1.5)
        with pytest.raises(ValueError):
            rdp_subsampled_gaussian(1.0, 0.1, steps=-1)


class TestConversion:
    def test_epsilon_decreases_with_larger_delta(self):
        rdp = rdp_subsampled_gaussian(1.0, 0.05, steps=100)
        eps_strict, _ = rdp_to_epsilon(rdp, delta=1e-7)
        eps_loose, _ = rdp_to_epsilon(rdp, delta=1e-3)
        assert eps_loose < eps_strict

    def test_epsilon_increases_with_steps(self):
        eps_few = dp_sgd_epsilon(1.1, 0.02, steps=100, delta=1e-5)
        eps_many = dp_sgd_epsilon(1.1, 0.02, steps=10_000, delta=1e-5)
        assert eps_few < eps_many

    def test_epsilon_decreases_with_more_noise(self):
        eps_low_noise = dp_sgd_epsilon(0.8, 0.02, steps=1000, delta=1e-5)
        eps_high_noise = dp_sgd_epsilon(4.0, 0.02, steps=1000, delta=1e-5)
        assert eps_high_noise < eps_low_noise

    def test_known_regime_is_single_digit(self):
        """The canonical MNIST-style DP-SGD setting lands in the usual range."""
        epsilon = dp_sgd_epsilon(
            noise_multiplier=1.1, sample_rate=256 / 60_000, steps=1_0000, delta=1e-5
        )
        assert 0.5 < epsilon < 10.0

    def test_delta_validation(self):
        rdp = rdp_gaussian(1.0)
        with pytest.raises(ValueError):
            rdp_to_epsilon(rdp, delta=0.0)
        with pytest.raises(ValueError):
            rdp_to_epsilon(rdp[:-1], delta=1e-5)

    @given(
        sigma=st.floats(min_value=0.5, max_value=5.0),
        q=st.floats(min_value=0.001, max_value=0.2),
        steps=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=20, deadline=None)
    def test_epsilon_is_positive_and_finite(self, sigma, q, steps):
        epsilon = dp_sgd_epsilon(sigma, q, steps, delta=1e-5)
        assert np.isfinite(epsilon)
        assert epsilon > 0.0


class TestAccountant:
    def test_empty_accountant_spends_nothing(self):
        accountant = RDPAccountant()
        assert accountant.get_epsilon(delta=1e-5) == 0.0
        assert accountant.total_steps == 0

    def test_step_merging(self):
        accountant = RDPAccountant()
        accountant.step(noise_multiplier=1.0, sample_rate=0.1, steps=3)
        accountant.step(noise_multiplier=1.0, sample_rate=0.1, steps=2)
        assert accountant.total_steps == 5
        manual = dp_sgd_epsilon(1.0, 0.1, steps=5, delta=1e-5)
        assert accountant.get_epsilon(1e-5) == pytest.approx(manual)

    def test_heterogeneous_mechanisms_compose(self):
        accountant = RDPAccountant()
        accountant.step(noise_multiplier=1.0, sample_rate=0.1, steps=10)
        accountant.step(noise_multiplier=2.0, sample_rate=0.5, steps=5)
        eps_combined = accountant.get_epsilon(1e-5)
        eps_first_only = dp_sgd_epsilon(1.0, 0.1, 10, 1e-5)
        assert eps_combined > eps_first_only

    def test_reset(self):
        accountant = RDPAccountant()
        accountant.step(noise_multiplier=1.0, sample_rate=0.1)
        accountant.reset()
        assert accountant.get_epsilon(1e-5) == 0.0

    def test_best_order_is_one_of_the_evaluated_orders(self):
        accountant = RDPAccountant()
        accountant.step(noise_multiplier=1.1, sample_rate=0.01, steps=200)
        _, order = accountant.get_epsilon_and_order(1e-5)
        assert order in DEFAULT_ORDERS

    def test_moments_accountant_alias(self):
        assert MomentsAccountant is RDPAccountant

    def test_invalid_steps_rejected(self):
        accountant = RDPAccountant()
        with pytest.raises(ValueError):
            accountant.step(noise_multiplier=1.0, sample_rate=0.1, steps=0)
        with pytest.raises(ValueError):
            accountant.step(noise_multiplier=-1.0, sample_rate=0.1)
        with pytest.raises(ValueError):
            RDPAccountant(orders=(1, 2))
