"""Privacy attack and DP mechanism tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.privacy import (
    AttributeInferenceAttack,
    CompositionAccountant,
    MembershipInferenceAttack,
    ReidentificationAttack,
    gaussian_mechanism,
    gaussian_sigma,
    laplace_mechanism,
)
from repro.privacy._distance import nearest_neighbor_distances, record_distance_matrix
from repro.tabular.split import train_test_split


class TestDP:
    def test_laplace_noise_scale(self, rng):
        values = np.zeros(5000)
        noisy = laplace_mechanism(values, sensitivity=1.0, epsilon=0.5, rng=rng)
        # Laplace(b) has std = sqrt(2) * b with b = 2.
        assert abs(np.std(noisy) - np.sqrt(2) * 2.0) < 0.3

    def test_laplace_scalar_input(self, rng):
        noisy = laplace_mechanism(5.0, sensitivity=1.0, epsilon=1.0, rng=rng)
        assert isinstance(float(noisy), float)

    def test_higher_epsilon_means_less_noise(self, rng):
        low_eps = laplace_mechanism(np.zeros(3000), 1.0, 0.1, rng)
        high_eps = laplace_mechanism(np.zeros(3000), 1.0, 10.0, rng)
        assert np.std(low_eps) > np.std(high_eps)

    def test_gaussian_sigma_formula(self):
        assert gaussian_sigma(1.0, 1.0, 1e-5) == pytest.approx(
            np.sqrt(2 * np.log(1.25e5)), rel=1e-6
        )

    def test_gaussian_mechanism_adds_noise(self, rng):
        noisy = gaussian_mechanism(np.zeros(2000), 1.0, 1.0, 1e-5, rng)
        assert np.std(noisy) > 1.0

    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            laplace_mechanism(0.0, 1.0, 0.0, rng)
        with pytest.raises(ValueError):
            gaussian_sigma(1.0, 1.0, 1.5)

    def test_accountant_composes(self):
        accountant = CompositionAccountant()
        accountant.spend(0.5)
        accountant.spend(0.25, delta=1e-6)
        assert accountant.epsilon == pytest.approx(0.75)
        assert accountant.delta == pytest.approx(1e-6)
        assert accountant.num_queries == 2
        with pytest.raises(ValueError):
            accountant.spend(-1.0)


class TestRecordDistance:
    def test_identical_rows_have_zero_distance(self, tiny_table):
        matrix = record_distance_matrix(tiny_table.head(5), tiny_table.head(5))
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-12)

    def test_distance_symmetric_in_structure(self, tiny_table, tiny_table_alt):
        a = record_distance_matrix(tiny_table.head(10), tiny_table_alt.head(12))
        assert a.shape == (10, 12)
        assert np.all(a >= 0)

    def test_nearest_neighbor_of_self_is_self(self, tiny_table):
        distances, indices = nearest_neighbor_distances(tiny_table.head(20), tiny_table.head(20))
        np.testing.assert_allclose(distances, 0.0, atol=1e-12)
        np.testing.assert_array_equal(indices, np.arange(20))


class TestReidentification:
    def test_accuracy_increases_with_overlap(self, tiny_table, tiny_table_alt):
        attack = ReidentificationAttack("label", seed=3)
        results = attack.run_sweep(tiny_table, tiny_table_alt, overlaps=(0.3, 0.6, 0.9))
        accuracies = [result.attack_accuracy for result in results]
        assert accuracies[0] < accuracies[1] < accuracies[2]

    def test_memorising_synthesizer_is_more_vulnerable(self, tiny_table, tiny_table_alt):
        attack = ReidentificationAttack("label", seed=3)
        # "Memorising" release: the real data itself; "generalising": fresh draw.
        leaky = attack.run(tiny_table, tiny_table, overlap=0.3).attack_accuracy
        safer = attack.run(tiny_table, tiny_table_alt, overlap=0.3).attack_accuracy
        assert leaky >= safer

    def test_accuracy_bounded(self, tiny_table, tiny_table_alt):
        result = ReidentificationAttack("label", seed=1).run(tiny_table, tiny_table_alt, 0.5)
        assert 0.0 <= result.attack_accuracy <= 1.0
        assert 0.0 <= result.linkage_rate <= 1.0

    def test_invalid_overlap_rejected(self, tiny_table, tiny_table_alt):
        with pytest.raises(ValueError):
            ReidentificationAttack("label").run(tiny_table, tiny_table_alt, 1.5)

    def test_unknown_sensitive_column_rejected(self, tiny_table, tiny_table_alt):
        with pytest.raises(KeyError):
            ReidentificationAttack("missing").run(tiny_table, tiny_table_alt, 0.3)


class TestAttributeInference:
    def test_attack_runs_and_reports_baseline(self, tiny_table, tiny_table_alt):
        attack = AttributeInferenceAttack("label", quasi_identifiers=["bytes", "duration"], seed=2)
        result = attack.run(tiny_table, tiny_table_alt)
        assert 0.0 <= result.attack_accuracy <= 1.0
        assert 0.0 < result.majority_baseline <= 1.0
        assert result.n_targets <= 1000

    def test_uninformative_synthetic_data_gives_low_advantage(self, tiny_table, rng):
        # Shuffle the sensitive column in the "synthetic" data: the attacker
        # cannot learn a real mapping from it.
        from repro.tabular.table import Table

        columns = {name: tiny_table.column(name).copy() for name in tiny_table.schema.names}
        columns["label"] = rng.permutation(columns["label"])
        shuffled = Table(tiny_table.schema, columns)
        informative = AttributeInferenceAttack(
            "label", quasi_identifiers=["bytes", "service"], seed=2
        ).run(tiny_table, tiny_table)
        uninformative = AttributeInferenceAttack(
            "label", quasi_identifiers=["bytes", "service"], seed=2
        ).run(tiny_table, shuffled)
        assert informative.attack_accuracy >= uninformative.attack_accuracy

    def test_continuous_sensitive_column_rejected(self, tiny_table, tiny_table_alt):
        with pytest.raises(ValueError):
            AttributeInferenceAttack("bytes").run(tiny_table, tiny_table_alt)


class TestMembershipInference:
    def test_balanced_accuracy_near_half_for_fresh_draw(self, tiny_table, tiny_table_alt, rng):
        members, non_members = train_test_split(tiny_table, 0.5, rng)
        attack = MembershipInferenceAttack(seed=4)
        result = attack.run(members, non_members, tiny_table_alt, setting="fbb")
        assert 0.3 <= result.attack_accuracy <= 0.7

    def test_memorising_release_is_detectable(self, tiny_table, tiny_table_alt, rng):
        members, non_members = train_test_split(tiny_table, 0.5, rng)
        attack = MembershipInferenceAttack(seed=4)
        # Synthetic data == the member records themselves: attack should win.
        leaky = attack.run(members, non_members, members, setting="fbb")
        safe = attack.run(members, non_members, tiny_table_alt, setting="fbb")
        assert leaky.attack_accuracy > safe.attack_accuracy
        assert leaky.advantage > safe.advantage

    def test_white_box_with_score_function(self, tiny_table, tiny_table_alt, rng):
        members, non_members = train_test_split(tiny_table, 0.5, rng)
        attack = MembershipInferenceAttack(seed=4)

        def score_fn(table):
            return np.asarray([1.0 if v == "attack" else 0.0 for v in table.column("label")])

        result = attack.run(members, non_members, tiny_table_alt, setting="wb", score_fn=score_fn)
        assert result.setting == "wb"
        assert 0.0 <= result.attack_accuracy <= 1.0

    def test_invalid_setting_rejected(self, tiny_table, tiny_table_alt):
        with pytest.raises(ValueError):
            MembershipInferenceAttack().run(tiny_table, tiny_table, tiny_table_alt, setting="grey")
