"""Tests for the CIC-IDS-2017 stand-in generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.cicids2017 import (
    CICIDS_CLASSES,
    CICIDS2017Generator,
    cicids2017_catalog,
    cicids2017_schema,
    load_cicids2017,
)
from repro.knowledge import BatchValidator, KGReasoner, build_network_kg


@pytest.fixture(scope="module")
def bundle():
    return load_cicids2017(n_records=1500, seed=3)


class TestSchema:
    def test_expected_columns(self):
        schema = cicids2017_schema()
        for name in ("dst_port", "protocol", "flow_duration", "traffic_class"):
            assert name in schema
        assert len(schema) == 18

    def test_class_column_is_sensitive_and_categorical(self):
        spec = cicids2017_schema().column("traffic_class")
        assert spec.sensitive and spec.is_categorical
        assert set(spec.categories) == set(CICIDS_CLASSES)


class TestGenerator:
    def test_record_count(self, bundle):
        assert bundle.table.n_rows == 1500

    def test_benign_dominates(self, bundle):
        distribution = bundle.table.class_distribution("traffic_class")
        assert distribution["BENIGN"] > 0.6

    def test_every_attack_family_represented(self, bundle):
        classes = set(bundle.table.column("traffic_class"))
        assert classes == set(CICIDS_CLASSES)

    def test_attack_port_rules_hold(self, bundle):
        """FTP-Patator must hit 21, SSH-Patator 22, the web-DoS family 80."""
        table = bundle.table
        labels = table.column("traffic_class")
        ports = table.column("dst_port").astype(int)
        assert set(ports[labels == "FTP-Patator"]) <= {21}
        assert set(ports[labels == "SSH-Patator"]) <= {22}
        assert set(ports[labels == "DoS Hulk"]) <= {80}

    def test_knowledge_graph_validates_generated_records(self, bundle):
        reasoner = KGReasoner(
            build_network_kg(bundle.catalog), field_map=bundle.catalog.field_map
        )
        report = BatchValidator(reasoner).report(bundle.table)
        assert report.validity_rate == 1.0

    def test_portscan_flows_are_tiny(self, bundle):
        table = bundle.table
        labels = table.column("traffic_class")
        packets = table.column("total_fwd_packets").astype(float)
        scan_mean = packets[labels == "PortScan"].mean()
        benign_mean = packets[labels == "BENIGN"].mean()
        assert scan_mean < benign_mean

    def test_reproducibility(self):
        first = CICIDS2017Generator(seed=11).generate(250)
        second = CICIDS2017Generator(seed=11).generate(250)
        np.testing.assert_array_equal(
            first.column("traffic_class"), second.column("traffic_class")
        )

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            CICIDS2017Generator(seed=0).generate(-5)


class TestBundleAndCatalog:
    def test_bundle_metadata(self, bundle):
        assert bundle.name == "cicids2017"
        assert bundle.label_column == "traffic_class"
        assert bundle.condition_columns == ["traffic_class", "protocol"]

    def test_catalog_attack_events_marked_as_attacks(self):
        catalog = cicids2017_catalog()
        attack_names = {attack.name for attack in catalog.attacks}
        assert "DoS Hulk" in attack_names and "PortScan" in attack_names
        for attack in catalog.attacks:
            assert attack.event.kind == "attack"

    def test_registry_loading(self):
        from repro.datasets import available_datasets, load_dataset

        assert "cicids2017" in available_datasets()
        loaded = load_dataset("cicids2017", n_records=120, seed=1)
        assert loaded.table.n_rows == 120
