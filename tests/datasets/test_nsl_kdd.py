"""Tests for the NSL-KDD stand-in generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.nsl_kdd import (
    NSL_KDD_CLASSES,
    NSLKDDGenerator,
    load_nsl_kdd,
    nsl_kdd_catalog,
    nsl_kdd_schema,
)
from repro.knowledge import BatchValidator, KGReasoner, build_network_kg


@pytest.fixture(scope="module")
def bundle():
    return load_nsl_kdd(n_records=1200, seed=5)


class TestSchema:
    def test_reduced_schema_has_expected_columns(self):
        schema = nsl_kdd_schema(reduced=True)
        assert "service" in schema and "protocol_type" in schema and "label" in schema
        assert len(schema) == 18

    def test_full_schema_has_42_columns(self):
        schema = nsl_kdd_schema(reduced=False)
        assert len(schema) == 42  # 41 features + label
        assert "dst_host_srv_rerror_rate" in schema

    def test_label_column_is_sensitive(self):
        schema = nsl_kdd_schema()
        assert schema.column("label").sensitive

    def test_rate_columns_bounded_to_unit_interval(self):
        schema = nsl_kdd_schema(reduced=False)
        for name in ("serror_rate", "same_srv_rate", "dst_host_rerror_rate"):
            spec = schema.column(name)
            assert spec.minimum == 0.0 and spec.maximum == 1.0


class TestGenerator:
    def test_record_count_and_schema(self, bundle):
        assert bundle.table.n_rows == 1200
        assert bundle.table.schema.names == nsl_kdd_schema().names

    def test_class_mix_dominated_by_normal_and_dos(self, bundle):
        distribution = bundle.table.class_distribution("label")
        assert distribution["normal"] > 0.4
        assert distribution["dos"] > 0.2
        assert distribution.get("u2r", 0.0) < 0.02

    def test_all_classes_present(self, bundle):
        labels = set(bundle.table.column("label"))
        assert labels == set(NSL_KDD_CLASSES)

    def test_service_protocol_rules_hold(self, bundle):
        """Every generated record must respect the service -> protocol rule."""
        reasoner = KGReasoner(
            build_network_kg(bundle.catalog), field_map=bundle.catalog.field_map
        )
        report = BatchValidator(reasoner).report(bundle.table)
        assert report.validity_rate == 1.0

    def test_dos_records_have_high_connection_counts(self, bundle):
        table = bundle.table
        labels = table.column("label")
        counts = table.column("count").astype(float)
        dos_mean = counts[labels == "dos"].mean()
        normal_mean = counts[labels == "normal"].mean()
        assert dos_mean > 5 * normal_mean

    def test_full_schema_generation(self):
        generator = NSLKDDGenerator(seed=1, reduced=False)
        table = generator.generate(300)
        assert table.n_rows == 300
        assert len(table.schema) == 42

    def test_reproducible_with_same_seed(self):
        first = NSLKDDGenerator(seed=9).generate(200)
        second = NSLKDDGenerator(seed=9).generate(200)
        np.testing.assert_array_equal(first.column("service"), second.column("service"))
        np.testing.assert_allclose(
            first.column("src_bytes").astype(float), second.column("src_bytes").astype(float)
        )

    def test_invalid_record_count_rejected(self):
        with pytest.raises(ValueError):
            NSLKDDGenerator(seed=0).generate(0)


class TestBundle:
    def test_bundle_metadata(self, bundle):
        assert bundle.name == "nsl_kdd"
        assert bundle.label_column == "label"
        assert "service" in bundle.condition_columns
        assert "stand-in" in bundle.description.lower() or "synthetic" in bundle.description.lower()

    def test_catalog_events_match_services(self):
        catalog = nsl_kdd_catalog()
        schema = nsl_kdd_schema()
        assert set(catalog.event_names) == set(schema.column("service").categories)

    def test_registry_loading(self):
        from repro.datasets import load_dataset

        loaded = load_dataset("nsl_kdd", n_records=150, seed=2)
        assert loaded.table.n_rows == 150
