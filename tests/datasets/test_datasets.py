"""Dataset generator tests (lab IoT simulator, UNSW-NB15 generator, registry)."""

from __future__ import annotations

import pytest

from repro.datasets import (
    LabIoTSimulator,
    UNSWNB15Generator,
    available_datasets,
    load_dataset,
    load_lab_iot,
)
from repro.datasets.lab_iot import EVENT_LABELS, lab_iot_schema
from repro.datasets.unsw_nb15 import ATTACK_CATEGORIES, unsw_nb15_schema
from repro.knowledge.builder import build_network_kg
from repro.knowledge.reasoner import KGReasoner
from repro.knowledge.validator import BatchValidator


class TestLabIoT:
    def test_default_size_matches_paper(self):
        bundle = load_lab_iot()
        assert bundle.n_records == 14_520

    def test_schema_matches_table(self, lab_bundle_small):
        assert lab_bundle_small.table.schema.names == lab_iot_schema().names
        assert lab_bundle_small.label_column == "label"

    def test_labels_follow_event_mapping(self, lab_bundle_small):
        table = lab_bundle_small.table
        for row in table.head(200).iter_rows():
            assert row["label"] == EVENT_LABELS[row["event_type"]]

    def test_class_imbalance_benign_dominates(self, lab_bundle_small):
        distribution = lab_bundle_small.table.class_distribution("label")
        assert distribution["normal"] > 0.75
        assert 0 < distribution.get("exploit", 0) < 0.05

    def test_generated_records_satisfy_knowledge_graph(self, lab_bundle_small):
        reasoner = KGReasoner(
            build_network_kg(lab_bundle_small.catalog),
            field_map=lab_bundle_small.catalog.field_map,
        )
        report = BatchValidator(reasoner).report(lab_bundle_small.table)
        assert report.validity_rate == 1.0

    def test_reproducible_with_same_seed(self):
        a = LabIoTSimulator(seed=5).generate(200)
        b = LabIoTSimulator(seed=5).generate(200)
        assert a.to_records() == b.to_records()

    def test_different_seeds_differ(self):
        a = LabIoTSimulator(seed=5).generate(200)
        b = LabIoTSimulator(seed=6).generate(200)
        assert a.to_records() != b.to_records()

    def test_event_batch_generation(self):
        simulator = LabIoTSimulator(seed=1)
        batch = simulator.generate_event_batch("cve_1999_0003", 25)
        assert batch.n_rows == 25
        ports = batch.column("dst_port")
        assert all(32771 <= int(p) <= 34000 for p in ports)
        with pytest.raises(KeyError):
            simulator.generate_event_batch("nope", 5)

    def test_continuous_columns_within_bounds(self, lab_bundle_small):
        table = lab_bundle_small.table
        for name in ("src_port", "packet_count", "byte_count", "duration_ms"):
            spec = table.schema.column(name)
            values = table.column(name).astype(float)
            assert values.min() >= spec.minimum
            assert values.max() <= spec.maximum

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            LabIoTSimulator().generate(0)

    def test_summary_mentions_distribution(self, lab_bundle_small):
        text = lab_bundle_small.summary()
        assert "lab_iot" in text and "normal" in text


class TestUNSWNB15:
    def test_reduced_schema_width(self):
        assert len(unsw_nb15_schema(reduced=True)) == 14

    def test_full_schema_has_49_columns(self):
        assert len(unsw_nb15_schema(reduced=False)) == 49

    def test_category_mix_roughly_matches_published(self, unsw_bundle_small):
        distribution = unsw_bundle_small.table.class_distribution("attack_cat")
        assert distribution["Normal"] > 0.7
        assert distribution.get("Generic", 0) > distribution.get("Worms", 0)

    def test_every_category_present(self, unsw_bundle_small):
        observed = set(unsw_bundle_small.table.value_counts("attack_cat"))
        assert observed == set(ATTACK_CATEGORIES)

    def test_service_protocol_port_rules_hold(self, unsw_bundle_small):
        reasoner = KGReasoner(
            build_network_kg(unsw_bundle_small.catalog),
            field_map=unsw_bundle_small.catalog.field_map,
        )
        report = BatchValidator(reasoner).report(unsw_bundle_small.table)
        assert report.validity_rate == 1.0

    def test_full_schema_generation(self):
        generator = UNSWNB15Generator(seed=3, reduced=False)
        table = generator.generate(300)
        assert len(table.schema) == 49
        # TCP-only fields are zero for pure UDP services such as snmp.
        for row in table.head(100).iter_rows():
            if row["proto"] != "tcp":
                assert row["swin"] == 0.0

    def test_reproducibility(self):
        a = UNSWNB15Generator(seed=9).generate(150)
        b = UNSWNB15Generator(seed=9).generate(150)
        assert a.to_records() == b.to_records()

    def test_field_map_roles_point_to_real_columns(self, unsw_bundle_small):
        for column in unsw_bundle_small.catalog.field_map.values():
            # The reduced schema drops srcip/dstip/sport, which is allowed;
            # every mapped column that exists must be a declared column name.
            if column in unsw_bundle_small.schema:
                assert unsw_bundle_small.schema.column(column) is not None


class TestRegistry:
    def test_available_datasets(self):
        assert available_datasets() == ["cicids2017", "lab_iot", "nsl_kdd", "unsw_nb15"]

    def test_load_by_name(self):
        bundle = load_dataset("lab_iot", n_records=120, seed=1)
        assert bundle.n_records == 120

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("kdd99")

    def test_kwargs_forwarded(self):
        bundle = load_dataset("unsw_nb15", n_records=150, seed=2, reduced=True)
        assert bundle.n_records <= 160  # minimum-per-class padding may add a few
        assert len(bundle.schema) == 14
