"""Worker-resident state and shared-memory transport unit tests."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.runtime import ProcessExecutor, SerialExecutor
from repro.runtime.state import (
    DirectBufferRef,
    DirectStateRef,
    SharedBufferRef,
    SharedStateRef,
)


def _bump(ref) -> int:
    """Increment a counter inside the worker-resident state."""
    state = ref.resolve()
    state["count"] += 1
    return state["count"]


def _write_row(task) -> float:
    buffer_ref, row, value = task
    out = buffer_ref.resolve()
    out[:] = value
    return float(row)


def _read_broadcast(task) -> float:
    buffer_ref, scale = task
    return float(buffer_ref.resolve().sum() * scale)


class TestDirectRefs:
    def test_state_ref_is_identity(self):
        payload = {"arrays": np.arange(5)}
        with SerialExecutor() as executor:
            ref = executor.install(payload)
            assert isinstance(ref, DirectStateRef)
            assert ref.resolve() is payload
            executor.evict(ref)  # no-op, still resolvable in-process
            assert ref.resolve() is payload

    def test_buffer_ref_views_parent_array(self):
        with SerialExecutor() as executor:
            buffer = executor.shared_array((3, 2))
            buffer.array[2] = 9.0
            view = buffer.ref(2).resolve()
            assert isinstance(buffer.ref(2), DirectBufferRef)
            assert (view == 9.0).all()
            view[:] = 4.0
            assert (buffer.array[2] == 4.0).all()


class TestProcessResidentState:
    def test_state_is_unpickled_once_per_worker(self):
        # With a single worker, a mutation made by round 1 must still be
        # visible in round 2: the worker resolved its resident copy once
        # and kept it, rather than re-unpickling per task.
        with ProcessExecutor(max_workers=1) as executor:
            ref = executor.install({"count": 0})
            assert isinstance(ref, SharedStateRef)
            assert executor.map(_bump, [ref]) == [1]
            assert executor.map(_bump, [ref]) == [2]

    def test_ref_pickles_small(self):
        big = {"features": np.zeros((1000, 50))}
        with ProcessExecutor(max_workers=1) as executor:
            ref = executor.install(big)
            assert len(pickle.dumps(ref)) < 200
            assert len(pickle.dumps(ref)) < len(pickle.dumps(big)) / 1000

    def test_evict_unlinks_segment(self):
        with ProcessExecutor(max_workers=1) as executor:
            ref = executor.install({"x": 1})
            executor.evict(ref)
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=ref.name)
            executor.evict(ref)  # idempotent

    def test_install_after_close_raises(self):
        executor = ProcessExecutor(max_workers=1)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.install({"x": 1})
        with pytest.raises(RuntimeError, match="closed"):
            executor.shared_array((2,))


class TestProcessSharedBuffers:
    def test_workers_write_rows_parent_reads(self):
        with ProcessExecutor(max_workers=2) as executor:
            buffer = executor.shared_array((3, 4))
            tasks = [(buffer.ref(row), row, float(10 + row)) for row in range(3)]
            assert executor.map(_write_row, tasks) == [0.0, 1.0, 2.0]
            assert (buffer.array == np.array([[10.0] * 4, [11.0] * 4, [12.0] * 4])).all()

    def test_parent_broadcast_visible_without_reship(self):
        with ProcessExecutor(max_workers=2) as executor:
            buffer = executor.shared_array((4,))
            ref = buffer.ref()
            assert isinstance(ref, SharedBufferRef)
            buffer.array[:] = 1.0
            assert executor.map(_read_broadcast, [(ref, 2.0)]) == [8.0]
            # Rewrite in place between rounds: same ref, new bytes.
            buffer.array[:] = 3.0
            assert executor.map(_read_broadcast, [(ref, 1.0)]) == [12.0]

    def test_buffer_close_is_idempotent_and_releases(self):
        executor = ProcessExecutor(max_workers=1)
        buffer = executor.shared_array((2, 2))
        name = buffer.name
        buffer.close()
        buffer.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        with pytest.raises(RuntimeError, match="closed"):
            _ = buffer.array
        executor.close()

    def test_executor_close_releases_everything(self):
        executor = ProcessExecutor(max_workers=1)
        ref = executor.install({"x": 1})
        buffer = executor.shared_array((2,))
        name = buffer.name
        executor.close()
        from multiprocessing import shared_memory

        for segment in (ref.name, name):
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=segment)


def _read_dtype(ref) -> str:
    return str(ref.resolve().dtype)


class TestBufferDtype:
    """Dtype-parametrised shared buffers (the mixed-precision transport)."""

    def test_local_buffer_defaults_to_float64(self):
        with SerialExecutor() as executor:
            assert executor.shared_array((2, 2)).array.dtype == np.float64

    def test_local_buffer_takes_dtype(self):
        with SerialExecutor() as executor:
            buffer = executor.shared_array((4,), dtype=np.float32)
            assert buffer.array.dtype == np.float32
            assert buffer.ref().resolve().dtype == np.float32

    def test_shared_memory_buffer_maps_requested_dtype(self):
        with ProcessExecutor(max_workers=1) as executor:
            buffer = executor.shared_array((3, 2), dtype=np.float32)
            try:
                assert buffer.array.dtype == np.float32
                assert buffer.array.nbytes == 3 * 2 * 4
                # The ref carries the dtype, so a worker maps float32 too.
                assert executor.map(_read_dtype, [buffer.ref()]) == ["float32"]
            finally:
                buffer.close()

    def test_shared_ref_pickles_with_dtype(self):
        ref = SharedBufferRef("segment", (2, 2), dtype="float32")
        assert pickle.loads(pickle.dumps(ref)).dtype == "float32"

    def test_shared_ref_defaults_to_float64(self):
        # Refs pickled by older builds carry no dtype field.
        assert SharedBufferRef("segment", (2, 2)).dtype == "float64"

    def test_mismatched_write_raises_typed_error(self):
        from repro.runtime.state import BufferDtypeError

        with SerialExecutor() as executor:
            buffer = executor.shared_array((2, 2), dtype=np.float32)
            with pytest.raises(BufferDtypeError, match="float64 data into a float32"):
                buffer.write(np.ones((2, 2), dtype=np.float64))
            buffer.write(np.ones((2, 2), dtype=np.float32))
            assert (buffer.array == 1.0).all()

    def test_mismatched_row_write_raises(self):
        from repro.runtime.state import BufferDtypeError

        with ProcessExecutor(max_workers=1) as executor:
            buffer = executor.shared_array((2, 3), dtype=np.float64)
            try:
                with pytest.raises(BufferDtypeError):
                    buffer.write(np.ones(3, dtype=np.float32), row=0)
            finally:
                buffer.close()
