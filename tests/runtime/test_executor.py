"""Unit tests for the runtime executors and seed spawning."""

from __future__ import annotations

import operator
import time

import numpy as np
import pytest

from repro.runtime import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_worker_count,
    resolve_executor,
    spawn_seeds,
)


def _sleepy_neg(x: int) -> int:
    """Sleep longer for earlier items so completion order is reversed."""
    time.sleep(0.02 * max(0, 3 - x))
    return -x


class TestSerialExecutor:
    def test_maps_in_order(self):
        assert SerialExecutor().map(operator.neg, [1, 2, 3]) == [-1, -2, -3]

    def test_empty_input(self):
        assert SerialExecutor().map(operator.neg, []) == []

    def test_close_is_noop_and_context_manager_works(self):
        with SerialExecutor() as executor:
            assert executor.map(abs, [-2]) == [2]
        executor.close()  # idempotent


class TestProcessExecutor:
    def test_maps_in_order_across_workers(self):
        with ProcessExecutor(max_workers=2) as executor:
            assert executor.map(operator.neg, list(range(8))) == [-i for i in range(8)]

    def test_pool_is_reused_between_map_calls(self):
        with ProcessExecutor(max_workers=2) as executor:
            executor.map(abs, [-1])
            pool = executor._pool
            executor.map(abs, [-2])
            assert executor._pool is pool

    def test_close_shuts_down_and_is_idempotent(self):
        executor = ProcessExecutor(max_workers=2)
        executor.map(abs, [-1])
        executor.close()
        assert executor._pool is None
        executor.close()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)


class TestThreadExecutor:
    def test_maps_in_order_across_workers(self):
        with ThreadExecutor(max_workers=2) as executor:
            assert executor.map(operator.neg, list(range(8))) == [-i for i in range(8)]

    def test_order_preserved_under_out_of_order_completion(self):
        # Four workers, earlier submissions sleep longest: completion order
        # is roughly the reverse of submission order, results must not be.
        with ThreadExecutor(max_workers=4) as executor:
            assert executor.map(_sleepy_neg, [0, 1, 2, 3]) == [0, -1, -2, -3]

    def test_pool_is_reused_between_map_calls(self):
        with ThreadExecutor(max_workers=2) as executor:
            executor.map(abs, [-1])
            pool = executor._pool
            executor.map(abs, [-2])
            assert executor._pool is pool

    def test_close_is_terminal_and_idempotent(self):
        executor = ThreadExecutor(max_workers=2)
        executor.map(abs, [-1])
        executor.close()
        assert executor.closed
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(abs, [-1])

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ThreadExecutor(max_workers=0)

    def test_shares_parent_objects_with_workers(self):
        # install/resolve are identity in-process: zero pickling.
        with ThreadExecutor(max_workers=2) as executor:
            payload = {"x": np.arange(4)}
            ref = executor.install(payload)
            assert ref.resolve() is payload
            buffer = executor.shared_array((2, 3))
            buffer.array[1, :] = 5.0
            assert buffer.ref(1).resolve() is not None
            assert (buffer.ref(1).resolve() == 5.0).all()


class TestResolveExecutor:
    @pytest.mark.parametrize("spec", [None, 0, 1, "serial", "none", "1", "process:1"])
    def test_serial_specs(self, spec):
        assert isinstance(resolve_executor(spec), SerialExecutor)

    def test_int_spec_gives_process_pool(self):
        executor = resolve_executor(3)
        assert isinstance(executor, ProcessExecutor)
        assert executor.max_workers == 3

    def test_process_spec_defaults_to_cpu_count(self):
        executor = resolve_executor("process")
        assert isinstance(executor, ProcessExecutor)
        assert executor.max_workers == default_worker_count()

    def test_process_spec_with_count(self):
        executor = resolve_executor("process:5")
        assert isinstance(executor, ProcessExecutor)
        assert executor.max_workers == 5

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_thread_spec(self):
        executor = resolve_executor("thread")
        assert isinstance(executor, ThreadExecutor)
        assert executor.max_workers == default_worker_count()

    def test_thread_spec_with_count(self):
        executor = resolve_executor("thread:5")
        assert isinstance(executor, ThreadExecutor)
        assert executor.max_workers == 5

    def test_single_worker_thread_spec_is_serial(self):
        assert isinstance(resolve_executor("thread:1"), SerialExecutor)

    @pytest.mark.parametrize(
        "spec",
        ["threads", "process:0", "thread:0", "thread:-3", "process:x", "thread:x", "gpu"],
    )
    def test_bad_spec_strings_rejected(self, spec):
        with pytest.raises(ValueError):
            resolve_executor(spec)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            resolve_executor(-2)
        with pytest.raises(TypeError):
            resolve_executor(True)
        with pytest.raises(TypeError):
            resolve_executor(3.5)

    @pytest.mark.parametrize("cls", [ProcessExecutor, ThreadExecutor])
    def test_closed_executor_instance_rejected(self, cls):
        executor = cls(max_workers=2)
        executor.close()
        with pytest.raises(ValueError, match="closed"):
            resolve_executor(executor)

    def test_base_class_map_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Executor().map(abs, [1])


class TestSpawnSeeds:
    def test_deterministic_for_int_source(self):
        first = spawn_seeds(42, 3)
        second = spawn_seeds(42, 3)
        assert len(first) == 3
        for a, b in zip(first, second):
            assert a.entropy == b.entropy
            assert a.spawn_key == b.spawn_key
            assert np.random.default_rng(a).integers(1 << 30) == (
                np.random.default_rng(b).integers(1 << 30)
            )

    def test_children_are_distinct_streams(self):
        children = spawn_seeds(0, 4)
        draws = {int(np.random.default_rng(child).integers(1 << 60)) for child in children}
        assert len(draws) == 4

    def test_spawning_from_a_sequence_advances_it(self):
        source = np.random.SeedSequence(7)
        first = spawn_seeds(source, 2)
        second = spawn_seeds(source, 2)
        assert [c.spawn_key for c in first] != [c.spawn_key for c in second]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
