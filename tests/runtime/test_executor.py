"""Unit tests for the runtime executors and seed spawning."""

from __future__ import annotations

import operator

import numpy as np
import pytest

from repro.runtime import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    default_worker_count,
    resolve_executor,
    spawn_seeds,
)


class TestSerialExecutor:
    def test_maps_in_order(self):
        assert SerialExecutor().map(operator.neg, [1, 2, 3]) == [-1, -2, -3]

    def test_empty_input(self):
        assert SerialExecutor().map(operator.neg, []) == []

    def test_close_is_noop_and_context_manager_works(self):
        with SerialExecutor() as executor:
            assert executor.map(abs, [-2]) == [2]
        executor.close()  # idempotent


class TestProcessExecutor:
    def test_maps_in_order_across_workers(self):
        with ProcessExecutor(max_workers=2) as executor:
            assert executor.map(operator.neg, list(range(8))) == [-i for i in range(8)]

    def test_pool_is_reused_between_map_calls(self):
        with ProcessExecutor(max_workers=2) as executor:
            executor.map(abs, [-1])
            pool = executor._pool
            executor.map(abs, [-2])
            assert executor._pool is pool

    def test_close_shuts_down_and_is_idempotent(self):
        executor = ProcessExecutor(max_workers=2)
        executor.map(abs, [-1])
        executor.close()
        assert executor._pool is None
        executor.close()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)


class TestResolveExecutor:
    @pytest.mark.parametrize("spec", [None, 0, 1, "serial", "none", "1", "process:1"])
    def test_serial_specs(self, spec):
        assert isinstance(resolve_executor(spec), SerialExecutor)

    def test_int_spec_gives_process_pool(self):
        executor = resolve_executor(3)
        assert isinstance(executor, ProcessExecutor)
        assert executor.max_workers == 3

    def test_process_spec_defaults_to_cpu_count(self):
        executor = resolve_executor("process")
        assert isinstance(executor, ProcessExecutor)
        assert executor.max_workers == default_worker_count()

    def test_process_spec_with_count(self):
        executor = resolve_executor("process:5")
        assert isinstance(executor, ProcessExecutor)
        assert executor.max_workers == 5

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            resolve_executor("threads")
        with pytest.raises(ValueError):
            resolve_executor(-2)
        with pytest.raises(ValueError):
            resolve_executor("process:0")
        with pytest.raises(TypeError):
            resolve_executor(True)
        with pytest.raises(TypeError):
            resolve_executor(3.5)

    def test_base_class_map_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Executor().map(abs, [1])


class TestSpawnSeeds:
    def test_deterministic_for_int_source(self):
        first = spawn_seeds(42, 3)
        second = spawn_seeds(42, 3)
        assert len(first) == 3
        for a, b in zip(first, second):
            assert a.entropy == b.entropy
            assert a.spawn_key == b.spawn_key
            assert np.random.default_rng(a).integers(1 << 30) == (
                np.random.default_rng(b).integers(1 << 30)
            )

    def test_children_are_distinct_streams(self):
        children = spawn_seeds(0, 4)
        draws = {int(np.random.default_rng(child).integers(1 << 60)) for child in children}
        assert len(draws) == 4

    def test_spawning_from_a_sequence_advances_it(self):
        source = np.random.SeedSequence(7)
        first = spawn_seeds(source, 2)
        second = spawn_seeds(source, 2)
        assert [c.spawn_key for c in first] != [c.spawn_key for c in second]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
