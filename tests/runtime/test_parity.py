"""Executor/transport parity: seeded runs must be bit-identical.

These tests are the acceptance gate of the execution plane: for every
multi-node layer (FedAvg server, federated NIDS simulation, distributed
synthetic-sharing simulation, federated KiNETGAN) a seeded run must produce
exactly the same global states and round histories -- not approximately,
bit for bit -- across

* every executor: serial, thread pool, process pool; and
* both round transports: worker-resident state (refs + deltas +
  shared-memory parameter buffers) and the legacy re-pickled payloads.

The baseline of each matrix is the serial run on the legacy transport (the
pre-resident reference semantics); every other combination is compared
against it.

The contract is *per dtype* (``docs/precision.md``): the ``*Float32``
classes rerun the matrix with float32 engines against their own float32
serial baseline -- float32 runs are not expected to match float64 ones,
but within a dtype every executor/transport combination must agree bit
for bit.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.baselines import IndependentSampler
from repro.core.config import KiNETGANConfig
from repro.distributed.simulation import DistributedNIDSSimulation
from repro.federated.client import FederatedClient
from repro.federated.kinetgan import FederatedKiNETGAN
from repro.federated.partition import label_skew_partition
from repro.federated.server import FederatedServer
from repro.federated.simulation import DetectorFactory, FederatedNIDSSimulation
from repro.runtime import FaultInjector, ProcessExecutor, ThreadExecutor

#: (executor spec factory, transport) combinations compared to the
#: serial+legacy baseline.  Legacy transports are named "payload" on the
#: server/simulations and "site" on federated KiNETGAN.
MATRIX = [
    pytest.param(lambda: None, "resident", id="serial-resident"),
    pytest.param(lambda: ThreadExecutor(max_workers=2), "resident", id="thread-resident"),
    pytest.param(lambda: ProcessExecutor(max_workers=2), "resident", id="process-resident"),
    pytest.param(lambda: ThreadExecutor(max_workers=2), "legacy", id="thread-legacy"),
    pytest.param(lambda: ProcessExecutor(max_workers=2), "legacy", id="process-legacy"),
]


def _crashing_process(task_id: int):
    """A 2-worker process pool whose worker crashes on one mid-run task."""
    executor = ProcessExecutor(max_workers=2)
    executor.install_faults(FaultInjector.crash_once(task_id=task_id))
    return executor


def _straggling_thread(task_id: int):
    """A 2-worker thread pool with one injected mid-run straggler.

    The injected delay (0.75s) exceeds the test policies' 0.25s deadline,
    so the worker abandons the attempt before the task body runs and the
    parent's replay is the only execution -- then recovery must be
    bit-identical to a fault-free run.
    """
    executor = ThreadExecutor(max_workers=2)
    executor.install_faults(FaultInjector.straggle_once(task_id=task_id, delay_seconds=0.75))
    return executor


#: Fault-injection entries of the recovery matrix: (executor factory,
#: task_timeout) pairs.  Task ids address "round r of k work units, slot s"
#: as r * k + s through the executor's global dispatch counter.
FAULT_MATRIX = [
    pytest.param(_crashing_process, None, id="process-crash-retry"),
    pytest.param(_straggling_thread, 0.25, id="thread-straggler-delay"),
]


def _assert_states_equal(expected: dict, actual: dict) -> None:
    assert set(expected) == set(actual)
    for key in expected:
        assert np.array_equal(expected[key], actual[key]), key


def _make_clients(n_clients: int, model_fn: DetectorFactory) -> list[FederatedClient]:
    rng = np.random.default_rng(0)
    clients = []
    for i in range(n_clients):
        features = rng.normal(size=(96, model_fn.n_features))
        labels = rng.integers(0, model_fn.n_classes, size=96)
        clients.append(
            FederatedClient(
                client_id=f"c{i}",
                features=features,
                labels=labels,
                model_fn=model_fn,
                learning_rate=0.05,
                batch_size=32,
                local_epochs=2,
                seed=i,
            )
        )
    return clients


class TestServerParity:
    @staticmethod
    def _run(executor, transport: str):
        model_fn = DetectorFactory(n_features=5, n_classes=2, hidden_dims=(8,), seed=0)
        transport = "payload" if transport == "legacy" else transport
        with FederatedServer(
            model_fn, _make_clients(3, model_fn), seed=0, executor=executor, transport=transport
        ) as server:
            server.run(3)
            return server.global_state, server.history.rounds

    @pytest.fixture(scope="class")
    def baseline(self):
        return self._run(None, "legacy")

    @pytest.mark.parametrize("executor_factory,transport", MATRIX)
    def test_global_state_and_history_bit_identical(
        self, baseline, executor_factory, transport
    ):
        state, rounds = self._run(executor_factory(), transport)
        _assert_states_equal(baseline[0], state)
        assert baseline[1] == rounds


class TestFederatedSimulationParity:
    @staticmethod
    def _run(bundle, executor, transport: str):
        transport = "payload" if transport == "legacy" else transport
        with FederatedNIDSSimulation(
            bundle,
            num_clients=3,
            skew=0.5,
            hidden_dims=(8,),
            num_rounds=2,
            local_epochs=1,
            seed=0,
            executor=executor,
            transport=transport,
        ) as simulation:
            return simulation.run()

    @pytest.fixture(scope="class")
    def baseline(self, lab_bundle_small):
        return self._run(lab_bundle_small, None, "legacy")

    @pytest.mark.parametrize("executor_factory,transport", MATRIX)
    def test_seeded_results_identical(
        self, baseline, lab_bundle_small, executor_factory, transport
    ):
        result = self._run(lab_bundle_small, executor_factory(), transport)
        assert baseline.federated == result.federated
        assert baseline.centralised == result.centralised
        assert baseline.local_only == result.local_only
        assert baseline.round_accuracies == result.round_accuracies
        assert baseline.per_client_local == result.per_client_local


class TestServerParityFloat32(TestServerParity):
    """The dtype axis of the parity contract (``docs/precision.md``).

    A float32 detector federation must be bit-identical across every
    executor/transport combination against its *own* float32 serial+legacy
    baseline: the per-dtype RNG streams, the float32 codec transport and
    the float32 shared buffers all have to agree for this to hold.
    """

    @staticmethod
    def _run(executor, transport: str):
        model_fn = DetectorFactory(
            n_features=5, n_classes=2, hidden_dims=(8,), seed=0, dtype="float32"
        )
        transport = "payload" if transport == "legacy" else transport
        with FederatedServer(
            model_fn, _make_clients(3, model_fn), seed=0, executor=executor, transport=transport
        ) as server:
            server.run(3)
            return server.global_state, server.history.rounds

    def test_global_state_is_float32(self, baseline):
        state, _rounds = baseline
        assert {np.asarray(value).dtype for value in state.values()} == {
            np.dtype(np.float32)
        }


class TestDistributedSimulationParity:
    @staticmethod
    def _run(bundle, executor, transport: str):
        transport = "payload" if transport == "legacy" else transport
        with DistributedNIDSSimulation(
            bundle,
            num_nodes=3,
            non_iid_skew=0.5,
            synthesizer_factory=lambda seed: IndependentSampler(seed=seed),
            seed=5,
            executor=executor,
            transport=transport,
        ) as simulation:
            return simulation.run(share_size=120)

    @pytest.fixture(scope="class")
    def baseline(self, lab_bundle_small):
        return self._run(lab_bundle_small, None, "legacy")

    @pytest.mark.parametrize("executor_factory,transport", MATRIX)
    def test_seeded_results_identical(
        self, baseline, lab_bundle_small, executor_factory, transport
    ):
        result = self._run(lab_bundle_small, executor_factory(), transport)
        assert baseline.local_only == result.local_only
        assert baseline.synthetic_sharing == result.synthetic_sharing
        assert baseline.centralised_real == result.centralised_real
        assert baseline.per_node_local == result.per_node_local
        assert baseline.share_validity == result.share_validity


class TestFederatedKiNETGANParity:
    """Two rounds, so cross-round worker state (Adam moments, the trainer
    RNG, the KG head) is exercised: a resident site whose delta round-trip
    dropped any of it would diverge from the serial baseline in round 2."""

    CONFIG = KiNETGANConfig(
        embedding_dim=8,
        generator_dims=(16,),
        discriminator_dims=(16,),
        epochs=1,
        batch_size=32,
        knowledge_negatives_per_batch=8,
        max_modes=3,
        seed=0,
    )

    @classmethod
    def _run(cls, bundle, executor, transport: str):
        transport = "site" if transport == "legacy" else transport
        table = bundle.table.head(300)
        rng = np.random.default_rng(0)
        parts = label_skew_partition(table, "label", 2, rng, skew=0.5, min_rows=20)
        with FederatedKiNETGAN(
            reference_table=table.head(150),
            config=cls.CONFIG,
            catalog=bundle.catalog,
            condition_columns=bundle.condition_columns,
            seed=0,
            executor=executor,
            transport=transport,
        ) as fed:
            handles = [fed.add_site(f"site-{i}", part) for i, part in enumerate(parts)]
            fed.run(num_rounds=2, local_epochs=1)
            # Site handles returned by add_site must keep pointing at the
            # trained state (history, weights) whichever worker trained it.
            for handle, site in zip(handles, fed.sites):
                assert handle is site
                assert handle.trainer.history.epochs >= 2
            generator_state, discriminator_state = fed.global_states()
            sample = fed.sample(60)
            return generator_state, discriminator_state, sample

    @pytest.fixture(scope="class")
    def baseline(self, lab_bundle_small):
        return self._run(lab_bundle_small, None, "legacy")

    @pytest.mark.parametrize("executor_factory,transport", MATRIX)
    def test_global_weights_and_sample_bit_identical(
        self, baseline, lab_bundle_small, executor_factory, transport
    ):
        generator_state, discriminator_state, sample = self._run(
            lab_bundle_small, executor_factory(), transport
        )
        _assert_states_equal(baseline[0], generator_state)
        _assert_states_equal(baseline[1], discriminator_state)
        for name in baseline[2].schema.names:
            assert list(baseline[2].column(name)) == list(sample.column(name)), name


class TestFederatedKiNETGANParityFloat32(TestFederatedKiNETGANParity):
    """The dtype axis on the full model: a float32 federated KiNETGAN fit
    must stay bit-identical across executors and transports against its own
    float32 serial baseline, and its global states must actually be
    float32 end to end (codec, shared buffers, aggregation)."""

    CONFIG = dataclasses.replace(TestFederatedKiNETGANParity.CONFIG, dtype="float32")

    def test_global_states_are_float32(self, baseline):
        generator_state, discriminator_state, _sample = baseline
        for state in (generator_state, discriminator_state):
            assert {np.asarray(value).dtype for value in state.values()} == {
                np.dtype(np.float32)
            }


class TestServerFaultRecoveryParity:
    """Recovery must be invisible: an injected mid-run worker crash (process
    pool) or abandoned straggler (thread pool) is absorbed by the deadline /
    retry machinery, and because the replay reuses the exact per-task
    SeedSequence child, the recovered run is bit-identical to a fault-free
    one -- same global state, same round history, nothing dropped."""

    #: 3 clients x 3 rounds dispatch task ids 0..8 through the executor's
    #: global counter; id 4 is round 2, slot 1 -- a mid-run fault.
    MID_RUN_TASK = 4

    @staticmethod
    def _run(executor, task_timeout):
        model_fn = DetectorFactory(n_features=5, n_classes=2, hidden_dims=(8,), seed=0)
        with FederatedServer(
            model_fn,
            _make_clients(3, model_fn),
            seed=0,
            executor=executor,
            transport="resident",
            task_timeout=task_timeout,
            task_retries=2,
        ) as server:
            server.run(3)
            return server.global_state, server.history.rounds

    @pytest.fixture(scope="class")
    def baseline(self):
        return self._run(None, None)

    @pytest.mark.parametrize("executor_factory,task_timeout", FAULT_MATRIX)
    def test_recovered_run_bit_identical(self, baseline, executor_factory, task_timeout):
        state, rounds = self._run(executor_factory(self.MID_RUN_TASK), task_timeout)
        assert [r.dropped for r in rounds] == [[], [], []]
        _assert_states_equal(baseline[0], state)
        assert baseline[1] == rounds


class TestFederatedKiNETGANFaultRecovery:
    """The acceptance gate of the fault-tolerant plane on the full model: a
    seeded federated KiNETGAN run with an injected mid-round worker crash
    (process executor) or straggler past the deadline (thread executor)
    completes via retry / replay with final global weights and samples
    bit-identical to the fault-free run."""

    #: 2 sites x 2 rounds dispatch task ids 0..3; id 2 is round 2, slot 0.
    MID_RUN_TASK = 2

    @classmethod
    def _run(cls, bundle, executor, task_timeout):
        table = bundle.table.head(300)
        rng = np.random.default_rng(0)
        parts = label_skew_partition(table, "label", 2, rng, skew=0.5, min_rows=20)
        with FederatedKiNETGAN(
            reference_table=table.head(150),
            config=TestFederatedKiNETGANParity.CONFIG,
            catalog=bundle.catalog,
            condition_columns=bundle.condition_columns,
            seed=0,
            executor=executor,
            transport="resident",
            task_timeout=task_timeout,
            task_retries=2,
        ) as fed:
            for i, part in enumerate(parts):
                fed.add_site(f"site-{i}", part)
            rounds = fed.run(num_rounds=2, local_epochs=1)
            assert [r.dropped for r in rounds] == [[], []]
            generator_state, discriminator_state = fed.global_states()
            return generator_state, discriminator_state, fed.sample(60)

    @pytest.fixture(scope="class")
    def baseline(self, lab_bundle_small):
        return self._run(lab_bundle_small, None, None)

    @pytest.mark.parametrize("executor_factory,task_timeout", FAULT_MATRIX)
    def test_crash_and_straggler_recover_bit_identical(
        self, baseline, lab_bundle_small, executor_factory, task_timeout
    ):
        generator_state, discriminator_state, sample = self._run(
            lab_bundle_small, executor_factory(self.MID_RUN_TASK), task_timeout
        )
        _assert_states_equal(baseline[0], generator_state)
        _assert_states_equal(baseline[1], discriminator_state)
        for name in baseline[2].schema.names:
            assert list(baseline[2].column(name)) == list(sample.column(name)), name
