"""Serial vs process-pool parity: seeded runs must be bit-identical.

These tests are the acceptance gate of the parallel runtime: for every
multi-node layer (FedAvg server, federated NIDS simulation, distributed
synthetic-sharing simulation, federated KiNETGAN) a seeded run under the
process-pool executor must produce exactly the global states and round
histories of the serial run -- not approximately, bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import IndependentSampler
from repro.core.config import KiNETGANConfig
from repro.distributed.simulation import DistributedNIDSSimulation
from repro.federated.client import FederatedClient
from repro.federated.kinetgan import FederatedKiNETGAN
from repro.federated.partition import label_skew_partition
from repro.federated.server import FederatedServer
from repro.federated.simulation import DetectorFactory, FederatedNIDSSimulation
from repro.runtime import ProcessExecutor


def _make_clients(n_clients: int, model_fn: DetectorFactory) -> list[FederatedClient]:
    rng = np.random.default_rng(0)
    clients = []
    for i in range(n_clients):
        features = rng.normal(size=(96, model_fn.n_features))
        labels = rng.integers(0, model_fn.n_classes, size=96)
        clients.append(
            FederatedClient(
                client_id=f"c{i}",
                features=features,
                labels=labels,
                model_fn=model_fn,
                learning_rate=0.05,
                batch_size=32,
                local_epochs=2,
                seed=i,
            )
        )
    return clients


class TestServerParity:
    def test_global_state_and_history_bit_identical(self):
        model_fn = DetectorFactory(n_features=5, n_classes=2, hidden_dims=(8,), seed=0)

        def run(executor):
            server = FederatedServer(
                model_fn, _make_clients(3, model_fn), seed=0, executor=executor
            )
            server.run(3)
            return server

        serial = run(None)
        with ProcessExecutor(max_workers=2) as pool:
            parallel = run(pool)

        assert set(serial.global_state) == set(parallel.global_state)
        for key in serial.global_state:
            assert np.array_equal(serial.global_state[key], parallel.global_state[key])
        assert serial.history.rounds == parallel.history.rounds


class TestFederatedSimulationParity:
    def test_seeded_results_identical(self, lab_bundle_small):
        def run(executor):
            simulation = FederatedNIDSSimulation(
                lab_bundle_small,
                num_clients=3,
                skew=0.5,
                hidden_dims=(8,),
                num_rounds=2,
                local_epochs=1,
                seed=0,
                executor=executor,
            )
            try:
                return simulation.run()
            finally:
                simulation.close()

        serial = run(None)
        parallel = run(2)
        assert serial.federated == parallel.federated
        assert serial.centralised == parallel.centralised
        assert serial.local_only == parallel.local_only
        assert serial.round_accuracies == parallel.round_accuracies
        assert serial.per_client_local == parallel.per_client_local


class TestDistributedSimulationParity:
    def test_seeded_results_identical(self, lab_bundle_small):
        def run(executor):
            simulation = DistributedNIDSSimulation(
                lab_bundle_small,
                num_nodes=3,
                non_iid_skew=0.5,
                synthesizer_factory=lambda seed: IndependentSampler(seed=seed),
                seed=5,
                executor=executor,
            )
            try:
                return simulation.run(share_size=120)
            finally:
                simulation.close()

        serial = run(None)
        parallel = run(2)
        assert serial.local_only == parallel.local_only
        assert serial.synthetic_sharing == parallel.synthetic_sharing
        assert serial.centralised_real == parallel.centralised_real
        assert serial.per_node_local == parallel.per_node_local
        assert serial.share_validity == parallel.share_validity


class TestFederatedKiNETGANParity:
    @pytest.fixture(scope="class")
    def tiny_config(self) -> KiNETGANConfig:
        return KiNETGANConfig(
            embedding_dim=8,
            generator_dims=(16,),
            discriminator_dims=(16,),
            epochs=1,
            batch_size=32,
            knowledge_negatives_per_batch=8,
            max_modes=3,
            seed=0,
        )

    def test_global_weights_bit_identical(self, lab_bundle_small, tiny_config):
        table = lab_bundle_small.table.head(300)
        rng = np.random.default_rng(0)
        parts = label_skew_partition(table, "label", 2, rng, skew=0.5, min_rows=20)

        def run(executor):
            fed = FederatedKiNETGAN(
                reference_table=table.head(150),
                config=tiny_config,
                catalog=lab_bundle_small.catalog,
                condition_columns=lab_bundle_small.condition_columns,
                seed=0,
                executor=executor,
            )
            handles = [fed.add_site(f"site-{i}", part) for i, part in enumerate(parts)]
            try:
                fed.run(num_rounds=1, local_epochs=1)
                # Site handles returned by add_site must keep pointing at the
                # trained state even when workers trained pickled copies.
                for handle, site in zip(handles, fed.sites):
                    assert handle is site
                    assert handle.trainer.history.epochs >= 1
                return fed.global_states()
            finally:
                fed.close()

        serial_generator, serial_discriminator = run(None)
        parallel_generator, parallel_discriminator = run(2)
        for serial_state, parallel_state in (
            (serial_generator, parallel_generator),
            (serial_discriminator, parallel_discriminator),
        ):
            assert set(serial_state) == set(parallel_state)
            for key in serial_state:
                assert np.array_equal(serial_state[key], parallel_state[key])
