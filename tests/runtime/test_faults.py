"""Unit tests for seeded fault injection and the resilient task driver.

Covers the faults vocabulary (FaultInjector / FaultDecision / TaskPolicy /
TaskResult), the generic ``Executor.map_tasks`` retry loop on all three
executors, crash-surviving process pools, the worker-side eviction
broadcast, and the shared ``map_with_quorum`` round-dispatch helper.
"""

from __future__ import annotations

import time

import pytest

from repro.runtime import (
    FaultDecision,
    FaultInjector,
    InjectedFault,
    ProcessExecutor,
    QuorumError,
    SerialExecutor,
    StragglerTimeout,
    TaskDropped,
    TaskPolicy,
    ThreadExecutor,
    WorkerCrash,
    map_with_quorum,
    worker_store,
)
from repro.runtime.faults import classify_failure


def _double(x: int) -> int:
    return x * 2


def _slow_double(x: int) -> int:
    time.sleep(0.15)
    return x * 2


def _fail_on_two(x: int) -> int:
    if x == 2:
        raise ValueError("boom")
    return x


def _resolve_ref(ref):
    return dict(ref.resolve())


def _store_contains(name: str) -> bool:
    return worker_store().contains(name)


class TestFaultInjector:
    def test_no_rates_no_schedule_is_always_clean(self):
        injector = FaultInjector(seed=0)
        assert all(injector.decide(t, a).kind == "none" for t in range(20) for a in range(3))

    def test_decisions_are_pure_in_seed_task_attempt(self):
        a = FaultInjector(seed=7, crash_rate=0.2, error_rate=0.2, delay_rate=0.2, drop_rate=0.2)
        b = FaultInjector(seed=7, crash_rate=0.2, error_rate=0.2, delay_rate=0.2, drop_rate=0.2)
        decisions = [a.decide(t, 0) for t in range(50)]
        assert decisions == [b.decide(t, 0) for t in range(50)]
        # Different seed -> a different (deterministic) pattern.
        c = FaultInjector(seed=8, crash_rate=0.2, error_rate=0.2, delay_rate=0.2, drop_rate=0.2)
        assert decisions != [c.decide(t, 0) for t in range(50)]

    def test_rates_partition_the_draw(self):
        always_crash = FaultInjector(seed=0, crash_rate=1.0)
        assert always_crash.decide(3, 1).kind == "crash"
        always_drop = FaultInjector(seed=0, drop_rate=1.0)
        assert always_drop.decide(3, 1).kind == "drop"

    def test_schedule_overrides_and_classmethods(self):
        injector = FaultInjector.crash_once(task_id=4)
        assert injector.decide(4, 0).kind == "crash"
        assert injector.decide(4, 1).kind == "none"  # the retry runs clean
        assert injector.decide(5, 0).kind == "none"
        straggler = FaultInjector.straggle_once(task_id=2, delay_seconds=0.5)
        decision = straggler.decide(2, 0)
        assert (decision.kind, decision.delay_seconds) == ("delay", 0.5)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(crash_rate=-0.1)
        with pytest.raises(ValueError):
            FaultInjector(crash_rate=0.6, error_rate=0.6)

    def test_invalid_schedule_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(schedule={(0, 0): "explode"})

    def test_invalid_decision_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultDecision(kind="explode")

    def test_injector_is_picklable(self):
        import pickle

        injector = FaultInjector(seed=3, schedule={(1, 0): "error"})
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.decide(1, 0).kind == "error"


class TestTaskPolicy:
    def test_backoff_schedule_is_exponential(self):
        policy = TaskPolicy(backoff=0.1, backoff_factor=2.0)
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(3) == pytest.approx(0.4)
        assert TaskPolicy().backoff_seconds(2) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"retries": -1},
            {"backoff": -0.1},
            {"backoff_factor": 0.5},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TaskPolicy(**kwargs)


class TestClassifyFailure:
    def test_known_causes(self):
        import concurrent.futures

        assert classify_failure(WorkerCrash("x")) == "crash"
        assert classify_failure(concurrent.futures.BrokenExecutor()) == "crash"
        assert classify_failure(StragglerTimeout("x")) == "timeout"
        assert classify_failure(TaskDropped("x")) == "drop"
        assert classify_failure(InjectedFault("x")) == "error"
        assert classify_failure(ValueError("x")) == "error"


class TestMapTasksSerial:
    def test_clean_run_matches_map(self):
        executor = SerialExecutor()
        results = executor.map_tasks(_double, [1, 2, 3])
        assert [r.value for r in results] == [2, 4, 6]
        assert all(r.ok and r.attempts == 1 and not r.retried for r in results)
        assert [r.task_id for r in results] == [0, 1, 2]
        # The dispatch counter is global across calls, so schedules can
        # address "round r, slot s" as task_id = r * k + s.
        assert [r.task_id for r in executor.map_tasks(_double, [4])] == [3]

    def test_unwrap_returns_value_or_raises(self):
        executor = SerialExecutor()
        ok, bad = executor.map_tasks(_fail_on_two, [1, 2])
        assert ok.unwrap() == 1
        with pytest.raises(RuntimeError, match="error"):
            bad.unwrap()

    def test_injected_error_is_retried_to_success(self):
        executor = SerialExecutor()
        executor.install_faults(FaultInjector(schedule={(1, 0): "error"}))
        results = executor.map_tasks(_double, [1, 2, 3], TaskPolicy(retries=1))
        assert [r.value for r in results] == [2, 4, 6]
        assert [(r.attempts, r.retried) for r in results] == [(1, False), (2, True), (1, False)]

    def test_exhausted_retries_return_structured_failure(self):
        executor = SerialExecutor()
        executor.install_faults(
            FaultInjector(schedule={(0, 0): "error", (0, 1): "error"})
        )
        result = executor.map_tasks(_double, [5], TaskPolicy(retries=1))[0]
        assert not result.ok
        assert result.failure.cause == "error"
        assert result.failure.attempts == 2
        assert "InjectedFault" in result.failure.message

    def test_drop_and_crash_causes(self):
        executor = SerialExecutor()
        executor.install_faults(
            FaultInjector(schedule={(0, 0): "drop", (1, 0): "crash"})
        )
        dropped, crashed = executor.map_tasks(_double, [1, 2])
        assert dropped.failure.cause == "drop"
        assert crashed.failure.cause == "crash"

    def test_posthoc_deadline_discards_and_replays(self):
        # The serial executor cannot interrupt inline work; an overrunning
        # task is discarded post-hoc and counted as a timeout.
        executor = SerialExecutor()
        result = executor.map_tasks(_slow_double, [4], TaskPolicy(timeout=0.05))[0]
        assert not result.ok and result.failure.cause == "timeout"
        # With a generous deadline the same task succeeds.
        result = executor.map_tasks(_slow_double, [4], TaskPolicy(timeout=5.0))[0]
        assert result.ok and result.value == 8

    def test_per_call_injector_overrides_installed_one(self):
        executor = SerialExecutor()
        executor.install_faults(FaultInjector(error_rate=1.0))
        clean = TaskPolicy(injector=FaultInjector())
        assert all(r.ok for r in executor.map_tasks(_double, [1, 2], clean))

    def test_policy_rejected_on_closed_executor(self):
        executor = ThreadExecutor(max_workers=1)
        executor.close()
        with pytest.raises(RuntimeError):
            executor.map_tasks(_double, [1])


class TestMapTasksThread:
    def test_injected_straggler_times_out_and_recovers(self):
        with ThreadExecutor(max_workers=2) as executor:
            executor.install_faults(
                FaultInjector(schedule={(0, 0): FaultDecision("delay", 0.4)})
            )
            results = executor.map_tasks(
                _double, [1, 2, 3], TaskPolicy(timeout=0.1, retries=2)
            )
            assert [r.value for r in results] == [2, 4, 6]
            assert results[0].retried and results[0].attempts == 2

    def test_real_exception_fails_only_that_task(self):
        with ThreadExecutor(max_workers=2) as executor:
            results = executor.map_tasks(_fail_on_two, [1, 2, 3], TaskPolicy())
            assert [r.ok for r in results] == [True, False, True]
            assert results[1].failure.cause == "error"


class TestMapTasksProcess:
    def test_worker_crash_respawns_pool_and_replays(self):
        with ProcessExecutor(max_workers=2) as executor:
            executor.install_faults(FaultInjector.crash_once(task_id=1))
            results = executor.map_tasks(_double, [1, 2, 3], TaskPolicy(retries=2))
            assert [r.value for r in results] == [2, 4, 6]
            assert executor.respawns == 1
            # The executor stays healthy for subsequent rounds.
            assert executor.map(_double, [5]) == [10]

    def test_resident_state_survives_the_respawn(self):
        # The parent owns the shared-memory segments, so a ref installed
        # before the crash re-resolves in the fresh workers.
        with ProcessExecutor(max_workers=2) as executor:
            ref = executor.install({"answer": 42})
            executor.install_faults(FaultInjector.crash_once(task_id=0))
            results = executor.map_tasks(_resolve_ref, [ref, ref], TaskPolicy(retries=1))
            assert [r.value for r in results] == [{"answer": 42}, {"answer": 42}]
            assert executor.respawns == 1

    def test_crash_without_retries_is_a_structured_failure(self):
        with ProcessExecutor(max_workers=2) as executor:
            executor.install_faults(FaultInjector.crash_once(task_id=0))
            results = executor.map_tasks(_double, [1, 2], TaskPolicy())
            assert not results[0].ok and results[0].failure.cause == "crash"
            # A fresh pool serves the next call.
            assert [r.ok for r in executor.map_tasks(_double, [3, 4])] == [True, True]


class TestEvictionBroadcast:
    def test_worker_store_purges_evicted_state(self):
        with ProcessExecutor(max_workers=1) as executor:
            ref = executor.install({"x": 1})
            assert executor.map(_resolve_ref, [ref]) == [{"x": 1}]
            assert executor.map(_store_contains, [ref.name]) == [True]
            executor.evict(ref)
            # The next dispatch piggybacks the eviction; the long-lived
            # worker drops its materialised copy before running the task.
            assert executor.map(_store_contains, [ref.name]) == [False]

    def test_eviction_rides_map_tasks_dispatches_too(self):
        with ProcessExecutor(max_workers=1) as executor:
            ref = executor.install({"x": 2})
            executor.map_tasks(_resolve_ref, [ref])
            executor.evict(ref)
            result = executor.map_tasks(_store_contains, [ref.name])[0]
            assert result.ok and result.value is False

    def test_evict_before_any_dispatch_needs_no_broadcast(self):
        with ProcessExecutor(max_workers=1) as executor:
            ref = executor.install({"x": 3})
            executor.evict(ref)
            assert executor._evicted_names == []


class TestMapWithQuorum:
    def test_fast_path_without_resilience(self):
        survivors, dropped = map_with_quorum(
            SerialExecutor(), _double, [1, 2], ["a", "b"], min_survivors=2
        )
        assert survivors == [(0, 2), (1, 4)] and dropped == []

    def test_fast_path_enforces_quorum_on_round_size(self):
        with pytest.raises(QuorumError):
            map_with_quorum(SerialExecutor(), _double, [1], ["a"], min_survivors=2)

    def test_survivors_and_dropped_ids(self):
        executor = SerialExecutor()
        executor.install_faults(FaultInjector(schedule={(1, 0): "error"}))
        survivors, dropped = map_with_quorum(
            executor, _double, [1, 2, 3], ["a", "b", "c"], min_survivors=1
        )
        assert survivors == [(0, 2), (2, 6)]
        assert dropped == ["b"]

    def test_quorum_error_carries_counts(self):
        executor = SerialExecutor()
        executor.install_faults(FaultInjector(error_rate=1.0))
        with pytest.raises(QuorumError) as excinfo:
            map_with_quorum(executor, _double, [1, 2], ["a", "b"], min_survivors=1)
        assert excinfo.value.survivors == 0
        assert excinfo.value.required == 1
